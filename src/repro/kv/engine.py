"""The per-node key-value engine: managed cache + asynchronous persistence.

This is the paper's **data service** core (section 4.3.3).  Writes land
in the per-vBucket hash tables and are acknowledged immediately
(memory-first, section 2.3.3); a flusher pump drains the disk write
queue to the append-only storage files; an item pager ejects
not-recently-used clean values when the bucket's memory quota is
exceeded; and every mutation is recorded in an ordered per-vBucket
change buffer that DCP streams (replication, views, GSI, XDCR) consume.

vBuckets move through the states of section 4.3.1 -- *active* (serves
everything), *replica* (accepts only replication traffic), *pending*
(rebalance target being built), *dead* (no responsibility) -- and only
an active vBucket assigns sequence numbers and CAS values.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from ..common import tracing
from ..common.boundsmodel import bounded
from ..common.costmodel import cost, hot_path
from ..common.clock import Clock, VirtualClock
from ..common.disk import SimulatedDisk
from ..common.document import Document, DocumentMeta
from ..common.errors import (
    CasMismatchError,
    DocumentLockedError,
    InvalidArgumentError,
    KeyExistsError,
    KeyNotFoundError,
    NotMyVBucketError,
    ReproError,
    TemporaryFailureError,
    ValueTooLargeError,
)
from ..common.jsonval import JsonValue, deep_copy, sizeof, validate_json_value
from ..common.metrics import MetricsRegistry
from .hashtable import HashTable
from .types import MutationResult, ObserveResult, VBucketState

#: Registered mutable module state (declared-shared-state lint rule):
#: monotonic vBucket-UUID source shared by every engine in the process.
__shared_state__ = ("_vb_uuid_counter",)

_vb_uuid_counter = itertools.count(1000)


def _xdcr_wins(incoming: Document, existing: Document) -> bool:
    """Deterministic XDCR conflict resolution (section 4.6.1): highest
    revision (update count) wins; ties break on further metadata (CAS,
    expiry, flags) and finally on the canonical document encoding, so
    that two clusters always pick the same winner even when independent
    writers produced identical metadata.  A full tie means the versions
    are identical: not applied."""
    from ..common.jsonval import encode_canonical

    def sort_token(doc: Document) -> tuple:
        meta = doc.meta
        body = b"" if meta.deleted else encode_canonical(doc.value)
        return (meta.rev, meta.cas, meta.expiry, meta.flags,
                not meta.deleted, body)

    return sort_token(incoming) > sort_token(existing)


class VBucket:
    """All state for one vBucket on one node."""

    #: Change-buffer entries at or below the persisted seqno may be
    #: trimmed once the buffer grows past this, forcing late-joining DCP
    #: streams onto the disk backfill path.
    MAX_BUFFER = 4096

    def __init__(self, vbucket_id: int, state: VBucketState, disk: SimulatedDisk,
                 bucket_name: str):
        self.id = vbucket_id
        self.state = state
        self.uuid = next(_vb_uuid_counter)
        self.hashtable = HashTable(vbucket_id)
        from ..storage.couchstore import VBucketStore
        self.store = VBucketStore(disk, f"{bucket_name}/vb{vbucket_id}.couch",
                                  vbucket_id)
        self.high_seqno = self.store.update_seq
        self.persisted_seqno = self.store.update_seq
        self.high_cas = 0
        #: Ordered mutations not yet trimmed; DCP's in-memory source.
        self.change_buffer: list[Document] = []
        #: Seqno of the last mutation *before* the buffer's first entry.
        self.buffer_start_seqno = self.store.update_seq
        #: Keys with un-persisted mutations, in arrival order.
        self.dirty_queue: list[str] = []
        #: History branches: (vb_uuid, seqno at which this branch began).
        self.failover_log: list[tuple[int, int]] = [(self.uuid, self.high_seqno)]
        #: For replicas: the producer's failover log adopted at stream
        #: open.  None means this copy never synced with an active, so a
        #: resuming stream must not trust its seqno (section 4.3.2's
        #: rollback handshake depends on this lineage record).
        self.source_failover_log: list[tuple[int, int]] | None = None

    def next_seqno(self) -> int:
        self.high_seqno += 1
        return self.high_seqno

    def record_change(self, doc: Document) -> None:
        self.change_buffer.append(doc.copy())
        if len(self.change_buffer) > self.MAX_BUFFER:
            self.trim_change_buffer()

    def trim_change_buffer(self) -> None:
        """Drop buffered mutations already persisted; DCP backfills those
        from the storage snapshot instead."""
        keep_from = 0
        for index, doc in enumerate(self.change_buffer):
            if doc.meta.seqno > self.persisted_seqno:
                break
            keep_from = index + 1
        if keep_from:
            self.buffer_start_seqno = self.change_buffer[keep_from - 1].meta.seqno
            del self.change_buffer[:keep_from]

    def promote_to_active(self) -> None:
        """Replica -> active transition (failover or rebalance switchover):
        start a new history branch in the failover log (section 4.3.1).
        The inherited source log (the old active's lineage) becomes the
        base of this copy's history so downstream consumers can find
        their branch point."""
        self.state = VBucketState.ACTIVE
        self.uuid = next(_vb_uuid_counter)
        if self.source_failover_log is not None:
            self.failover_log = list(self.source_failover_log)
        self.failover_log.append((self.uuid, self.high_seqno))
        self.high_cas = max(
            self.high_cas,
            max((e.doc.meta.cas for _k, e in self.hashtable.items()), default=0),
        )


class KVEngine:
    """Data-service engine for one bucket on one node."""

    #: Flusher batch size: mutations persisted per pump invocation.
    FLUSH_BATCH = 256
    #: Above this fraction of quota the pager starts ejecting...
    HIGH_WATERMARK = 0.85
    #: ...and it stops once usage falls below this fraction.
    LOW_WATERMARK = 0.75
    #: Largest accepted value footprint (bytes), like memcached's 20MB cap.
    MAX_VALUE_SIZE = 20 * 1024 * 1024
    #: Hard locks expire after this many seconds unless released (§3.1.1:
    #: "this lock will be released after a certain timeout").
    LOCK_TIMEOUT = 15.0
    #: Base unit (virtual seconds) of the TMPFAIL ``retry_after`` hint;
    #: scaled by the flusher backlog so a deeper queue asks clients to
    #: wait longer.
    TMPFAIL_RETRY_QUANTUM = 0.005

    def __init__(
        self,
        node_name: str,
        bucket_name: str,
        disk: SimulatedDisk | None = None,
        clock: Clock | None = None,
        quota_bytes: int | None = None,
        eviction_policy: str = "value",
        metrics: MetricsRegistry | None = None,
    ):
        if eviction_policy not in ("value", "full"):
            raise ValueError(f"unknown eviction policy {eviction_policy!r}")
        self.node_name = node_name
        self.bucket_name = bucket_name
        self.disk = disk if disk is not None else SimulatedDisk()
        self.clock = clock if clock is not None else VirtualClock()
        self.quota_bytes = quota_bytes
        self.eviction_policy = eviction_policy
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.vbuckets: dict[int, VBucket] = {}
        #: Bucket-wide memory usage, maintained incrementally by hash
        #: table charge callbacks (insert/replace/eject/delete) so quota
        #: checks and the pager loop are O(1), not O(vbuckets x checks).
        self._memory_used = 0
        self._cas_counter = itertools.count(1)
        #: Callbacks invoked with each new mutation Document -- the DCP
        #: fan-out point (replication streams attach here).
        self.mutation_listeners: list[Callable[[Document], None]] = []

    # -- vBucket lifecycle ----------------------------------------------------

    def create_vbucket(self, vbucket_id: int,
                       state: VBucketState = VBucketState.ACTIVE) -> VBucket:
        vb = VBucket(vbucket_id, state, self.disk, self.bucket_name)
        vb.hashtable.memory_listener = self._charge_memory
        self.vbuckets[vbucket_id] = vb
        return vb

    def set_vbucket_state(self, vbucket_id: int, state: VBucketState) -> None:
        vb = self.vbuckets.get(vbucket_id)
        if vb is None:
            if state is VBucketState.DEAD:
                return
            self.create_vbucket(vbucket_id, state)
            self.metrics.inc("kv.vbucket_state_changes")
            return
        if vb.state is VBucketState.DEAD:
            # DEAD is terminal for a vBucket *copy* (no declared DEAD->*
            # transition): reusing the id means a brand-new copy with a
            # fresh lineage, never a resurrection of the dead one's
            # documents -- so the dead copy's disk must go too.
            if state is VBucketState.DEAD:
                return
            self.drop_vbucket(vbucket_id)
            self.create_vbucket(vbucket_id, state)
            self.metrics.inc("kv.vbucket_state_changes")
            return
        if state is VBucketState.ACTIVE and vb.state is not VBucketState.ACTIVE:
            vb.promote_to_active()
        else:
            vb.state = state
        self.metrics.inc("kv.vbucket_state_changes")

    def drop_vbucket(self, vbucket_id: int) -> None:
        vb = self.vbuckets.pop(vbucket_id, None)
        if vb is not None:
            self._memory_used -= vb.hashtable.memory_used
            vb.hashtable.memory_listener = None
            if vb.state is VBucketState.DEAD:
                # Dropping a DEAD copy discards it for good.  Its file
                # must go too: ``create_vbucket`` recovers whatever the
                # disk holds, so a later reuse of this id (rebalance
                # moving the vBucket back, failover rebuilding a
                # replica) would otherwise resurrect the dead copy's
                # documents under a stale lineage.
                vb.store.destroy()

    def _active(self, vbucket_id: int) -> VBucket:
        vb = self.vbuckets.get(vbucket_id)
        if vb is None or vb.state is not VBucketState.ACTIVE:
            raise NotMyVBucketError(vbucket_id, self.node_name)
        return vb

    def owned_vbuckets(self, state: VBucketState | None = None) -> list[int]:
        if state is None:
            return sorted(self.vbuckets)
        return sorted(vid for vid, vb in self.vbuckets.items() if vb.state is state)

    # -- CAS ----------------------------------------------------------------------

    def _next_cas(self, vb: VBucket) -> int:
        cas = max(next(self._cas_counter), vb.high_cas + 1)
        vb.high_cas = cas
        return cas

    # -- internal mutation plumbing -----------------------------------------------

    def _check_lock_and_cas(self, vb: VBucket, key: str, cas: int) -> None:
        entry = vb.hashtable.peek(key)
        if entry is None:
            return
        now = self.clock.now()
        if entry.is_locked(now) and cas != entry.lock_cas:
            raise DocumentLockedError(key)
        if cas and entry.doc.meta.cas != cas and not (
            entry.is_locked(now) and cas == entry.lock_cas
        ):
            raise CasMismatchError(key, cas, entry.doc.meta.cas)

    @bounded("consumer-drained", "dirty_queue is trimmed by the flusher "
                                 "pump one batch per round")
    def _apply_mutation(self, vb: VBucket, doc: Document) -> None:
        """Common tail of every active-side write: cache it, queue it for
        disk, buffer it for DCP, notify listeners."""
        tracing.record_write(f"kv/{self.node_name}/{self.bucket_name}")
        self._ensure_quota_headroom(doc)
        entry = vb.hashtable.set(doc, dirty=True)
        entry.locked_until = 0.0  # any successful mutation releases the lock
        entry.lock_cas = 0
        vb.dirty_queue.append(doc.key)
        vb.record_change(doc)
        self.metrics.inc("kv.mutations")
        for listener in self.mutation_listeners:
            listener(doc)

    def _build_doc(self, vb: VBucket, key: str, value: JsonValue | None,
                   *, expiry: float, flags: int, deleted: bool,
                   old: Document | None) -> Document:
        meta = DocumentMeta(
            key=key,
            cas=self._next_cas(vb),
            seqno=vb.next_seqno(),
            rev=(old.meta.rev + 1) if old is not None else 1,
            expiry=expiry,
            flags=flags,
            deleted=deleted,
            vbucket_id=vb.id,
        )
        return Document(meta, deep_copy(value) if not deleted else None)

    def _live_entry(self, vb: VBucket, key: str):
        """Entry if the key logically exists (not deleted, not expired)."""
        entry = vb.hashtable.peek(key)
        if entry is None:
            if self.eviction_policy == "full" and vb.store.contains(key):
                # Full eviction dropped metadata; re-load from disk.
                doc = vb.store.get(key)
                entry = vb.hashtable.set(doc, dirty=False)
            else:
                return None
        if entry.doc.meta.deleted:
            return None
        if entry.doc.meta.is_expired(self.clock.now()):
            self._expire(vb, entry.doc)
            return None
        return entry

    def _expire(self, vb: VBucket, doc: Document) -> None:
        """Lazy expiry: an expired doc is turned into a real delete
        mutation so replicas and indexes hear about it via DCP."""
        tombstone = self._build_doc(
            vb, doc.key, None, expiry=0.0, flags=0, deleted=True, old=doc,
        )
        self._apply_mutation(vb, tombstone)
        self.metrics.inc("kv.expirations")

    # -- public KV API (section 3.1.1) -------------------------------------------

    @hot_path
    @cost("O(log n)")
    def get(self, vbucket_id: int, key: str) -> Document:
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            self.metrics.inc("kv.get_misses")
            raise KeyNotFoundError(key)
        if entry.doc.ejected:
            # Background fetch: restore the value from the storage engine.
            stored = vb.store.get(key)
            entry.doc.value = stored.value
            entry.doc.ejected = False
            vb.hashtable.charge(sizeof(stored.value or 0))
            self.metrics.inc("kv.bg_fetches")
        entry.referenced = True
        self.metrics.inc("kv.gets")
        return entry.doc.copy()

    @hot_path
    @cost("O(log n)")
    def upsert(self, vbucket_id: int, key: str, value: JsonValue, *,
               cas: int = 0, expiry: float = 0.0, flags: int = 0) -> MutationResult:
        """The memcached SET: create or replace."""
        validate_json_value(value)
        if sizeof(value) > self.MAX_VALUE_SIZE:
            raise ValueTooLargeError(key)
        vb = self._active(vbucket_id)
        self._check_lock_and_cas(vb, key, cas)
        old_entry = vb.hashtable.peek(key)
        old = old_entry.doc if old_entry is not None else None
        doc = self._build_doc(vb, key, value, expiry=expiry, flags=flags,
                              deleted=False, old=old)
        self._apply_mutation(vb, doc)
        return MutationResult(doc.meta.cas, doc.meta.seqno, vb.id)

    @hot_path
    @cost("O(log n)")
    def insert(self, vbucket_id: int, key: str, value: JsonValue, *,
               expiry: float = 0.0, flags: int = 0) -> MutationResult:
        """The memcached ADD: fails if the key exists."""
        vb = self._active(vbucket_id)
        if self._live_entry(vb, key) is not None:
            raise KeyExistsError(key)
        return self.upsert(vbucket_id, key, value, expiry=expiry, flags=flags)

    @hot_path
    @cost("O(log n)")
    def replace(self, vbucket_id: int, key: str, value: JsonValue, *,
                cas: int = 0, expiry: float = 0.0, flags: int = 0) -> MutationResult:
        """The memcached REPLACE: fails unless the key exists."""
        vb = self._active(vbucket_id)
        if self._live_entry(vb, key) is None:
            raise KeyNotFoundError(key)
        return self.upsert(vbucket_id, key, value, cas=cas, expiry=expiry,
                           flags=flags)

    @hot_path
    @cost("O(log n)")
    def delete(self, vbucket_id: int, key: str, *, cas: int = 0) -> MutationResult:
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            raise KeyNotFoundError(key)
        self._check_lock_and_cas(vb, key, cas)
        doc = self._build_doc(vb, key, None, expiry=0.0, flags=0,
                              deleted=True, old=entry.doc)
        self._apply_mutation(vb, doc)
        self.metrics.inc("kv.deletes")
        return MutationResult(doc.meta.cas, doc.meta.seqno, vb.id)

    @hot_path
    @cost("O(log n)")
    def touch(self, vbucket_id: int, key: str, expiry: float) -> MutationResult:
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            raise KeyNotFoundError(key)
        return self.upsert(vbucket_id, key, entry.doc.value, expiry=expiry,
                           flags=entry.doc.meta.flags)

    @hot_path
    @cost("O(log n)")
    def counter(self, vbucket_id: int, key: str, delta: int, *,
                initial: int | None = None) -> tuple[int, MutationResult]:
        """memcached-style atomic counter: add ``delta`` to an integer
        document, creating it at ``initial`` when absent (if given).
        Returns (new value, mutation result)."""
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            if initial is None:
                raise KeyNotFoundError(key)
            result = self.upsert(vbucket_id, key, initial)
            return initial, result
        current = entry.doc.value
        if not isinstance(current, int) or isinstance(current, bool):
            raise TemporaryFailureError(
                f"counter target {key!r} is not an integer document"
            )
        new_value = current + delta
        result = self.upsert(vbucket_id, key, new_value)
        return new_value, result

    # -- batched operations (the smart client's node-grouped bulk path) -----------

    @hot_path
    @cost("O(n)")
    def multi_get(self, items: list[tuple[int, str]]) -> list[tuple[str, object]]:
        """Serve a batch of point lookups in one call.  ``items`` is a
        list of ``(vbucket_id, key)`` pairs; the result carries one
        ``("ok", Document)`` or ``("err", ReproError)`` per item, in
        order, so a single misplaced vBucket (NOT_MY_VBUCKET) or missing
        key never fails the rest of the batch."""
        out: list[tuple[str, object]] = []
        for vbucket_id, key in items:
            try:
                out.append(("ok", self.get(vbucket_id, key)))
            except ReproError as error:
                out.append(("err", error))
        self.metrics.inc("kv.multi_gets")
        return out

    @hot_path
    @cost("O(n)")
    def multi_mutate(
        self, ops: list[tuple[str, int, str, dict]]
    ) -> list[tuple[str, object]]:
        """Apply a batch of mutations in one call.  Each op is
        ``(kind, vbucket_id, key, kwargs)`` with kind in {"upsert",
        "insert", "replace", "delete"}; kwargs are that operation's
        keyword arguments (value, cas, expiry, flags).  Per-op outcomes
        mirror :meth:`multi_get`."""
        handlers = {
            "upsert": self.upsert,
            "insert": self.insert,
            "replace": self.replace,
            "delete": self.delete,
        }
        out: list[tuple[str, object]] = []
        for kind, vbucket_id, key, kwargs in ops:
            handler = handlers.get(kind)
            if handler is None:
                raise InvalidArgumentError(f"unknown batch mutation kind {kind!r}")
            try:
                out.append(("ok", handler(vbucket_id, key, **kwargs)))
            except ReproError as error:
                out.append(("err", error))
        self.metrics.inc("kv.multi_mutates")
        return out

    # -- sub-document operations (section 3.2.2 mentions sub-document
    # lookups and updates; the SDK exposes them as lookup_in/mutate_in) ----

    @hot_path
    @cost("O(log n)")
    def lookup_in(self, vbucket_id: int, key: str,
                  paths: list[str]) -> list:
        """Fetch selected sub-document paths without shipping the whole
        document.  Returns one ``{"found": bool, "value": ...}`` per path."""
        from ..common.jsonval import get_path
        doc = self.get(vbucket_id, key)
        results = []
        for path in paths:
            found, value = get_path(doc.value, path)
            results.append({"found": found, "value": value if found else None})
        self.metrics.inc("kv.subdoc_lookups")
        return results

    @hot_path
    @cost("O(log n)")
    def mutate_in(self, vbucket_id: int, key: str,
                  operations: list[tuple[str, str, JsonValue]],
                  *, cas: int = 0) -> MutationResult:
        """Apply sub-document mutations atomically.  Each operation is
        ``(op, path, value)`` with op in {"set", "unset", "array_append"}.
        The whole batch applies or none of it does (single CAS swap)."""
        from ..common.jsonval import get_path, set_path, unset_path
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            raise KeyNotFoundError(key)
        self._check_lock_and_cas(vb, key, cas)
        updated = deep_copy(entry.doc.value)
        for op, path, value in operations:
            if op == "set":
                set_path(updated, path, deep_copy(value))
            elif op == "unset":
                unset_path(updated, path)
            elif op == "array_append":
                found, target = get_path(updated, path)
                if not found or not isinstance(target, list):
                    raise TemporaryFailureError(
                        f"array_append target {path!r} is not an array"
                    )
                target.append(deep_copy(value))
            else:
                raise InvalidArgumentError(f"unknown sub-document op {op!r}")
        self.metrics.inc("kv.subdoc_mutations")
        return self.upsert(vbucket_id, key, updated, cas=cas,
                           expiry=entry.doc.meta.expiry,
                           flags=entry.doc.meta.flags)

    @hot_path
    @cost("O(log n)")
    def get_and_lock(self, vbucket_id: int, key: str,
                     lock_time: float | None = None) -> Document:
        """Pessimistic locking (section 3.1.1).  The returned document's
        CAS is the lock token; mutations presenting it succeed and release
        the lock, anything else fails until the timeout."""
        vb = self._active(vbucket_id)
        entry = self._live_entry(vb, key)
        if entry is None:
            raise KeyNotFoundError(key)
        now = self.clock.now()
        if entry.is_locked(now):
            raise DocumentLockedError(key)
        # Locking changes the visible CAS so other writers' optimistic
        # updates fail fast.
        lock_cas = self._next_cas(vb)
        entry.doc.meta.cas = lock_cas
        entry.lock_cas = lock_cas
        entry.locked_until = now + (
            lock_time if lock_time is not None else self.LOCK_TIMEOUT
        )
        self.metrics.inc("kv.locks")
        return entry.doc.copy()

    @hot_path
    @cost("O(log n)")
    def unlock(self, vbucket_id: int, key: str, cas: int) -> None:
        vb = self._active(vbucket_id)
        entry = vb.hashtable.peek(key)
        if entry is None or entry.doc.meta.deleted:
            raise KeyNotFoundError(key)
        if not entry.is_locked(self.clock.now()):
            raise TemporaryFailureError(f"not locked: {key!r}")
        if cas != entry.lock_cas:
            raise DocumentLockedError(key)
        entry.locked_until = 0.0
        entry.lock_cas = 0

    @hot_path
    @cost("O(log n)")
    def observe(self, vbucket_id: int, key: str) -> ObserveResult:
        """Durability probe: is the key in memory here, and has its latest
        mutation been persisted?  Works on active and replica vBuckets
        (the client's observe fan-out asks replicas too)."""
        vb = self.vbuckets.get(vbucket_id)
        if vb is None or vb.state is VBucketState.DEAD:
            raise NotMyVBucketError(vbucket_id, self.node_name)
        entry = vb.hashtable.peek(key)
        if entry is None:
            # Nothing in memory: the only durable fact left is whether
            # the store holds a tombstone for the key.
            return ObserveResult(exists=False, cas=0,
                                 persisted=vb.store.has_tombstone(key))
        if entry.doc.meta.deleted:
            # The tombstone itself must have reached disk -- a stale
            # *live* version on disk does not make the delete durable.
            persisted = entry.doc.meta.seqno <= vb.persisted_seqno
            return ObserveResult(exists=False, cas=entry.doc.meta.cas,
                                 persisted=persisted)
        persisted = entry.doc.meta.seqno <= vb.persisted_seqno
        return ObserveResult(exists=True, cas=entry.doc.meta.cas,
                             persisted=persisted)

    # -- XDCR inbound (section 4.6) --------------------------------------------------

    @hot_path
    @cost("O(log n)")
    def set_with_meta(self, vbucket_id: int, incoming: Document) -> bool:
        """Apply a remotely replicated mutation, preserving its metadata,
        after conflict resolution (section 4.6.1): the document with the
        most updates (highest rev) wins; ties break on further metadata.
        Returns True if the incoming version won and was applied."""
        vb = self._active(vbucket_id)
        entry = vb.hashtable.peek(incoming.key)
        if entry is None and self.eviction_policy == "full" \
                and vb.store.contains(incoming.key):
            entry = vb.hashtable.set(vb.store.get(incoming.key), dirty=False)
        if entry is not None and not _xdcr_wins(incoming, entry.doc):
            self.metrics.inc("xdcr.rejected")
            return False
        doc = incoming.copy()
        doc.meta.seqno = vb.next_seqno()
        doc.meta.vbucket_id = vb.id
        vb.high_cas = max(vb.high_cas, doc.meta.cas)
        self._apply_mutation(vb, doc)
        self.metrics.inc("xdcr.applied")
        return True

    # -- replica side (DCP consumer) ----------------------------------------------

    @hot_path
    @cost("O(n)")
    def apply_replicated(self, vbucket_id: int, doc: Document) -> None:
        """Apply a mutation received over DCP to a replica or pending
        vBucket.  Seqno/CAS arrive pre-assigned by the active side.
        Thin single-doc wrapper over the batch path (n = 1)."""
        self.apply_replicated_batch(vbucket_id, [doc])

    @hot_path
    @cost("O(n)")
    def apply_replicated_batch(self, vbucket_id: int,
                               docs: list[Document]) -> None:
        """Apply one DCP stream batch to a replica or pending vBucket.
        The ownership check runs once for the whole batch -- the replica
        either hosts the vBucket (and takes every message, preserving
        stream order) or rejects the batch before touching anything,
        mirroring :meth:`multi_mutate`'s one-RPC-per-node contract on
        the active side."""
        vb = self.vbuckets.get(vbucket_id)
        if vb is None or vb.state is VBucketState.ACTIVE:
            raise NotMyVBucketError(vbucket_id, self.node_name)
        for doc in docs:
            tracing.record_write(f"kv/{self.node_name}/{self.bucket_name}")
            copy = doc.copy()
            vb.hashtable.set(copy, dirty=True)
            vb.dirty_queue.append(copy.key)
            vb.high_seqno = max(vb.high_seqno, copy.meta.seqno)
            vb.high_cas = max(vb.high_cas, copy.meta.cas)
            vb.record_change(copy)
        self.metrics.inc("kv.replica_mutations", len(docs))

    # -- background pumps ------------------------------------------------------------

    @hot_path
    @cost("O(n)")
    def flush(self, max_batch: int | None = None) -> bool:
        """Drain the disk write queue (the flusher).  Persists up to
        ``max_batch`` mutations across vBuckets, commits headers, marks
        entries clean, and advances persisted seqnos.  Returns True if
        anything was written."""
        budget = max_batch if max_batch is not None else self.FLUSH_BATCH
        self.metrics.observe("kv.queue_depth", self.pending_writes())
        wrote = False
        for vb in self.vbuckets.values():
            if not vb.dirty_queue or budget <= 0:
                continue
            keys, vb.dirty_queue = vb.dirty_queue[:budget], vb.dirty_queue[budget:]
            budget -= len(keys)
            docs = []
            seen = set()
            for key in keys:
                if key in seen:
                    continue
                seen.add(key)
                entry = vb.hashtable.peek(key)
                if entry is None:
                    continue
                doc = entry.doc
                if doc.ejected:
                    continue  # already persisted (that's how it got ejected)
                docs.append(doc.copy())
            if docs:
                tracing.record_write(f"kv/{self.node_name}/{self.bucket_name}")
                vb.store.save_docs(docs)
                vb.store.write_header(sync=True)
                for doc in docs:
                    vb.hashtable.mark_clean(doc.key, doc.meta.seqno)
                vb.persisted_seqno = max(vb.persisted_seqno,
                                         max(d.meta.seqno for d in docs))
                self.metrics.inc("kv.flushed", len(docs))
                wrote = True
        return wrote

    def pending_writes(self) -> int:
        return sum(len(vb.dirty_queue) for vb in self.vbuckets.values())

    @hot_path
    @cost("O(n)")
    def run_compactor(self, threshold: float = 0.6) -> bool:
        """Online compaction pass (section 4.3.3: "Compaction is
        periodically run, based on a fragmentation threshold, and while
        the system is online").  Compacts at most one vBucket per call
        so the pump never hogs a scheduler round; returns True if a file
        was rewritten."""
        from ..storage.compaction import Compactor
        compactor = Compactor(self.disk, threshold=threshold)
        for vb in self.vbuckets.values():
            if vb.dirty_queue:
                continue  # let the flusher drain first
            if not compactor.needs_compaction(vb.store):
                continue
            tracing.record_write(f"kv/{self.node_name}/{self.bucket_name}")
            vb.store = compactor.compact(vb.store)
            self.metrics.inc("kv.compactions")
            return True
        return False

    @hot_path
    @cost("O(n)")
    def run_expiry_pager(self) -> int:
        """Proactively convert expired documents into delete mutations so
        replicas and indexes learn about expiry without waiting for an
        access (the lazy path in :meth:`_live_entry` handles the rest)."""
        now = self.clock.now()
        expired = 0
        for vb in self.vbuckets.values():
            if vb.state is not VBucketState.ACTIVE:
                continue
            for _key, entry in vb.hashtable.items():
                doc = entry.doc
                if not doc.meta.deleted and doc.meta.is_expired(now):
                    self._expire(vb, doc)
                    expired += 1
        return expired

    def warmup(self) -> int:
        """Couchbase-style warmup after a restart: repopulate the hash
        tables from the storage files (keys, metadata, and values --
        under memory pressure the item pager will eject values again).
        Returns the number of items loaded."""
        loaded = 0
        for vb in self.vbuckets.values():
            for doc in vb.store.all_docs(include_deleted=True):
                vb.hashtable.set(doc.copy(), dirty=False)
                vb.high_cas = max(vb.high_cas, doc.meta.cas)
                loaded += 1
            vb.high_seqno = max(vb.high_seqno, vb.store.update_seq)
            vb.persisted_seqno = vb.store.update_seq
            vb.buffer_start_seqno = vb.store.update_seq
        self.metrics.inc("kv.warmup_items", loaded)
        if self.quota_bytes is not None:
            self.run_item_pager()
        return loaded

    # -- memory management ---------------------------------------------------------

    def _charge_memory(self, delta: int) -> None:
        self._memory_used += delta

    def memory_used(self) -> int:
        """Bucket-wide usage from the incremental counter -- O(1)."""
        return self._memory_used

    def memory_used_full(self) -> int:
        """Ground truth by full re-summation; tests assert it always
        matches the incremental counter."""
        return sum(vb.hashtable.memory_used for vb in self.vbuckets.values())

    def _ensure_quota_headroom(self, incoming: Document) -> None:
        if self.quota_bytes is None:
            return
        needed = incoming.memory_footprint()
        if self._memory_used + needed <= self.quota_bytes * self.HIGH_WATERMARK:
            return
        self.run_item_pager()
        if self._memory_used + needed > self.quota_bytes:
            backlog = self.pending_writes()
            memory_ratio = self._memory_used / self.quota_bytes
            self.metrics.inc("kv.tmpfails")
            self.metrics.observe("kv.queue_depth", backlog)
            # Honest relief hint: flusher rounds needed to clear the
            # write backlog, stretched by how far past quota memory
            # already is -- a deep queue at 120% of quota asks clients
            # to stay away longer than a marginal overshoot.
            raise TemporaryFailureError(
                f"bucket {self.bucket_name!r} memory quota exhausted on "
                f"{self.node_name!r}; retry after the flusher catches up",
                retry_after=self.TMPFAIL_RETRY_QUANTUM
                * (1 + backlog // self.FLUSH_BATCH)
                * max(1.0, memory_ratio),
                pending_writes=backlog,
                memory_ratio=memory_ratio,
            )

    @hot_path
    @cost("O(n)")
    def run_item_pager(self) -> int:
        """Eject NRU clean values until usage falls below the low
        watermark.  Two sweeps: the first skips recently referenced
        entries (clearing their bits), the second takes anything clean."""
        if self.quota_bytes is None:
            return 0
        target = self.quota_bytes * self.LOW_WATERMARK
        ejected = 0
        for skip_referenced in (True, False):
            if self._memory_used <= target:
                break
            for vb in self.vbuckets.values():
                if self._memory_used <= target:
                    break
                for key, entry in vb.hashtable.items():
                    if self._memory_used <= target:
                        break
                    if entry.dirty or entry.doc.meta.deleted or entry.doc.ejected:
                        continue
                    if skip_referenced and entry.referenced:
                        entry.referenced = False
                        continue
                    if self.eviction_policy == "value":
                        if vb.hashtable.eject_value(key):
                            ejected += 1
                    else:
                        if vb.hashtable.eject_entry(key):
                            ejected += 1
        if ejected:
            self.metrics.inc("kv.evictions", ejected)
        return ejected

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "node": self.node_name,
            "bucket": self.bucket_name,
            "vbuckets": {
                state.value: len(self.owned_vbuckets(state))
                for state in VBucketState
            },
            "items": sum(len(vb.hashtable) for vb in self.vbuckets.values()),
            "memory_used": self.memory_used(),
            "pending_writes": self.pending_writes(),
            "resident_ratio": (
                sum(vb.hashtable.resident_ratio() for vb in self.vbuckets.values())
                / max(1, len(self.vbuckets))
            ),
        }

    def docs_in_vbucket(self, vbucket_id: int) -> Iterator[Document]:
        """Every live in-memory document of a vBucket (fetching ejected
        bodies from disk); feeds rebalance movers and view/GSI backfills."""
        vb = self.vbuckets[vbucket_id]
        for key, entry in vb.hashtable.items():
            doc = entry.doc
            if doc.meta.deleted:
                continue
            if doc.meta.is_expired(self.clock.now()):
                continue
            if doc.ejected:
                doc = vb.store.get(key)
            yield doc.copy()
