"""Per-vBucket hash table.

Section 4.3.3: *"Hash tables for each virtual bucket reside in this cache
and offer a quick way of detecting whether a given document currently
exists in memory or not.  Each entry stores the document's ID, some
document metadata, and the document's value."*

Python's dict provides the hashing; what this class adds is the cache
bookkeeping the paper describes: per-entry dirty state (not yet
persisted), resident/ejected state (value eviction keeps key+meta in
memory while the body lives only on disk), NRU reference bits for the
item pager, and byte-accurate-enough memory accounting against the
bucket quota.
"""

from __future__ import annotations

from typing import Iterator

from ..common.document import Document


class CacheEntry:
    """One resident document: the doc plus its cache state (dirty,
    NRU reference bit, lock)."""

    __slots__ = ("doc", "dirty", "referenced", "locked_until", "lock_cas")

    def __init__(self, doc: Document, dirty: bool):
        self.doc = doc
        self.dirty = dirty
        #: NRU bit: set on access, cleared by the pager's clock sweep.
        self.referenced = True
        #: Virtual-time deadline of a get-and-lock hard lock, 0 if unlocked.
        self.locked_until = 0.0
        #: CAS that identifies the lock holder.
        self.lock_cas = 0

    def is_locked(self, now: float) -> bool:
        return self.locked_until > now


class HashTable:
    """In-memory entries for one vBucket."""

    def __init__(self, vbucket_id: int):
        self.vbucket_id = vbucket_id
        self._entries: dict[str, CacheEntry] = {}
        #: Bytes charged for resident entries (keys, metadata, values).
        self.memory_used = 0
        #: Optional ``callable(delta_bytes)`` notified of every memory
        #: charge; the engine hooks this to keep a bucket-wide usage
        #: counter without re-summing per-vBucket tallies on each check.
        self.memory_listener = None

    def charge(self, delta: int) -> None:
        """Single funnel for all memory accounting mutations."""
        self.memory_used += delta
        if self.memory_listener is not None:
            self.memory_listener(delta)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.referenced = True
        return entry

    def peek(self, key: str) -> CacheEntry | None:
        """Read an entry without touching its NRU bit (used by the pager
        and by replication, which must not look like application access)."""
        return self._entries.get(key)

    def set(self, doc: Document, dirty: bool) -> CacheEntry:
        """Insert or replace an entry; preserves an existing lock."""
        old = self._entries.get(doc.key)
        if old is not None:
            self.charge(-old.doc.memory_footprint())
        entry = CacheEntry(doc, dirty)
        if old is not None:
            entry.locked_until = old.locked_until
            entry.lock_cas = old.lock_cas
        self._entries[doc.key] = entry
        self.charge(doc.memory_footprint())
        return entry

    def remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.charge(-entry.doc.memory_footprint())

    def eject_value(self, key: str) -> bool:
        """Value eviction: drop the body, keep key + metadata resident.
        Only clean (persisted) entries may be ejected.  Returns True if
        the value was ejected."""
        entry = self._entries.get(key)
        if entry is None or entry.dirty or entry.doc.ejected or entry.doc.meta.deleted:
            return False
        self.charge(-entry.doc.memory_footprint())
        entry.doc.value = None
        entry.doc.ejected = True
        self.charge(entry.doc.memory_footprint())
        return True

    def eject_entry(self, key: str) -> bool:
        """Full eviction: drop the whole entry (key and metadata too).
        Only clean entries may be dropped."""
        entry = self._entries.get(key)
        if entry is None or entry.dirty:
            return False
        self.remove(key)
        return True

    def mark_clean(self, key: str, seqno: int) -> None:
        """Called by the flusher once the mutation with ``seqno`` is on
        disk.  A newer in-memory mutation keeps the entry dirty."""
        entry = self._entries.get(key)
        if entry is not None and entry.doc.meta.seqno <= seqno:
            entry.dirty = False

    def items(self) -> Iterator[tuple[str, CacheEntry]]:
        return iter(list(self._entries.items()))

    def keys(self) -> list[str]:
        return list(self._entries)

    def resident_ratio(self) -> float:
        """Fraction of entries whose value is in memory."""
        if not self._entries:
            return 1.0
        resident = sum(
            1 for e in self._entries.values() if not e.doc.ejected
        )
        return resident / len(self._entries)

    def clear(self) -> None:
        self.charge(-self.memory_used)
        self._entries.clear()
