"""Shared key-value protocol types.

These are the values that cross the wire between the data service and
everything else -- vBucket states in the cluster map, mutation tokens
returned to clients, observe results used by durability polling.  They
live apart from :mod:`repro.kv.engine` so that non-data services
(client, n1ql, gsi, views, xdcr) can name them without importing the
engine itself; the repro-lint ``no-cross-service-reach-through`` rule
enforces that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class VBucketState(Enum):
    ACTIVE = "active"
    REPLICA = "replica"
    PENDING = "pending"
    DEAD = "dead"


@dataclass
class MutationResult:
    """What a client gets back from a write: the new CAS, the mutation's
    seqno, and the vBucket it landed in (the "mutation token" used for
    durability observation and request_plus consistency)."""

    cas: int
    seqno: int
    vbucket_id: int


@dataclass
class ObserveResult:
    """Durability status of a key on one node (the observe command)."""

    exists: bool
    cas: int
    persisted: bool
