"""Shared key-value protocol types.

These are the values that cross the wire between the data service and
everything else -- vBucket states in the cluster map, mutation tokens
returned to clients, observe results used by durability polling.  They
live apart from :mod:`repro.kv.engine` so that non-data services
(client, n1ql, gsi, views, xdcr) can name them without importing the
engine itself; the repro-lint ``no-cross-service-reach-through`` rule
enforces that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..common.protomodel import protocol


@protocol(
    # Rebalance: a move builds a PENDING copy that switches to ACTIVE;
    # failover promotes a REPLICA directly; map reconciliation can
    # demote an old ACTIVE to REPLICA.  Every copy can be torn down
    # (-> DEAD), and DEAD is terminal: a dead copy's data must never
    # resurrect -- it is rebuilt fresh (section 4.3.1).
    "REPLICA->PENDING", "REPLICA->ACTIVE", "REPLICA->DEAD",
    "PENDING->ACTIVE", "PENDING->DEAD",
    "ACTIVE->REPLICA", "ACTIVE->DEAD",
    # A vBucket handoff must build the PENDING copy before the ACTIVE
    # switchover, and only then tear the old copy down.
    order=("PENDING", "ACTIVE", "DEAD"),
)
class VBucketState(Enum):
    ACTIVE = "active"
    REPLICA = "replica"
    PENDING = "pending"
    DEAD = "dead"


@dataclass
class MutationResult:
    """What a client gets back from a write: the new CAS, the mutation's
    seqno, and the vBucket it landed in (the "mutation token" used for
    durability observation and request_plus consistency)."""

    cas: int
    seqno: int
    vbucket_id: int


@dataclass
class ObserveResult:
    """Durability status of a key on one node (the observe command)."""

    exists: bool
    cas: int
    persisted: bool
