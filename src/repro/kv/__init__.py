"""The data service's key-value core: per-vBucket hash tables, the
object-managed cache with value/full eviction, CAS and hard locks,
asynchronous persistence via the flusher, and the per-vBucket change
buffers that feed DCP (sections 3.1.1 and 4.3.3)."""

from .engine import KVEngine, VBucket
from .hashtable import CacheEntry, HashTable
from .types import MutationResult, ObserveResult, VBucketState

__all__ = [
    "CacheEntry",
    "HashTable",
    "KVEngine",
    "MutationResult",
    "ObserveResult",
    "VBucket",
    "VBucketState",
]
