"""YCSB client binding.

The paper built a Couchbase YCSB adapter over the Java SDK "with support
for the N1QL query language" (appendix 10.1).  This is the same adapter
shape over this library's smart client: reads/updates/inserts go through
the key-value API, scans go through N1QL with the exact workload-E query
the paper prints::

    SELECT meta().id AS id FROM `bucket` WHERE meta().id >= $1 LIMIT $2
"""

from __future__ import annotations

from ..common.errors import InvalidArgumentError, KeyNotFoundError
from .workload import CoreWorkload, Operation

SCAN_QUERY = (
    "SELECT meta().id AS id FROM `{bucket}` "
    "WHERE meta().id >= $1 LIMIT $2"
)


class YcsbClient:
    """Executes YCSB operations against a cluster."""

    def __init__(self, cluster, bucket: str, workload: CoreWorkload):
        self.cluster = cluster
        self.bucket = bucket
        self.workload = workload
        self.client = cluster.connect()
        self.ops_done = 0
        self.read_misses = 0
        self._scan_query = SCAN_QUERY.format(bucket=bucket)
        #: Prepared-statement name once the scan query has been prepared
        #: (the real Couchbase YCSB adapter prepares its N1QL statement).
        self._prepared_scan: str | None = None

    # -- load phase ---------------------------------------------------------------

    #: Records per bulk insert during the load phase.
    LOAD_BATCH = 128

    def load(self, show_progress_every: int = 0) -> int:
        """Insert the initial dataset through the node-grouped batch
        path (one ``kv_multi_mutate`` RPC per node per chunk, the way
        real YCSB loaders pipeline their bulk inserts); returns the
        record count."""
        count = 0
        chunk: list[tuple[str, dict]] = []

        def flush_chunk() -> None:
            if chunk:
                self.client.multi_upsert(self.bucket, chunk).require_ok()
                chunk.clear()

        for key in self.workload.load_keys():
            chunk.append((key, self.workload.build_record()))
            count += 1
            if len(chunk) >= self.LOAD_BATCH:
                flush_chunk()
        flush_chunk()
        self.cluster.run_until_idle()
        return count

    # -- run phase --------------------------------------------------------------------

    def execute(self, op: Operation) -> None:
        if op.kind == "read":
            self._read(op.key)
        elif op.kind == "update":
            self._update(op.key, op.fields)
        elif op.kind == "insert":
            self.client.upsert(self.bucket, op.key, op.fields)
        elif op.kind == "scan":
            self._scan(op.key, op.scan_length)
        elif op.kind == "rmw":
            self._read_modify_write(op.key, op.fields)
        else:
            raise InvalidArgumentError(f"unknown operation {op.kind!r}")
        self.ops_done += 1

    def run_one(self) -> Operation:
        op = self.workload.next_operation()
        self.execute(op)
        return op

    # -- operation implementations ---------------------------------------------------

    def _read(self, key: str) -> None:
        try:
            self.client.get(self.bucket, key)
        except KeyNotFoundError:
            self.read_misses += 1

    def _update(self, key: str, fields: dict) -> None:
        # YCSB's default update is a whole-document write of the changed
        # fields merged into the stored record; the Couchbase adapter
        # reads, merges, and writes (the section 3.1.1 flow).
        try:
            doc = self.client.get(self.bucket, key)
        except KeyNotFoundError:
            self.client.upsert(self.bucket, key, dict(fields))
            return
        value = doc.value if isinstance(doc.value, dict) else {}
        value.update(fields)
        self.client.upsert(self.bucket, key, value)

    def _read_modify_write(self, key: str, fields: dict) -> None:
        from ..common.errors import CasMismatchError
        for _ in range(8):
            try:
                doc = self.client.get(self.bucket, key)
            except KeyNotFoundError:
                return
            value = doc.value if isinstance(doc.value, dict) else {}
            value.update(fields)
            try:
                self.client.upsert(self.bucket, key, value, cas=doc.meta.cas)
                return
            # YCSB read-modify-write races by design; retry up to the cap.
            # repro-flow: disable-next=swallowed-exception
            except CasMismatchError:
                continue

    def _scan(self, start_key: str, length: int) -> list:
        if self._prepared_scan is None:
            prepared = self.cluster.query(
                f"PREPARE ycsb_scan FROM {self._scan_query}"
            )
            self._prepared_scan = prepared.rows[0]["name"]
        result = self.cluster.query(
            f"EXECUTE {self._prepared_scan}",
            params={"1": start_key, "2": length},
        )
        return result.rows
