"""YCSB (Yahoo! Cloud Serving Benchmark) harness: generators, core
workloads A-F, the client adapter (KV ops + the paper's N1QL scan
query), and the measured-service-time + closed-MVA thread-sweep model
used to regenerate Figures 15 and 16 (appendix 10.1)."""

from .client import SCAN_QUERY, YcsbClient
from .generators import (
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv_hash_64,
    make_request_generator,
)
from .runner import (
    ClusterModel,
    SweepPoint,
    measure_service_time,
    mva_throughput,
    run_sweep,
    seidmann_extra_delay,
    sweep_threads,
)
from .workload import (
    WORKLOADS,
    CoreWorkload,
    Operation,
    WorkloadConfig,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
    workload_e,
    workload_f,
)

__all__ = [
    "CoreWorkload", "ClusterModel", "CounterGenerator", "LatestGenerator",
    "Operation", "SCAN_QUERY", "ScrambledZipfianGenerator", "SweepPoint",
    "UniformGenerator", "WORKLOADS", "WorkloadConfig", "YcsbClient",
    "ZipfianGenerator", "fnv_hash_64", "make_request_generator",
    "measure_service_time", "mva_throughput", "run_sweep",
    "seidmann_extra_delay", "sweep_threads",
    "workload_a", "workload_b", "workload_c", "workload_d", "workload_e",
    "workload_f",
]
