"""YCSB request-distribution generators.

Ports of the generators from the Yahoo! Cloud Serving Benchmark [14]
(Cooper et al., SoCC 2010) that the paper's appendix uses: uniform,
zipfian (Gray et al.'s rejection-free algorithm with precomputed zeta),
scrambled zipfian (zipfian popularity spread over the key space by
hashing), latest (favors recently inserted records), and the insert-key
counter.  All are seeded and deterministic.
"""

from __future__ import annotations

import random

from ..common.errors import InvalidArgumentError

FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3


def fnv_hash_64(value: int) -> int:
    """FNV-1 hash of an integer's bytes, exactly as YCSB's Utils.FNVhash64."""
    hashed = FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        hashed = (hashed ^ octet) * FNV_PRIME_64 & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return hashed


class UniformGenerator:
    """Uniform over [lower, upper] inclusive."""

    def __init__(self, lower: int, upper: int, seed: int = 0):
        if upper < lower:
            raise ValueError("upper must be >= lower")
        self.lower = lower
        self.upper = upper
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randint(self.lower, self.upper)


class CounterGenerator:
    """Monotone counter used for insert keys."""

    def __init__(self, start: int = 0):
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def last(self) -> int:
        return self._next - 1


class ZipfianGenerator:
    """Zipfian over [0, items): item 0 is the most popular.

    Uses the Gray et al. "Quickly generating billion-record synthetic
    databases" method YCSB ships: constants eta/alpha/zeta(n) computed
    once, then each draw is O(1).
    """

    ZIPFIAN_CONSTANT = 0.99

    def __init__(self, items: int, theta: float | None = None, seed: int = 0):
        if items < 1:
            raise ValueError("need at least one item")
        self.items = items
        self.theta = theta if theta is not None else self.ZIPFIAN_CONSTANT
        self._rng = random.Random(seed)
        self.zeta_n = self._zeta(items, self.theta)
        self.zeta_2 = self._zeta(2, self.theta)
        self.alpha = 1.0 / (1.0 - self.theta)
        self.eta = (
            (1 - (2.0 / items) ** (1 - self.theta))
            / (1 - self.zeta_2 / self.zeta_n)
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.items * (self.eta * u - self.eta + 1) ** self.alpha
        )


class ScrambledZipfianGenerator:
    """Zipfian popularity scattered across the key space by FNV hashing,
    so the hot keys are not clustered -- YCSB's default for workloads A/B."""

    def __init__(self, items: int, seed: int = 0):
        self.items = items
        self._zipfian = ZipfianGenerator(items, seed=seed)

    def next(self) -> int:
        return fnv_hash_64(self._zipfian.next()) % self.items


class LatestGenerator:
    """Skews toward the most recently inserted record (workload D)."""

    def __init__(self, counter: CounterGenerator, seed: int = 0):
        self._counter = counter
        self._seed = seed
        self._zipfian: ZipfianGenerator | None = None
        self._zipfian_items = 0

    def next(self) -> int:
        last = max(0, self._counter.last())
        items = last + 1
        if self._zipfian is None or items > self._zipfian_items * 2 \
                or self._zipfian_items == 0:
            self._zipfian = ZipfianGenerator(max(1, items), seed=self._seed)
            self._zipfian_items = items
        offset = self._zipfian.next()
        return max(0, last - (offset % items))


def make_request_generator(kind: str, items: int,
                           insert_counter: CounterGenerator | None = None,
                           seed: int = 0):
    """Factory for the request-key distribution named in a workload
    config ("uniform", "zipfian", or "latest")."""
    if kind == "uniform":
        return UniformGenerator(0, items - 1, seed=seed)
    if kind == "zipfian":
        return ScrambledZipfianGenerator(items, seed=seed)
    if kind == "latest":
        if insert_counter is None:
            raise InvalidArgumentError("latest distribution needs the insert counter")
        return LatestGenerator(insert_counter, seed=seed)
    raise InvalidArgumentError(f"unknown request distribution {kind!r}")
