"""YCSB core workloads.

The paper's appendix runs workloads A (50% read / 50% update, the
"session store" mix) and E (short range scans via N1QL) against a
4-node cluster.  This module reproduces YCSB's CoreWorkload: record
generation (10 fields x 100 bytes by default), key naming, operation
mix, and the standard workload presets A-F.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .generators import (
    CounterGenerator,
    UniformGenerator,
    fnv_hash_64,
    make_request_generator,
)


@dataclass
class WorkloadConfig:
    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    request_distribution: str = "zipfian"
    record_count: int = 1000
    field_count: int = 10
    field_length: int = 100
    max_scan_length: int = 100
    #: YCSB insertorder: "hashed" spreads keys, "ordered" keeps them
    #: sortable (what range-scan workloads need).
    insert_order: str = "hashed"

    def __post_init__(self):
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion + self.scan_proportion
                 + self.read_modify_write_proportion)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation proportions must sum to 1, got {total}")


def workload_a(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Update heavy: 50/50 read/update, zipfian (the paper's Figure 15)."""
    return WorkloadConfig(
        name="A", read_proportion=0.5, update_proportion=0.5,
        record_count=record_count, **overrides,
    )


def workload_b(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Read mostly: 95/5 read/update."""
    return WorkloadConfig(
        name="B", read_proportion=0.95, update_proportion=0.05,
        record_count=record_count, **overrides,
    )


def workload_c(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Read only."""
    return WorkloadConfig(
        name="C", read_proportion=1.0, record_count=record_count, **overrides,
    )


def workload_d(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Read latest: 95% reads skewed to fresh inserts."""
    return WorkloadConfig(
        name="D", read_proportion=0.95, insert_proportion=0.05,
        request_distribution="latest", record_count=record_count, **overrides,
    )


def workload_e(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Short ranges: 95% scans of up to 100 records (the paper's
    Figure 16, executed through N1QL)."""
    overrides.setdefault("insert_order", "ordered")
    return WorkloadConfig(
        name="E", scan_proportion=0.95, insert_proportion=0.05,
        request_distribution="uniform", record_count=record_count,
        **overrides,
    )


def workload_f(record_count: int = 1000, **overrides) -> WorkloadConfig:
    """Read-modify-write."""
    return WorkloadConfig(
        name="F", read_proportion=0.5, read_modify_write_proportion=0.5,
        record_count=record_count, **overrides,
    )


WORKLOADS = {
    "A": workload_a, "B": workload_b, "C": workload_c,
    "D": workload_d, "E": workload_e, "F": workload_f,
}


@dataclass
class Operation:
    kind: str                  # read | update | insert | scan | rmw
    key: str
    fields: dict | None = None  # for update/insert/rmw
    scan_length: int = 0


class CoreWorkload:
    """Generates keys, records, and the operation stream."""

    def __init__(self, config: WorkloadConfig, seed: int = 42):
        self.config = config
        self._rng = random.Random(seed)
        self._insert_counter = CounterGenerator(config.record_count)
        self._request = make_request_generator(
            config.request_distribution, config.record_count,
            self._insert_counter, seed=seed,
        )
        self._scan_length = UniformGenerator(1, config.max_scan_length,
                                             seed=seed + 1)
        self._choices = []
        for kind, proportion in (
            ("read", config.read_proportion),
            ("update", config.update_proportion),
            ("insert", config.insert_proportion),
            ("scan", config.scan_proportion),
            ("rmw", config.read_modify_write_proportion),
        ):
            if proportion > 0:
                self._choices.append((kind, proportion))

    # -- keys and records -------------------------------------------------------

    def key_for(self, index: int) -> str:
        if self.config.insert_order == "hashed":
            index = fnv_hash_64(index)
        return f"user{index:019d}"

    def build_record(self) -> dict:
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return {
            f"field{i}": "".join(
                self._rng.choice(alphabet)
                for _ in range(self.config.field_length)
            )
            for i in range(self.config.field_count)
        }

    def build_update(self) -> dict:
        """YCSB updates write one random field."""
        field_index = self._rng.randrange(self.config.field_count)
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return {
            f"field{field_index}": "".join(
                self._rng.choice(alphabet)
                for _ in range(self.config.field_length)
            )
        }

    def load_keys(self) -> list[str]:
        return [self.key_for(i) for i in range(self.config.record_count)]

    # -- the operation stream ----------------------------------------------------

    def _choose_kind(self) -> str:
        roll = self._rng.random()
        acc = 0.0
        for kind, proportion in self._choices:
            acc += proportion
            if roll < acc:
                return kind
        return self._choices[-1][0]

    def _next_existing_key(self) -> str:
        index = self._request.next()
        bound = self._insert_counter.last() + 1
        return self.key_for(index % max(1, bound))

    def next_operation(self) -> Operation:
        kind = self._choose_kind()
        if kind == "read":
            return Operation("read", self._next_existing_key())
        if kind == "update":
            return Operation("update", self._next_existing_key(),
                             fields=self.build_update())
        if kind == "insert":
            index = self._insert_counter.next()
            return Operation("insert", self.key_for(index),
                             fields=self.build_record())
        if kind == "scan":
            return Operation("scan", self._next_existing_key(),
                             scan_length=self._scan_length.next())
        return Operation("rmw", self._next_existing_key(),
                         fields=self.build_update())
