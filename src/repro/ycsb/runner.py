"""Throughput measurement and the thread-scaling model.

The paper's Figures 15 and 16 plot cluster throughput against the number
of client threads (4 YCSB clients x 12..32 threads).  Reproducing that
curve with real OS threads in CPython is meaningless -- the GIL
serializes them -- so this module does the honest equivalent:

1. **Measure** the real per-operation service time by executing the
   workload's operations through the full stack (smart client ->
   network fabric -> KV engine / query service) single-stream and
   timing them.  This exercises every code path the paper's servers
   execute.
2. **Model** the closed-loop thread sweep with mean-value analysis
   (MVA) of a two-station queueing network: an infinite-server "delay"
   station (client think time + network round trip) and a
   multi-server "cluster" station (the 4 nodes' worth of service
   capacity), using the Seidmann approximation for the multi-server
   queue.  Closed MVA is exactly the model of N YCSB threads issuing
   synchronous requests: throughput rises roughly linearly while the
   delay dominates and saturates at ``servers / service_time``.

The *shape* -- rise and saturate, and the ~33x gap between KV ops and
N1QL range queries -- comes from the measured service times, not from
fitted constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .client import YcsbClient


@dataclass
class SweepPoint:
    threads: int
    throughput: float
    mean_latency: float


def measure_service_time(client: YcsbClient, operations: int = 300,
                         warmup: int = 30) -> float:
    """Mean wall-clock seconds per operation through the real stack."""
    for _ in range(warmup):
        client.run_one()
    # This function's whole job is to measure real elapsed time of the
    # stack under test; the wall clock is the measurement instrument,
    # not simulation state.
    start = time.perf_counter()  # repro-lint: disable=no-wall-clock
    for _ in range(operations):
        client.run_one()
    elapsed = time.perf_counter() - start  # repro-lint: disable=no-wall-clock
    return elapsed / operations


def seidmann_extra_delay(service_time: float, servers: int) -> float:
    """The pure-delay leg of the Seidmann transformation of an
    ``servers``-server queueing station."""
    return service_time * (servers - 1) / servers


def mva_throughput(
    population: int,
    service_time: float,
    servers: int,
    delay: float,
) -> tuple[float, float]:
    """Closed-network MVA: returns (throughput, mean response time).

    ``population`` concurrent customers circulate between a delay
    station (``delay`` seconds, infinite servers) and a queueing station
    with ``servers`` servers each taking ``service_time`` per job.  The
    multi-server station is handled with the Seidmann transformation:
    an FCFS station with service ``service_time / servers`` in series
    with a pure delay of ``service_time * (servers - 1) / servers``.

    The mean response time is the residence time at the queueing
    station of the transformed network, i.e. the cycle time minus
    *both* delay legs -- the think/RTT delay **and** the Seidmann
    ``extra_delay`` shift.  With that convention the returned pair
    satisfies Little's law for the closed loop exactly::

        population == throughput * (response + delay + extra_delay)

    (Subtracting only ``delay``, as an earlier version did, leaks the
    Seidmann shift into the response and overstates per-op latency.)
    """
    if population < 1:
        return 0.0, 0.0
    fast_service = service_time / servers
    extra_delay = seidmann_extra_delay(service_time, servers)
    total_delay = delay + extra_delay
    queue_length = 0.0
    throughput = 0.0
    for customers in range(1, population + 1):
        response = fast_service * (1.0 + queue_length)
        throughput = customers / (response + total_delay)
        queue_length = throughput * response
    if not throughput:
        return 0.0, 0.0
    return throughput, (population / throughput) - total_delay


@dataclass
class ClusterModel:
    """Capacity parameters for the sweep model.

    The paper's testbed: a 4-node cluster and 4 client machines on a
    LAN.  ``effective_servers`` is nodes x per-node concurrency; the
    default models each data node happily serving a handful of
    in-flight requests (network I/O overlap), which is what makes the
    curve keep climbing past 4 threads the way Figure 15 does."""

    nodes: int = 4
    per_node_concurrency: int = 8
    network_round_trip: float = 0.0005  # 0.5 ms LAN RTT + client think

    @property
    def effective_servers(self) -> int:
        return self.nodes * self.per_node_concurrency


def sweep_threads(
    service_time: float,
    thread_counts: list[int],
    model: ClusterModel | None = None,
) -> list[SweepPoint]:
    """Model the thread sweep for a measured per-op service time."""
    model = model if model is not None else ClusterModel()
    points = []
    for threads in thread_counts:
        throughput, response = mva_throughput(
            threads, service_time, model.effective_servers,
            model.network_round_trip,
        )
        points.append(SweepPoint(threads, throughput, response))
    return points


def run_sweep(
    client: YcsbClient,
    thread_counts: list[int],
    measure_ops: int = 300,
    model: ClusterModel | None = None,
) -> tuple[float, list[SweepPoint]]:
    """Measure the real service time, then model the sweep.

    Returns ``(measured_service_time_seconds, sweep points)``."""
    service_time = measure_service_time(client, operations=measure_ops)
    return service_time, sweep_threads(service_time, thread_counts, model)
