"""repro -- a reproduction of "Have Your Data and Query It Too: From
Key-Value Caching to Big Data Management" (SIGMOD 2016).

An in-process, memory-first, shared-nothing, auto-partitioned document
database in the Couchbase Server 4.1/4.5 mold: key-value access with CAS
and durability options, local map/reduce view indexes, global secondary
indexes, the N1QL query language, DCP change streams, rebalance and
failover, multi-dimensional scaling, and XDCR -- plus a YCSB harness that
regenerates the paper's two evaluation figures.

Quickstart::

    from repro import Cluster

    cluster = Cluster(nodes=2, vbuckets=64)
    bucket = cluster.create_bucket("profiles")
    client = cluster.connect()
    client.upsert("profiles", "borkar123",
                  {"name": "Dipti", "email": "dipti@couchbase.com"})
    client.query("CREATE PRIMARY INDEX ON profiles USING GSI")
    rows = client.query("SELECT p.name FROM profiles p").rows
"""

__version__ = "1.0.0"

from .client.smart_client import BatchResult
from .common.errors import ReproError
from .server import Cluster

__all__ = ["BatchResult", "Cluster", "ReproError", "__version__"]
