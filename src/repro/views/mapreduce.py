"""View definitions: map and reduce functions.

Section 3.1.2: a view is defined by a Map function that calls ``emit(key,
value)`` for data it wants indexed, plus an optional Reduce that
aggregates emitted values.  The paper's views are JavaScript; here they
are Python callables with the same shape::

    def map_fn(doc, meta, emit):
        if "name" in doc:
            emit(doc["name"], doc.get("email"))

Reduces may be one of the built-in names the real server ships
("_count", "_sum", "_stats") or a custom callable with the CouchDB
signature ``reduce(values, rereduce)``.

Views can also be generated from ``CREATE INDEX ... USING VIEW`` DDL
(section 3.3.1): :func:`attribute_view` builds the map function that
emits the named attribute, mirroring what the server generates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

MapFn = Callable[[dict, "DocMetaView", Callable[[Any, Any], None]], None]
ReduceFn = Callable[[list, bool], Any]


@dataclass
class DocMetaView:
    """The subset of document metadata exposed to map functions."""

    id: str
    rev: int
    expiry: float
    flags: int


def _count(values: list, rereduce: bool) -> int:
    if rereduce:
        return sum(values)
    return len(values)


def _sum(values: list, rereduce: bool) -> float:
    total = 0
    for value in values:
        total += value if isinstance(value, (int, float)) else 0
    return total


def _stats(values: list, rereduce: bool) -> dict:
    if rereduce:
        merged = {
            "sum": 0, "count": 0, "min": None, "max": None, "sumsqr": 0,
        }
        for stats in values:
            merged["sum"] += stats["sum"]
            merged["count"] += stats["count"]
            merged["sumsqr"] += stats["sumsqr"]
            for bound, pick in (("min", min), ("max", max)):
                if merged[bound] is None:
                    merged[bound] = stats[bound]
                elif stats[bound] is not None:
                    merged[bound] = pick(merged[bound], stats[bound])
        return merged
    numbers = [v for v in values if isinstance(v, (int, float))]
    return {
        "sum": sum(numbers),
        "count": len(values),
        "min": min(numbers) if numbers else None,
        "max": max(numbers) if numbers else None,
        "sumsqr": sum(n * n for n in numbers),
    }


BUILTIN_REDUCES: dict[str, ReduceFn] = {
    "_count": _count,
    "_sum": _sum,
    "_stats": _stats,
}


@dataclass
class ViewDefinition:
    """One view inside a design document."""

    design: str
    name: str
    map_fn: MapFn
    reduce_fn: ReduceFn | None = None

    def __post_init__(self):
        if isinstance(self.reduce_fn, str):
            try:
                self.reduce_fn = BUILTIN_REDUCES[self.reduce_fn]
            except KeyError:
                raise ValueError(
                    f"unknown builtin reduce {self.reduce_fn!r}; "
                    f"choose from {sorted(BUILTIN_REDUCES)}"
                ) from None

    @property
    def full_name(self) -> str:
        return f"{self.design}/{self.name}"

    def run_map(self, doc: dict, meta: DocMetaView) -> list[tuple[Any, Any]]:
        """Apply the map function; returns the emitted (key, value) rows.
        A throwing map function indexes nothing for that document (the
        server logs and skips, it does not fail the build)."""
        rows: list[tuple[Any, Any]] = []

        def emit(key, value=None):
            rows.append((key, value))

        try:
            self.map_fn(doc, meta, emit)
        except Exception:
            return []
        return rows


def attribute_view(design: str, name: str, attribute: str,
                   reduce_fn: ReduceFn | str | None = None) -> ViewDefinition:
    """The view that ``CREATE INDEX <name> ON bucket(<attribute>) USING
    VIEW`` generates: emit the attribute (dotted paths allowed) keyed for
    range scans, skipping documents where it is missing."""
    parts = attribute.split(".")

    def map_fn(doc, meta, emit):
        current = doc
        for part in parts:
            if not isinstance(current, dict) or part not in current:
                return
            current = current[part]
        emit(current, None)

    return ViewDefinition(design, name, map_fn, reduce_fn)


def primary_view(design: str = "_primary", name: str = "primary") -> ViewDefinition:
    """The PRIMARY INDEX as a view (section 3.3.3): emit every document
    ID so range scans over the whole keyspace are possible."""

    def map_fn(doc, meta, emit):
        emit(meta.id, None)

    return ViewDefinition(design, name, map_fn)
