"""Scatter/gather view queries.

Section 4.3.3 and Figure 8: "Queries are sent to a randomly selected
server within the cluster.  The server that receives a query sends the
request to the other relevant servers in the cluster and then aggregates
their results."

The coordinator fans a query out to every data node, k-way-merges the
sorted partial row sets under view collation, and applies skip/limit to
the merged stream.  Reduce queries re-reduce the per-node partials;
grouped queries merge group keys across nodes and re-reduce per group.

Staleness (section 3.1.2) is enforced here:

* ``stale=false``  -- drive the scheduler until every node's view engine
  has indexed through the data's current seqnos, then query.
* ``stale=ok``     -- query whatever is indexed right now.
* ``stale=update_after`` -- query now; the ever-running indexer pumps
  apply the pending mutations afterwards.  This is the default.
"""

from __future__ import annotations

import heapq
import json
from typing import TYPE_CHECKING, Any

from ..common.errors import TimeoutError_, ViewNotFoundError
from ..n1ql.collation import sort_key
from .viewindex import ViewQueryParams

if TYPE_CHECKING:
    from ..server import Cluster


class ViewResult:
    """What a view query returns: rows, or a single reduced value."""

    def __init__(self, rows: list[dict] | None = None, value: Any = None,
                 is_reduced: bool = False):
        self.rows = rows if rows is not None else []
        self.value = value
        self.is_reduced = is_reduced

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


class ViewQueryCoordinator:
    """Cluster-level view querying."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster

    def _data_nodes(self):
        manager = self.cluster.manager
        return [
            manager.nodes[name]
            for name in manager.data_nodes()
            if not self.cluster.network.is_down(name)
        ]

    def _view_engines(self, bucket: str):
        return [
            node.view_engines[bucket]
            for node in self._data_nodes()
            if bucket in node.view_engines
        ]

    def _definition(self, bucket: str, design: str, view: str):
        for engine in self._view_engines(bucket):
            index = engine.indexes.get((design, view))
            if index is not None:
                return index.definition
        raise ViewNotFoundError(design, view)

    def query(self, bucket: str, design: str, view: str,
              params: ViewQueryParams | None = None, **kwargs) -> ViewResult:
        if params is None:
            params = ViewQueryParams(**kwargs)
        elif kwargs:
            raise TypeError("pass either params or keyword options, not both")
        definition = self._definition(bucket, design, view)

        if params.stale == "false":
            engines = self._view_engines(bucket)
            caught_up = lambda: all(e.caught_up() for e in engines)  # noqa: E731
            if not self.cluster.scheduler.run_until(caught_up):
                raise TimeoutError_("stale=false wait did not converge")

        # Scatter to every data node hosting the bucket, down or not:
        # each holds vbuckets no other node serves, so skipping one
        # would silently drop its rows from the result.  A down node
        # makes network.call raise NodeDownError to the caller.
        partials = []
        manager = self.cluster.manager
        for name in manager.data_nodes():
            node = manager.nodes[name]
            if bucket not in node.view_engines:
                continue
            # Scatter-gather: one view RPC per data node, each holding
            # vbuckets nobody else serves -- per-node by design.
            # repro-hotpath: disable-next=n-plus-one-rpc
            partial = self.cluster.network.call(
                "view-coordinator", node.name, "view_query_local",
                bucket, design, view, params,
            )
            partials.append(partial)
        self.cluster.network.calls[("view-coordinator", "scatter_gather")] += 1
        return self._merge(definition, partials, params)

    # -- merging ----------------------------------------------------------------------

    def _merge(self, definition, partials: list[dict],
               params: ViewQueryParams) -> ViewResult:
        if not partials:
            return ViewResult()
        kind = partials[0]["kind"]
        if kind == "reduced":
            values = [p["value"] for p in partials]
            value = definition.reduce_fn(values, True) if len(values) > 1 else values[0]
            return ViewResult(value=value, is_reduced=True)
        if kind == "grouped":
            return self._merge_grouped(definition, partials, params)
        streams = [p["rows"] for p in partials]
        rows = _kway_merge(streams, params.descending)
        if params.skip:
            rows = rows[params.skip:]
        if params.limit is not None:
            rows = rows[:params.limit]
        return ViewResult(rows=rows)

    def _merge_grouped(self, definition, partials: list[dict],
                       params: ViewQueryParams) -> ViewResult:
        merged: dict[str, tuple[Any, list]] = {}
        for partial in partials:
            for row in partial["rows"]:
                token = json.dumps(row["key"], sort_keys=True,
                                   separators=(",", ":"))
                if token in merged:
                    merged[token][1].append(row["value"])
                else:
                    merged[token] = (row["key"], [row["value"]])
        rows = []
        for group_key, values in merged.values():
            value = (
                definition.reduce_fn(values, True) if len(values) > 1 else values[0]
            )
            rows.append({"key": group_key, "value": value})
        rows.sort(key=lambda r: sort_key(r["key"]), reverse=params.descending)
        if params.skip:
            rows = rows[params.skip:]
        if params.limit is not None:
            rows = rows[:params.limit]
        return ViewResult(rows=rows)


def _kway_merge(streams: list[list[dict]], descending: bool) -> list[dict]:
    """Merge per-node row lists already sorted under view collation."""
    if descending:
        # Descending streams arrive reverse-sorted; a concatenate-and-sort
        # is simplest and the per-node lists are already small.
        merged = [row for rows in streams for row in rows]
        merged.sort(key=lambda r: sort_key((r["key"], r["id"])), reverse=True)
        return merged
    heap = []
    for stream_index, rows in enumerate(streams):
        if rows:
            heap.append(
                (sort_key((rows[0]["key"], rows[0]["id"])), stream_index, 0)
            )
    heapq.heapify(heap)
    merged: list[dict] = []
    while heap:
        _key, stream_index, row_index = heapq.heappop(heap)
        merged.append(streams[stream_index][row_index])
        next_index = row_index + 1
        if next_index < len(streams[stream_index]):
            row = streams[stream_index][next_index]
            heapq.heappush(
                heap,
                (sort_key((row["key"], row["id"])), stream_index, next_index),
            )
    return merged
