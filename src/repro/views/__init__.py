"""The view engine: local map/reduce indexes with pre-computed
aggregates, incremental DCP-fed maintenance, configurable staleness, and
scatter/gather querying (sections 3.1.2 and 4.3.3)."""

from .engine import ViewEngine
from .mapreduce import (
    BUILTIN_REDUCES,
    DocMetaView,
    ViewDefinition,
    attribute_view,
    primary_view,
)
from .query import ViewQueryCoordinator, ViewResult
from .viewindex import ViewIndex, ViewQueryParams

__all__ = [
    "BUILTIN_REDUCES",
    "DocMetaView",
    "ViewDefinition",
    "ViewEngine",
    "ViewIndex",
    "ViewQueryCoordinator",
    "ViewQueryParams",
    "ViewResult",
    "attribute_view",
    "primary_view",
]
