"""The per-node view index structure.

Section 4.3.3 (View Engine): the view index is a local B-tree whose keys
are the emitted ``(key, doc_id)`` pairs in view collation order, whose
interior nodes carry the **pre-computed reduce** of their subtree, and
which stores vBucket information *in the tree itself* so that entries
belonging to migrated partitions can be masked out during rebalance and
failover without a rebuild.

A back-index (doc_id -> previously emitted keys) makes incremental
updates possible: when a document changes, its old rows are removed and
the new emissions inserted in one batch.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.disk import SimulatedDisk
from ..common.errors import ViewQueryError
from ..n1ql.collation import compare
from ..storage.appendlog import AppendLog
from .mapreduce import ReduceFn, ViewDefinition

#: Sentinel bounds: (key, doc_id) composite keys are compared
#: lexicographically, so a range on bare keys uses these to span every
#: doc_id under one key.  ``{}`` sorts after any scalar/array under view
#: collation; LOW sorts before any string doc id.
_LOW_DOCID = ""
_HIGH_DOCID = {"￿": "￿"}


def _composite_compare(a, b) -> int:
    order = compare(a[0], b[0])
    if order != 0:
        return order
    return compare(a[1], b[1])


class ViewIndex:
    """Materialized rows of one view on one node."""

    #: Incremental updates between automatic file compactions.
    COMPACT_EVERY = 4096

    def __init__(self, definition: ViewDefinition, disk: SimulatedDisk,
                 filename: str):
        from ..storage.btree import BTree
        self.definition = definition
        self.disk = disk
        self.filename = filename
        self.updates_since_compaction = 0
        self.compactions = 0
        self.log = AppendLog(disk.open(filename))
        user_reduce: ReduceFn | None = definition.reduce_fn
        if user_reduce is not None:
            tree_reduce = lambda values: user_reduce(  # noqa: E731
                [v["v"] for v in values], False
            )
            tree_rereduce = lambda parts: user_reduce(parts, True)  # noqa: E731
        else:
            tree_reduce = tree_rereduce = None
        self.tree = BTree(
            self.log,
            compare=_composite_compare,
            reduce_fn=tree_reduce,
            rereduce_fn=tree_rereduce,
        )
        #: doc_id -> list of [emitted_key, doc_id] composite keys.
        self.back_index: dict[str, list] = {}
        #: vBuckets that currently have rows in the tree.
        self.vbuckets_present: set[int] = set()

    # -- maintenance -----------------------------------------------------------

    def update_doc(self, doc_id: str, vbucket_id: int,
                   rows: list[tuple[Any, Any]]) -> None:
        """Replace the rows emitted by ``doc_id`` with ``rows``."""
        deletes = self.back_index.pop(doc_id, [])
        inserts = []
        keys = []
        for emitted_key, emitted_value in rows:
            composite = [emitted_key, doc_id]
            inserts.append((composite, {"v": emitted_value, "vb": vbucket_id}))
            keys.append(composite)
        if not deletes and not inserts:
            return
        self.tree = self.tree.batch_update(inserts=inserts, deletes=deletes)
        if keys:
            self.back_index[doc_id] = keys
            self.vbuckets_present.add(vbucket_id)
        self.updates_since_compaction += 1
        if self.updates_since_compaction >= self.COMPACT_EVERY:
            self.compact()

    def remove_doc(self, doc_id: str) -> None:
        self.update_doc(doc_id, -1, [])

    def remove_vbucket(self, vbucket_id: int) -> None:
        """Purge all rows of a migrated-away vBucket (the deactivation the
        paper describes, made permanent)."""
        doomed_docs = []
        deletes = []
        for composite, entry in self.tree.items():
            if entry["vb"] == vbucket_id:
                deletes.append(composite)
                doomed_docs.append(composite[1])
        if deletes:
            self.tree = self.tree.batch_update(deletes=deletes)
        for doc_id in doomed_docs:
            self.back_index.pop(doc_id, None)
        self.vbuckets_present.discard(vbucket_id)

    def compact(self) -> None:
        """Rewrite the index file with only the live rows.  View files
        are append-only like the data files (section 4.3.3), so churn
        leaves dead nodes behind; compaction copies the current tree
        into a fresh file and swaps it in."""
        from ..storage.btree import BTree
        temp_name = self.filename + ".compact"
        if self.disk.exists(temp_name):
            self.disk.delete(temp_name)
        new_log = AppendLog(self.disk.open(temp_name))
        new_tree = BTree(
            new_log,
            compare=self.tree.compare,
            reduce_fn=self.tree.reduce_fn,
            rereduce_fn=self.tree.rereduce_fn,
        )
        live_rows = list(self.tree.items())
        if live_rows:
            new_tree = new_tree.batch_update(inserts=live_rows)
        self.disk.delete(self.filename)
        self.disk.rename(temp_name, self.filename)
        new_log.file.name = self.filename
        self.log = new_log
        self.tree = new_tree
        self.updates_since_compaction = 0
        self.compactions += 1

    # -- queries ---------------------------------------------------------------

    def _bounds(self, params: "ViewQueryParams"):
        if params.key is not None:
            return ([params.key, _LOW_DOCID], [params.key, _HIGH_DOCID], True)
        start = end = None
        if params.startkey is not None:
            start = [params.startkey, _LOW_DOCID]
        if params.endkey is not None:
            if params.inclusive_end:
                end = [params.endkey, _HIGH_DOCID]
            else:
                end = [params.endkey, _LOW_DOCID]
        return (start, end, params.inclusive_end)

    def scan(self, params: "ViewQueryParams",
             active_vbuckets: set[int] | None = None) -> Iterator[dict]:
        """Yield row dicts {id, key, value} under the query parameters,
        masked to ``active_vbuckets`` when given."""
        if params.keys is not None:
            for wanted in params.keys:
                sub = params.replace(key=wanted, keys=None)
                yield from self.scan(sub, active_vbuckets)
            return
        start, end, _inclusive = self._bounds(params)
        # Composite bounds already encode end inclusivity: an inclusive
        # endkey becomes [endkey, HIGH] (after every doc id), an exclusive
        # one becomes [endkey, LOW] (before every doc id).
        for composite, entry in self.tree.range(
            start=start, end=end, descending=params.descending,
        ):
            if active_vbuckets is not None and entry["vb"] not in active_vbuckets:
                continue
            yield {"id": composite[1], "key": composite[0], "value": entry["v"]}

    def reduce(self, params: "ViewQueryParams",
               active_vbuckets: set[int] | None = None) -> Any:
        """Reduce over the query range.  Uses the tree's pre-computed
        subtree reductions when no vBucket masking is needed, otherwise
        falls back to scan-and-reduce over active rows."""
        definition = self.definition
        if definition.reduce_fn is None:
            raise ViewQueryError(f"view {definition.full_name} has no reduce")
        needs_mask = (
            active_vbuckets is not None
            and not self.vbuckets_present <= active_vbuckets
        )
        if not needs_mask and params.keys is None:
            start, end, _inclusive = self._bounds(params)
            return self.tree.reduce_range(start=start, end=end)
        values = [row["value"] for row in self.scan(params, active_vbuckets)]
        return definition.reduce_fn(values, False)

    def grouped(self, params: "ViewQueryParams",
                active_vbuckets: set[int] | None = None) -> list[dict]:
        """GROUP/GROUP_LEVEL reduce: one reduced row per (truncated) key."""
        definition = self.definition
        if definition.reduce_fn is None:
            raise ViewQueryError(f"view {definition.full_name} has no reduce")
        groups: list[tuple[Any, list]] = []
        for row in self.scan(params, active_vbuckets):
            group_key = row["key"]
            if params.group_level and isinstance(group_key, list):
                group_key = group_key[:params.group_level]
            if groups and compare(groups[-1][0], group_key) == 0:
                groups[-1][1].append(row["value"])
            else:
                groups.append((group_key, [row["value"]]))
        return [
            {"key": group_key, "value": definition.reduce_fn(values, False)}
            for group_key, values in groups
        ]

    def row_count(self) -> int:
        return self.tree.count()


class ViewQueryParams:
    """Query options of the View REST API (section 3.1.2)."""

    def __init__(
        self,
        key: Any = None,
        keys: list | None = None,
        startkey: Any = None,
        endkey: Any = None,
        inclusive_end: bool = True,
        descending: bool = False,
        limit: int | None = None,
        skip: int = 0,
        reduce: bool | None = None,
        group: bool = False,
        group_level: int = 0,
        stale: str = "update_after",
    ):
        if stale not in ("false", "ok", "update_after"):
            raise ValueError(f"invalid stale value {stale!r}")
        if key is not None and keys is not None:
            raise ValueError("key and keys are mutually exclusive")
        self.key = key
        self.keys = keys
        self.startkey = startkey
        self.endkey = endkey
        self.inclusive_end = inclusive_end
        self.descending = descending
        self.limit = limit
        self.skip = skip
        self.reduce = reduce
        self.group = group
        self.group_level = group_level
        self.stale = stale
        if group and not group_level:
            # group=true means exact-key grouping.
            self.group_level = 2**31

    def replace(self, **changes) -> "ViewQueryParams":
        params = ViewQueryParams.__new__(ViewQueryParams)
        params.__dict__.update(self.__dict__)
        params.__dict__.update(changes)
        return params
