"""The view engine: a DCP consumer that keeps local view indexes fresh.

Section 4.3.3: "the view engine runs within the data service ... a
consumer of the DCP feed of the mutations needed to update the view
indexes.  During initial view building, Couchbase reads the partition's
data files and applies the map function across every document."

One :class:`ViewEngine` runs per (node, bucket).  Its pump maintains a
DCP stream per locally active vBucket, applies every mutation to every
defined view, and tracks the per-vBucket indexed seqno -- which is what
``stale=false`` queries wait on (section 3.1.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common import tracing
from ..common.errors import ViewExistsError
from ..dcp.messages import Deletion, Mutation
from ..dcp.producer import DcpStream
from ..kv.types import VBucketState
from .mapreduce import DocMetaView, ViewDefinition
from .viewindex import ViewIndex, ViewQueryParams

if TYPE_CHECKING:
    from ..kv.engine import KVEngine


class ViewEngine:
    """Local view indexing and querying for one bucket on one node."""

    BATCH = 256

    def __init__(self, node, bucket: str):
        self.node = node
        self.bucket = bucket
        self.indexes: dict[tuple[str, str], ViewIndex] = {}
        self._streams: dict[int, DcpStream] = {}
        self.indexed_seqnos: dict[int, int] = {}

    @property
    def engine(self) -> KVEngine:
        return self.node.engines[self.bucket]

    # -- DDL ------------------------------------------------------------------

    def define_view(self, definition: ViewDefinition) -> ViewIndex:
        """Create (and initially materialize) a view.

        Initial build applies the map function across every locally
        active document, as the paper describes."""
        key = (definition.design, definition.name)
        if key in self.indexes:
            raise ViewExistsError(definition.full_name)
        filename = (
            f"views/{self.bucket}/{definition.design}_{definition.name}.view"
        )
        index = ViewIndex(definition, self.node.disk, filename)
        tracing.record_write(f"views/{self.node.name}/{self.bucket}")
        engine = self.engine
        for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
            for doc in engine.docs_in_vbucket(vbucket_id):
                meta = DocMetaView(doc.key, doc.meta.rev, doc.meta.expiry,
                                   doc.meta.flags)
                rows = definition.run_map(doc.value, meta)
                index.update_doc(doc.key, vbucket_id, rows)
        self.indexes[key] = index
        self.node.metrics.inc("views.defined")
        return index

    def drop_view(self, design: str, name: str) -> None:
        from ..common.errors import ViewNotFoundError
        if (design, name) not in self.indexes:
            raise ViewNotFoundError(design, name)
        del self.indexes[(design, name)]

    def get_index(self, design: str, name: str) -> ViewIndex:
        from ..common.errors import ViewNotFoundError
        index = self.indexes.get((design, name))
        if index is None:
            raise ViewNotFoundError(design, name)
        return index

    # -- incremental maintenance (the DCP consumer pump) ----------------------------

    def pump(self) -> bool:
        if not self.node.alive or not self.indexes:
            return False
        self._sync_streams()
        progressed = False
        for vbucket_id, stream in list(self._streams.items()):
            for message in stream.take(self.BATCH):
                if isinstance(message, Mutation):
                    self._apply(vbucket_id, message.doc, deleted=False)
                    progressed = True
                elif isinstance(message, Deletion):
                    self._apply(vbucket_id, message.doc, deleted=True)
                    progressed = True
            self.indexed_seqnos[vbucket_id] = max(
                self.indexed_seqnos.get(vbucket_id, 0), stream.last_seqno
            )
        return progressed

    def _sync_streams(self) -> None:
        """Track local active vBuckets: open streams for new ones, drop
        (and purge rows of) departed ones."""
        engine = self.engine
        active = set(engine.owned_vbuckets(VBucketState.ACTIVE))
        for vbucket_id in list(self._streams):
            if vbucket_id not in active:
                self._streams.pop(vbucket_id)
                self.indexed_seqnos.pop(vbucket_id, None)
                for index in self.indexes.values():
                    index.remove_vbucket(vbucket_id)
        producer = self.node.producers[self.bucket]
        for vbucket_id in active:
            if vbucket_id in self._streams:
                continue
            start = self.indexed_seqnos.get(vbucket_id, 0)
            self._streams[vbucket_id] = producer.stream_request(
                vbucket_id, start_seqno=start
            )

    def _apply(self, vbucket_id: int, doc, deleted: bool) -> None:
        tracing.record_write(f"views/{self.node.name}/{self.bucket}")
        for index in self.indexes.values():
            if deleted:
                index.remove_doc(doc.key)
            else:
                meta = DocMetaView(doc.key, doc.meta.rev, doc.meta.expiry,
                                   doc.meta.flags)
                rows = index.definition.run_map(doc.value, meta)
                index.update_doc(doc.key, vbucket_id, rows)
        self.node.metrics.inc("views.mutations_indexed")

    # -- staleness --------------------------------------------------------------------

    def caught_up(self) -> bool:
        """True when every locally active vBucket is indexed through its
        current high seqno (what stale=false waits for)."""
        engine = self.engine
        for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
            vb = engine.vbuckets[vbucket_id]
            if self.indexed_seqnos.get(vbucket_id, 0) < vb.high_seqno:
                return False
        return True

    # -- local query (one scatter target) ------------------------------------------------

    def local_query(self, design: str, name: str,
                    params: ViewQueryParams) -> dict:
        """Run a view query against this node's rows only.  The
        scatter/gather coordinator merges these partial results."""
        index = self.get_index(design, name)
        active = set(self.engine.owned_vbuckets(VBucketState.ACTIVE))
        wants_reduce = (
            index.definition.reduce_fn is not None and params.reduce is not False
        )
        if wants_reduce and (params.group or params.group_level):
            return {"kind": "grouped", "rows": index.grouped(params, active)}
        if wants_reduce:
            return {"kind": "reduced", "value": index.reduce(params, active)}
        rows = list(index.scan(params, active))
        return {"kind": "rows", "rows": rows}
