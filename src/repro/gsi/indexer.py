"""The local indexer.

Section 4.3.4: "The indexer component processes the changes received
from the router and manages the on-disk index tree data structure.  It
also provides the interface for the query client to run index scans."

One :class:`Indexer` lives inside each index-service node.  It hosts
index *instances* (the storage plus per-vBucket seqno watermarks), takes
key versions pushed by routers, and serves range scans.  Watermarks are
what ``request_plus`` consistency waits on: the scan coordinator blocks
until the indexer has processed every data-service seqno that existed at
query time (section 4.2: "the query engine will wait until the index is
updated up to the maximum sequence number for each vBucket").
"""

from __future__ import annotations


from ..common import tracing
from ..common.disk import SimulatedDisk
from ..common.errors import (
    IndexExistsError,
    IndexNotFoundError,
    declared_raises,
)
from .indexdef import IndexDefinition
from .projector import KeyVersion
from .storage import make_storage


class IndexInstance:
    """One index's rows (or one partition of them) on one index node."""

    def __init__(self, definition: IndexDefinition, disk: SimulatedDisk,
                 node_name: str):
        self.definition = definition
        self.node_name = node_name
        filename = f"gsi/{definition.bucket}/{definition.name}.index"
        self.storage = make_storage(definition.storage, disk, filename)
        #: vbucket -> highest seqno applied (or acknowledged via an empty
        #: key version).
        self.watermarks: dict[int, int] = {}
        self.items_applied = 0

    def apply(self, kv: KeyVersion) -> None:
        tracing.record_write(f"gsi/{self.node_name}/{self.definition.name}")
        self.storage.update_doc(kv.doc_id, kv.entries)
        current = self.watermarks.get(kv.vbucket_id, 0)
        if kv.seqno > current:
            self.watermarks[kv.vbucket_id] = kv.seqno
        self.items_applied += 1

    def set_watermarks(self, marks: dict[int, int]) -> None:
        for vbucket_id, seqno in marks.items():
            if seqno > self.watermarks.get(vbucket_id, 0):
                self.watermarks[vbucket_id] = seqno


class Indexer:
    """Index hosting + scan serving for one index-service node."""

    def __init__(self, node):
        self.node = node
        self.instances: dict[str, IndexInstance] = {}

    @declared_raises('IndexExistsError', 'InvalidArgumentError')
    def create(self, definition: IndexDefinition) -> IndexInstance:
        if definition.name in self.instances:
            raise IndexExistsError(definition.name)
        instance = IndexInstance(definition, self.node.disk, self.node.name)
        self.instances[definition.name] = instance
        self.node.metrics.inc("gsi.indexes_hosted")
        return instance

    def drop(self, name: str) -> None:
        self.instances.pop(name, None)

    def instance(self, name: str) -> IndexInstance:
        instance = self.instances.get(name)
        if instance is None:
            raise IndexNotFoundError(name)
        return instance

    # -- RPC surface -----------------------------------------------------------------

    def apply(self, kv: KeyVersion) -> None:
        instance = self.instances.get(kv.index_name)
        if instance is not None:
            instance.apply(kv)

    @declared_raises('IndexNotFoundError')
    def scan(self, name: str, low: list | None, high: list | None,
             inclusive_low: bool = True, inclusive_high: bool = True,
             descending: bool = False,
             limit: int | None = None) -> list[tuple[list, str]]:
        """Range scan; returns [(key_components, doc_id), ...] sorted.

        An index "simply returns the document ID for each attribute match
        found" (section 4.5.1) -- plus the key components themselves,
        which is what makes covering indexes (section 5.1.2) possible."""
        instance = self.instance(name)
        rows = []
        for key_components, doc_id in instance.storage.scan(
            low, high, inclusive_low, inclusive_high, descending,
        ):
            rows.append((key_components, doc_id))
            if limit is not None and len(rows) >= limit:
                break
        self.node.metrics.inc("gsi.scans")
        return rows

    @declared_raises('IndexNotFoundError')
    def watermarks(self, name: str) -> dict[int, int]:
        return dict(self.instance(name).watermarks)

    def count(self, name: str) -> int:
        return self.instance(name).storage.count()
