"""The local indexer.

Section 4.3.4: "The indexer component processes the changes received
from the router and manages the on-disk index tree data structure.  It
also provides the interface for the query client to run index scans."

One :class:`Indexer` lives inside each index-service node.  It hosts
index *instances* (the storage plus per-vBucket seqno watermarks), takes
key versions pushed by routers, and serves range scans.  Watermarks are
what ``request_plus`` consistency waits on: the scan coordinator blocks
until the indexer has processed every data-service seqno that existed at
query time (section 4.2: "the query engine will wait until the index is
updated up to the maximum sequence number for each vBucket").
"""

from __future__ import annotations

import json

from ..common import tracing
from ..common.disk import SimulatedDisk
from ..common.errors import (
    IndexExistsError,
    IndexNotFoundError,
    declared_raises,
)
from ..n1ql.collation import MISSING, compare
from .indexdef import IndexDefinition
from .projector import KeyVersion
from .storage import composite_compare, make_storage


class IndexInstance:
    """One index's rows (or one partition of them) on one index node."""

    #: one watermark per vbucket -- capacity is the vbucket keyspace.
    __bounds__ = ("watermarks",)

    def __init__(self, definition: IndexDefinition, disk: SimulatedDisk,
                 node_name: str):
        self.definition = definition
        self.node_name = node_name
        filename = f"gsi/{definition.bucket}/{definition.name}.index"
        self.storage = make_storage(definition.storage, disk, filename)
        #: vbucket -> highest seqno applied (or acknowledged via an empty
        #: key version).
        self.watermarks: dict[int, int] = {}
        self.items_applied = 0

    def apply(self, kv: KeyVersion) -> None:
        tracing.record_write(f"gsi/{self.node_name}/{self.definition.name}")
        self.storage.update_doc(kv.doc_id, kv.entries)
        current = self.watermarks.get(kv.vbucket_id, 0)
        if kv.seqno > current:
            self.watermarks[kv.vbucket_id] = kv.seqno
        self.items_applied += 1

    def set_watermarks(self, marks: dict[int, int]) -> None:
        for vbucket_id, seqno in marks.items():
            if seqno > self.watermarks.get(vbucket_id, 0):
                self.watermarks[vbucket_id] = seqno


class Indexer:
    """Index hosting + scan serving for one index-service node."""

    def __init__(self, node):
        self.node = node
        self.instances: dict[str, IndexInstance] = {}

    @declared_raises('IndexExistsError', 'InvalidArgumentError')
    def create(self, definition: IndexDefinition) -> IndexInstance:
        if definition.name in self.instances:
            raise IndexExistsError(definition.name)
        instance = IndexInstance(definition, self.node.disk, self.node.name)
        self.instances[definition.name] = instance
        self.node.metrics.inc("gsi.indexes_hosted")
        return instance

    def drop(self, name: str) -> None:
        self.instances.pop(name, None)

    def instance(self, name: str) -> IndexInstance:
        instance = self.instances.get(name)
        if instance is None:
            raise IndexNotFoundError(name)
        return instance

    # -- RPC surface -----------------------------------------------------------------

    def apply(self, kv: KeyVersion) -> None:
        instance = self.instances.get(kv.index_name)
        if instance is not None:
            instance.apply(kv)

    @declared_raises('IndexNotFoundError')
    def scan(self, name: str, low: list | None, high: list | None,
             inclusive_low: bool = True, inclusive_high: bool = True,
             descending: bool = False,
             limit: int | None = None) -> list[tuple[list, str]]:
        """Range scan; returns [(key_components, doc_id), ...] sorted.

        An index "simply returns the document ID for each attribute match
        found" (section 4.5.1) -- plus the key components themselves,
        which is what makes covering indexes (section 5.1.2) possible."""
        instance = self.instance(name)
        rows = []
        for key_components, doc_id in instance.storage.scan(
            low, high, inclusive_low, inclusive_high, descending,
        ):
            rows.append((key_components, doc_id))
            if limit is not None and len(rows) >= limit:
                break
        self.node.metrics.inc("gsi.scans")
        self.node.metrics.inc("gsi.scan_rows", len(rows))
        return rows

    @declared_raises('IndexNotFoundError')
    def scan_page(self, name: str, low: list | None, high: list | None,
                  inclusive_low: bool = True, inclusive_high: bool = True,
                  descending: bool = False, page_size: int = 64,
                  after: tuple[list, str] | None = None,
                  ) -> tuple[list[tuple[list, str]], bool]:
        """One page of a range scan: up to ``page_size`` rows strictly
        past the ``after`` continuation (the last row of the previous
        page), plus an exhausted flag.

        This is the node half of the coordinator's streaming merge: the
        coordinator pulls pages on demand and stops once a LIMIT is
        satisfied, so a partition never materializes a partial the merge
        frontier will not reach.  The continuation restarts the walk at
        ``after``'s key, skipping rows at-or-before it -- duplicate keys
        at the page boundary are re-walked but never re-returned."""
        instance = self.instance(name)
        page_size = max(1, page_size)
        after_row: list | None = None
        if after is not None:
            after_row = [after[0], after[1]]
            if descending:
                high, inclusive_high = after[0], True
            else:
                low, inclusive_low = after[0], True
        rows: list[tuple[list, str]] = []
        for key_components, doc_id in instance.storage.scan(
            low, high, inclusive_low, inclusive_high, descending,
        ):
            if after_row is not None:
                order = composite_compare([key_components, doc_id], after_row)
                if order >= 0 if descending else order <= 0:
                    continue
            rows.append((key_components, doc_id))
            if len(rows) >= page_size:
                break
        self.node.metrics.inc("gsi.scan_pages")
        self.node.metrics.inc("gsi.scan_page_rows", len(rows))
        return rows, len(rows) < page_size

    @declared_raises('IndexNotFoundError')
    def scan_aggregate(self, name: str, low: list | None, high: list | None,
                       inclusive_low: bool = True,
                       inclusive_high: bool = True,
                       group_positions: list[int] | tuple = (),
                       agg_specs: list[tuple[str, int | None]] | tuple = (),
                       ) -> list[list]:
        """Partial GROUP BY over this node's index rows (section 5.1's
        pre-computed aggregates): group on the key components at
        ``group_positions`` and fold each ``(aggregate_name, position)``
        spec into a mergeable partial state, so only group summaries --
        never rows -- cross the fabric.

        A spec position of None is COUNT(*) (counts rows) and -1 takes
        the document id.  Each partial is ``[count, total, best]``:
        ``count`` counts non-MISSING/non-NULL inputs, ``total`` sums
        numeric inputs (SUM/AVG), ``best`` tracks the MIN/MAX candidate.
        Returns ``[[group_token, group_values, partials], ...]`` sorted
        by token; the token is the same JSON shape the query service's
        Group operator uses, so the coordinator merges by value
        equality, not object identity."""
        instance = self.instance(name)
        groups: dict[str, tuple[list, list[list]]] = {}
        for key_components, doc_id in instance.storage.scan(
            low, high, inclusive_low, inclusive_high, False,
        ):
            values = [key_components[p] for p in group_positions]
            token = json.dumps(
                [None if v is MISSING else ["$", v] for v in values],
                sort_keys=True,
            )
            entry = groups.get(token)
            if entry is None:
                entry = (values, [[0, 0, MISSING] for _ in agg_specs])
                groups[token] = entry
            for (agg_name, position), partial in zip(agg_specs, entry[1]):
                if position is None:  # COUNT(*): counts rows, not values
                    partial[0] += 1
                    continue
                value = doc_id if position < 0 else key_components[position]
                if value is MISSING or value is None:
                    continue  # aggregates ignore MISSING and NULL inputs
                partial[0] += 1
                if agg_name in ("SUM", "AVG") \
                        and isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    partial[1] += value
                elif agg_name == "MIN":
                    if partial[2] is MISSING or compare(value, partial[2]) < 0:
                        partial[2] = value
                elif agg_name == "MAX":
                    if partial[2] is MISSING or compare(value, partial[2]) > 0:
                        partial[2] = value
        self.node.metrics.inc("gsi.scan_aggregates")
        return [
            [token, groups[token][0], groups[token][1]]
            for token in sorted(groups)
        ]

    @declared_raises('IndexNotFoundError')
    def watermarks(self, name: str) -> dict[int, int]:
        return dict(self.instance(name).watermarks)

    def count(self, name: str) -> int:
        return self.instance(name).storage.count()
