"""Index storage backends.

The paper's "Indexer (Local Indexer) ... manages the on-disk index tree
data structure" (section 4.3.4); version 4.5 adds fully memory-resident
indexes with disk backups for recoverability (section 6.1.1).  Both
backends expose the same interface:

* ``update_doc(doc_id, entries)`` -- replace all entries of a document
  (the back-index lives inside the storage so updates are one call);
* ``scan(low, high, ...)``        -- ordered range scan over composite
  keys, yielding ``(key_tuple, doc_id)``;
* ``count()`` / stats.

Composite keys are lists of JSON values compared component-wise under
N1QL collation, with the doc_id as the final tiebreaker.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from ..common.disk import SimulatedDisk
from ..common.errors import InvalidArgumentError
from ..n1ql.collation import MISSING, compare
from ..storage.appendlog import AppendLog
from ..storage.btree import BTree

#: Encoded form of MISSING inside stored keys (MISSING is not JSON).
_MISSING_TOKEN = {"__missing__": True}


def encode_key(components: list) -> list:
    return [
        _MISSING_TOKEN if c is MISSING else c
        for c in components
    ]


def decode_key(components: list) -> list:
    return [
        MISSING if isinstance(c, dict) and c.get("__missing__") else c
        for c in components
    ]


def composite_compare(a, b) -> int:
    """Compare [key_components, doc_id] pairs."""
    order = _components_compare(a[0], b[0])
    if order != 0:
        return order
    return compare(a[1], b[1])


def _components_compare(a: list, b: list) -> int:
    for item_a, item_b in zip(a, b):
        order = compare(_decode_one(item_a), _decode_one(item_b))
        if order != 0:
            return order
    return (len(a) > len(b)) - (len(a) < len(b))


def _decode_one(value):
    if isinstance(value, dict) and value.get("__missing__"):
        return MISSING
    return value


#: Bounds used to turn a bare-key range into a composite range.
LOW_BOUND: Any = ""
HIGH_BOUND: Any = {"￿": "￿"}


class BTreeIndexStorage:
    """Standard (disk-resident) index: copy-on-write B-tree in an
    append-only file on the index node's disk."""

    kind = "standard"

    def __init__(self, disk: SimulatedDisk, filename: str):
        self.log = AppendLog(disk.open(filename))
        self.tree = BTree(self.log, compare=composite_compare)
        self.back_index: dict[str, list] = {}

    def update_doc(self, doc_id: str, entries: list[list]) -> None:
        deletes = self.back_index.pop(doc_id, [])
        inserts = []
        stored_keys = []
        for key_components in entries:
            composite = [encode_key(key_components), doc_id]
            inserts.append((composite, None))
            stored_keys.append(composite)
        if not deletes and not inserts:
            return
        self.tree = self.tree.batch_update(inserts=inserts, deletes=deletes)
        if stored_keys:
            self.back_index[doc_id] = stored_keys

    def scan(self, low: list | None, high: list | None,
             inclusive_low: bool = True, inclusive_high: bool = True,
             descending: bool = False) -> Iterator[tuple[list, str]]:
        start = end = None
        if low is not None:
            start = [encode_key(low),
                     LOW_BOUND if inclusive_low else HIGH_BOUND]
        if high is not None:
            end = [encode_key(high),
                   HIGH_BOUND if inclusive_high else LOW_BOUND]
        for composite, _value in self.tree.range(
            start=start, end=end, descending=descending,
        ):
            yield decode_key(composite[0]), composite[1]

    def count(self) -> int:
        return self.tree.count()

    def memory_bytes(self) -> int:
        return 0  # resident data lives on "disk"

    def disk_bytes(self) -> int:
        return self.log.size


class _SkipNode:
    __slots__ = ("key", "doc_id", "forward")

    def __init__(self, key, doc_id, level):
        self.key = key
        self.doc_id = doc_id
        self.forward: list = [None] * level


class SkipListIndexStorage:
    """Memory-optimized index (section 6.1.1): a skiplist kept entirely
    in memory, with :meth:`snapshot_to_disk` providing the paper's
    "recoverability via disk-backups"."""

    kind = "memopt"
    MAX_LEVEL = 16
    P = 0.5

    def __init__(self, disk: SimulatedDisk | None = None,
                 filename: str | None = None, seed: int = 7):
        self._rng = random.Random(seed)
        self._head = _SkipNode(None, None, self.MAX_LEVEL)
        self._level = 1
        self._size = 0
        self.back_index: dict[str, list] = {}
        self._disk = disk
        self._filename = filename

    # -- skiplist internals -----------------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while self._rng.random() < self.P and level < self.MAX_LEVEL:
            level += 1
        return level

    def _less(self, node: _SkipNode, key, doc_id) -> bool:
        order = composite_compare([node.key, node.doc_id], [key, doc_id])
        return order < 0

    def _insert(self, key, doc_id) -> None:
        update = [self._head] * self.MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and self._less(node.forward[level], key, doc_id)):
                node = node.forward[level]
            update[level] = node
        candidate = node.forward[0]
        if (candidate is not None
                and composite_compare([candidate.key, candidate.doc_id],
                                      [key, doc_id]) == 0):
            return  # already present
        new_level = self._random_level()
        if new_level > self._level:
            self._level = new_level
        new_node = _SkipNode(key, doc_id, new_level)
        for level in range(new_level):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._size += 1

    def _delete(self, key, doc_id) -> None:
        update = [self._head] * self.MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and self._less(node.forward[level], key, doc_id)):
                node = node.forward[level]
            update[level] = node
        target = node.forward[0]
        if (target is None
                or composite_compare([target.key, target.doc_id],
                                     [key, doc_id]) != 0):
            return
        for level in range(self._level):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        self._size -= 1

    # -- storage interface ---------------------------------------------------------

    def update_doc(self, doc_id: str, entries: list[list]) -> None:
        for old_key in self.back_index.pop(doc_id, []):
            self._delete(old_key, doc_id)
        stored = []
        for key_components in entries:
            encoded = encode_key(key_components)
            self._insert(encoded, doc_id)
            stored.append(encoded)
        if stored:
            self.back_index[doc_id] = stored

    def scan(self, low: list | None, high: list | None,
             inclusive_low: bool = True, inclusive_high: bool = True,
             descending: bool = False) -> Iterator[tuple[list, str]]:
        rows = self._scan_ascending(low, high, inclusive_low, inclusive_high)
        if descending:
            rows = reversed(list(rows))
        yield from rows

    def _scan_ascending(self, low, high, inclusive_low, inclusive_high):
        start_key = None
        if low is not None:
            start_key = [encode_key(low),
                         LOW_BOUND if inclusive_low else HIGH_BOUND]
        node = self._head
        if start_key is not None:
            for level in range(self._level - 1, -1, -1):
                while (node.forward[level] is not None
                       and composite_compare(
                           [node.forward[level].key,
                            node.forward[level].doc_id],
                           start_key) < 0):
                    node = node.forward[level]
        node = node.forward[0]
        end_key = None
        if high is not None:
            end_key = [encode_key(high),
                       HIGH_BOUND if inclusive_high else LOW_BOUND]
        while node is not None:
            if end_key is not None and composite_compare(
                    [node.key, node.doc_id], end_key) > 0:
                return
            yield decode_key(node.key), node.doc_id
            node = node.forward[0]

    def count(self) -> int:
        return self._size

    def memory_bytes(self) -> int:
        # Rough accounting: node overhead plus key contents.
        return self._size * 96

    def disk_bytes(self) -> int:
        return 0

    # -- recoverability (disk backup) ---------------------------------------------------

    def snapshot_to_disk(self) -> int:
        """Write a full backup of the in-memory index; returns bytes
        written.  Recovery is :meth:`load_snapshot` on a fresh instance."""
        if self._disk is None or self._filename is None:
            raise InvalidArgumentError("no backing disk configured for snapshots")
        import json
        payload = json.dumps(
            [[node_key, doc_id] for node_key, doc_id in self._raw_items()],
            separators=(",", ":"),
        ).encode("utf-8")
        file = self._disk.open(self._filename + ".snapshot")
        file.truncate(0)
        offset = file.append(payload)
        file.sync()
        return len(payload)

    def load_snapshot(self) -> int:
        import json
        file = self._disk.open(self._filename + ".snapshot")
        if file.size == 0:
            return 0
        payload = file.read(0, file.size)
        rows = json.loads(payload.decode("utf-8"))
        for node_key, doc_id in rows:
            self._insert(node_key, doc_id)
            self.back_index.setdefault(doc_id, []).append(node_key)
        return len(rows)

    def _raw_items(self):
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.doc_id
            node = node.forward[0]


def make_storage(kind: str, disk: SimulatedDisk, filename: str):
    """Factory for the two index storage backends ("standard" disk
    B-tree or "memopt" in-memory skiplist, section 6.1.1)."""
    if kind == "standard":
        return BTreeIndexStorage(disk, filename)
    if kind == "memopt":
        return SkipListIndexStorage(disk, filename)
    raise InvalidArgumentError(f"unknown index storage kind {kind!r}")
