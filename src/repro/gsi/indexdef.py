"""Global secondary index definitions.

Section 3.3.2: a GSI indexes documents of one bucket on one or more
attributes (or expressions), lives on index-service nodes separate from
the data, may be **partial** (a WHERE clause filters what gets indexed,
section 3.3.4), may be an **array index** over the elements of an
array-valued field (section 6.1.2), and may be **memory-optimized**
(section 6.1.1).

Key extraction is expressed as callables so the N1QL layer can compile
arbitrary index expressions down to them; the helpers here build the
common attribute-path extractors directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from ..n1ql.collation import MISSING

#: Extracts one index key component from (doc, doc_id).
KeyExtractor = Callable[[dict, str], Any]
#: Partial-index predicate over (doc, doc_id).
Condition = Callable[[dict, str], bool]


def path_extractor(path: str) -> KeyExtractor:
    """Extractor for a dotted attribute path; absent -> MISSING."""
    parts = path.split(".")

    def extract(doc: dict, doc_id: str) -> Any:
        current: Any = doc
        for part in parts:
            if not isinstance(current, dict) or part not in current:
                return MISSING
            current = current[part]
        return current

    return extract


def meta_id_extractor() -> KeyExtractor:
    """Extractor for meta().id -- what a PRIMARY INDEX indexes."""

    def extract(doc: dict, doc_id: str) -> Any:
        return doc_id

    return extract


@dataclass
class IndexDefinition:
    """Metadata + extraction logic for one GSI index."""

    name: str
    bucket: str
    #: Textual key expressions, for EXPLAIN and the planner.
    key_sources: list[str]
    #: One extractor per key component.
    extractors: list[KeyExtractor]
    #: Partial-index predicate (section 3.3.4), None = index everything.
    condition: Condition | None = None
    condition_source: str | None = None
    #: Which key component (if any) is an ARRAY index: its extractor
    #: yields a list and every distinct element becomes an entry.
    array_component: int | None = None
    #: "standard" (disk B-tree) or "memopt" (in-memory skiplist, §6.1.1).
    storage: str = "standard"
    #: True for CREATE PRIMARY INDEX (indexes meta().id).
    is_primary: bool = False
    #: Created WITH {"defer_build": true}: no rows until built.
    deferred: bool = False
    #: Number of hash partitions over index nodes (1 = unpartitioned).
    num_partitions: int = 1

    def __post_init__(self):
        if len(self.key_sources) != len(self.extractors):
            raise ValueError("key_sources and extractors must align")
        if not self.key_sources:
            raise ValueError("an index needs at least one key")
        if self.storage not in ("standard", "memopt"):
            raise ValueError(f"unknown index storage {self.storage!r}")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")

    def entries_for(self, doc: dict | None, doc_id: str) -> list[list]:
        """Index entries (key tuples as lists) for a document.

        Empty when the doc is deleted, fails the partial-index condition,
        or its leading key is MISSING (GSI semantics: documents without
        the leading key are not indexed)."""
        if doc is None:
            return []
        if self.condition is not None:
            try:
                if not self.condition(doc, doc_id):
                    return []
            except Exception:
                return []
        components: list[Any] = []
        for extractor in self.extractors:
            try:
                components.append(extractor(doc, doc_id))
            except Exception:
                components.append(MISSING)
        if self.array_component is None:
            if components[0] is MISSING:
                return []
            return [[_frozen(c) for c in components]]
        array_value = components[self.array_component]
        if not isinstance(array_value, list):
            return []
        entries = []
        seen: set[str] = set()
        for element in array_value:
            expanded = list(components)
            expanded[self.array_component] = element
            if expanded[0] is MISSING:
                continue
            token = json.dumps(_tokenable(expanded), sort_keys=True)
            if token in seen:
                continue  # DISTINCT ARRAY semantics
            seen.add(token)
            entries.append([_frozen(c) for c in expanded])
        return entries

    def describe(self) -> dict:
        return {
            "name": self.name,
            "bucket": self.bucket,
            "keys": list(self.key_sources),
            "condition": self.condition_source,
            "storage": self.storage,
            "is_primary": self.is_primary,
            "partitions": self.num_partitions,
        }


def _frozen(value: Any) -> Any:
    """MISSING is kept as the sentinel; everything else passes through."""
    return value


def _tokenable(components: list) -> list:
    return [None if c is MISSING else c for c in components]


def attribute_index(name: str, bucket: str, *paths: str,
                    storage: str = "standard",
                    condition: Condition | None = None,
                    condition_source: str | None = None) -> IndexDefinition:
    """CREATE INDEX name ON bucket(path1, path2, ...) USING GSI."""
    return IndexDefinition(
        name=name,
        bucket=bucket,
        key_sources=list(paths),
        extractors=[path_extractor(p) for p in paths],
        condition=condition,
        condition_source=condition_source,
        storage=storage,
    )


def primary_index(name: str, bucket: str,
                  storage: str = "standard",
                  deferred: bool = False) -> IndexDefinition:
    """CREATE PRIMARY INDEX ON bucket USING GSI (section 3.3.3)."""
    return IndexDefinition(
        name=name,
        bucket=bucket,
        key_sources=["meta().id"],
        extractors=[meta_id_extractor()],
        is_primary=True,
        storage=storage,
        deferred=deferred,
    )


def array_index(name: str, bucket: str, array_path: str,
                storage: str = "standard") -> IndexDefinition:
    """CREATE INDEX name ON bucket(DISTINCT ARRAY v FOR v IN <path> END)
    (section 6.1.2)."""
    return IndexDefinition(
        name=name,
        bucket=bucket,
        key_sources=[f"distinct array {array_path}"],
        extractors=[path_extractor(array_path)],
        array_component=0,
        storage=storage,
    )
