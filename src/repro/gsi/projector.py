"""The index projector and router.

Section 4.3.3: "The Projector is responsible for mapping incoming
mutations to a set of Global Secondary Key Versions needed for secondary
index maintenance.  The Projector resides within the data service where
the mutation originated, and it is a consumer of the DCP feed ... The
Router is responsible for sending Key Versions to the index service.
The router relies on the index distribution and partitioning topology to
determine which indexer(s) should receive the key version."

One projector pump runs per (data node, bucket).  It consumes the DCP
streams of the locally active vBuckets, evaluates every index defined on
the bucket against each mutation, and hands the resulting
:class:`KeyVersion` batches to the router, which forwards them to the
responsible index-service node(s) over the network.

Every mutation produces a key version for every index -- with an empty
entry list when the document does not qualify -- so that indexer seqno
watermarks advance even through non-matching traffic; that is what makes
``request_plus`` scans (section 3.2.3) terminate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import NodeDownError
from ..dcp.messages import Deletion, Mutation
from ..dcp.producer import DcpStream
from ..kv.types import VBucketState


@dataclass
class KeyVersion:
    """The projector's output: new index entries for one (doc, index)."""

    index_name: str
    bucket: str
    doc_id: str
    #: Extracted composite keys; empty = remove the doc from the index.
    entries: list[list]
    vbucket_id: int
    seqno: int


class Router:
    """Key-version routing (data node side)."""

    def __init__(self, node, registry, network):
        self.node = node
        self.registry = registry
        self.network = network

    def route(self, kv: KeyVersion) -> bool:
        """Deliver the key version to every responsible indexer node.

        Returns False when any target was unreachable.  The caller must
        NOT advance its watermark past an undelivered key version --
        dropping it here would mean the indexer never sees that seqno
        and the index diverges from the bucket permanently (the old code
        swallowed NodeDownError and lost the key version)."""
        meta = self.registry.get(kv.index_name)
        if meta is None:
            return True
        if meta.definition.num_partitions == 1:
            targets = [meta.nodes[0]]
        else:
            # Partitioned index: hash the doc id to a partition; a delete
            # with a changed partition key would need the old partition
            # too, so deletions fan out to every partition's node.
            if kv.entries:
                partition = _hash_partition(kv.doc_id,
                                            meta.definition.num_partitions)
                targets = [meta.nodes[partition % len(meta.nodes)]]
            else:
                targets = list(dict.fromkeys(meta.nodes))
        delivered = True
        for target in targets:
            try:
                # Mutations route to exactly one partition node; only
                # deletions fan out, and correctness requires it.
                # repro-hotpath: disable-next=n-plus-one-rpc
                self.network.call(self.node.name, target, "gsi_apply", kv)
            except NodeDownError:
                delivered = False
        return delivered


def _hash_partition(doc_id: str, partitions: int) -> int:
    from ..common.crc import crc32
    return crc32(doc_id.encode("utf-8")) % partitions


class Projector:
    """DCP consumer producing key versions (one per data node/bucket)."""

    BATCH = 256

    def __init__(self, node, bucket: str, registry, network):
        self.node = node
        self.bucket = bucket
        self.registry = registry
        self.router = Router(node, registry, network)
        self._streams: dict[int, DcpStream] = {}
        #: Per-vBucket seqno this projector has processed through.
        self.projected_seqnos: dict[int, int] = {}

    def pump(self) -> bool:
        engine = self.node.engines.get(self.bucket)
        if engine is None or not self.node.alive:
            return False
        self._sync_streams(engine)
        progressed = False
        for vbucket_id, stream in list(self._streams.items()):
            delivered_all = True
            for message in stream.take(self.BATCH):
                if not isinstance(message, (Mutation, Deletion)):
                    continue
                if self._project(vbucket_id, message):
                    # Advance only past key versions every indexer saw.
                    # Undelivered messages do not count as progress: the
                    # stream is dropped and replayed below, and claiming
                    # progress for a replay-forever loop would livelock
                    # run_until_idle while an indexer node is down.
                    progressed = True
                    self.projected_seqnos[vbucket_id] = max(
                        self.projected_seqnos.get(vbucket_id, 0),
                        message.doc.meta.seqno,
                    )
                else:
                    delivered_all = False
                    break
            if delivered_all:
                self.projected_seqnos[vbucket_id] = max(
                    self.projected_seqnos.get(vbucket_id, 0),
                    stream.last_seqno,
                )
            else:
                # An indexer node was unreachable: drop the stream and
                # let _sync_streams reopen it from the last seqno that
                # was actually delivered, so the key version is retried
                # instead of silently lost.
                del self._streams[vbucket_id]
        return progressed

    def _sync_streams(self, engine) -> None:
        active = set(engine.owned_vbuckets(VBucketState.ACTIVE))
        for vbucket_id in list(self._streams):
            if vbucket_id not in active:
                del self._streams[vbucket_id]
                self.projected_seqnos.pop(vbucket_id, None)
        producer = self.node.producers[self.bucket]
        for vbucket_id in active:
            if vbucket_id not in self._streams:
                start = self.projected_seqnos.get(vbucket_id, 0)
                self._streams[vbucket_id] = producer.stream_request(
                    vbucket_id, start_seqno=start
                )

    def _project(self, vbucket_id: int, message) -> bool:
        """Project one mutation into key versions; True when every key
        version reached every responsible indexer."""
        doc = message.doc
        deleted = doc.meta.deleted
        delivered = True
        for meta in self.registry.indexes_on(self.bucket):
            if meta.state != "ready":
                continue
            definition = meta.definition
            entries = [] if deleted else definition.entries_for(doc.value, doc.key)
            if not self.router.route(KeyVersion(
                index_name=definition.name,
                bucket=self.bucket,
                doc_id=doc.key,
                entries=entries,
                vbucket_id=vbucket_id,
                seqno=doc.meta.seqno,
            )):
                delivered = False
        self.node.metrics.inc("gsi.projected")
        return delivered
