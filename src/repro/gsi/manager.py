"""The index service and the cluster-wide index manager.

Section 4.3.4: "The Index Manager resides within the indexing service
and is responsible for receiving requests for indexing operations (e.g.,
creation, deletion, maintenance, scan, lookup)."

Three pieces live here:

* :class:`IndexRegistry` -- the cluster-wide index metadata (name ->
  definition, hosting nodes, state), held by the cluster manager and
  consulted by projectors/routers on every mutation and by the N1QL
  planner at plan time.
* :class:`IndexService` -- the per-node service wrapper exposing the
  indexer's RPC surface (``gsi_apply``, ``gsi_scan``, ...).
* :class:`GsiCoordinator` -- cluster-level DDL (create/build/drop with
  placement), scan fan-out for partitioned indexes, and the
  ``request_plus`` consistency barrier.
"""

from __future__ import annotations

import functools
import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..common.errors import (
    IndexExistsError,
    InvalidArgumentError,
    IndexNotFoundError,
    IndexNotReadyError,
    NodeDownError,
    ServiceUnavailableError,
    TimeoutError_,
)
from ..common.services import Service
from ..kv.types import VBucketState
from ..n1ql.collation import MISSING, compare
from .indexdef import IndexDefinition
from .indexer import Indexer
from .projector import KeyVersion, Router
from .storage import HIGH_BOUND, composite_compare

if TYPE_CHECKING:
    from ..server import Cluster

#: Rows per ``gsi_scan_page`` pull.  Matches the query pipeline's batch
#: size, so a LIMIT-k query drains at most k + one page per partition.
SCAN_PAGE_SIZE = 64

#: Ablation flag: False reverts to the serial fan-out that materializes
#: every partition's full partial before merging (the pre-scatter-gather
#: behaviour, minus the removed concat+sort).
PARALLEL_SCAN_ENABLED = True

#: Total order over (key_components, doc_id) rows for the k-way merge;
#: identical to the ordering the index nodes return pages in.
_ROW_ORDER = functools.cmp_to_key(
    lambda a, b: composite_compare([a[0], a[1]], [b[0], b[1]])
)

#: Deterministic output order for merged aggregate groups: collation
#: order over the group key values.
_GROUP_ORDER = functools.cmp_to_key(
    lambda a, b: composite_compare([a[0], ""], [b[0], ""])
)


@dataclass
class IndexMeta:
    definition: IndexDefinition
    #: Hosting index nodes; one entry per partition for partitioned
    #: indexes (entries may repeat when partitions share a node).
    nodes: list[str]
    #: "ready" | "deferred" | "building"
    state: str = "ready"

    def describe(self) -> dict:
        info = self.definition.describe()
        info["nodes"] = list(dict.fromkeys(self.nodes))
        info["state"] = self.state
        return info


class IndexRegistry:
    """Cluster-wide index metadata."""

    def __init__(self):
        self._by_name: dict[str, IndexMeta] = {}
        #: Bumped on every metadata change that can alter planning (index
        #: added, removed, or built to readiness).  The query service
        #: folds this into its catalog epoch so cached/prepared plans
        #: built against an older index set are re-planned, not executed.
        self.epoch = 0

    def add(self, meta: IndexMeta) -> None:
        if meta.definition.name in self._by_name:
            raise IndexExistsError(meta.definition.name)
        self._by_name[meta.definition.name] = meta
        self.epoch += 1

    def remove(self, name: str) -> IndexMeta:
        if name not in self._by_name:
            raise IndexNotFoundError(name)
        meta = self._by_name.pop(name)
        self.epoch += 1
        return meta

    def get(self, name: str) -> IndexMeta | None:
        return self._by_name.get(name)

    def require(self, name: str) -> IndexMeta:
        meta = self._by_name.get(name)
        if meta is None:
            raise IndexNotFoundError(name)
        return meta

    def indexes_on(self, bucket: str) -> list[IndexMeta]:
        return [
            meta for meta in self._by_name.values()
            if meta.definition.bucket == bucket
        ]

    def names(self) -> list[str]:
        return sorted(self._by_name)


class IndexService:
    """Per-node index service (attached when the node runs INDEX)."""

    def __init__(self, node, network, scheduler):
        self.node = node
        self.network = network
        self.scheduler = scheduler
        self.indexer = Indexer(node)
        # Expose the RPC surface on the node object itself so the network
        # fabric can dispatch to it.
        node.gsi_apply = self.indexer.apply
        node.gsi_scan = self.indexer.scan
        node.gsi_scan_page = self.indexer.scan_page
        node.gsi_scan_aggregate = self.indexer.scan_aggregate
        node.gsi_watermarks = self.indexer.watermarks
        node.gsi_count = self.indexer.count
        node.gsi_create_local = self.indexer.create
        node.gsi_drop_local = self.indexer.drop


class GsiCoordinator:
    """Cluster-level GSI DDL and scans (what the query service calls)."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster

    @property
    def registry(self) -> IndexRegistry:
        return self.cluster.manager.index_registry

    def _index_nodes(self) -> list[str]:
        names = self.cluster.manager.nodes_with_service(Service.INDEX)
        live = [n for n in names if not self.cluster.network.is_down(n)]
        if not live:
            raise ServiceUnavailableError("index")
        return live

    # -- DDL ----------------------------------------------------------------------

    def create_index(self, definition: IndexDefinition,
                     nodes: list[str] | None = None) -> IndexMeta:
        """Create (and unless deferred, build) an index.

        Placement: explicit ``nodes``, else the least-loaded index node;
        partitioned indexes stripe partitions across index nodes."""
        if self.registry.get(definition.name) is not None:
            raise IndexExistsError(definition.name)
        available = self._index_nodes()
        if nodes is None:
            by_load = sorted(
                available,
                key=lambda n: (
                    len(self.cluster.node(n).indexer.indexer.instances), n
                ),
            )
            if definition.num_partitions == 1:
                nodes = [by_load[0]]
            else:
                nodes = [
                    by_load[i % len(by_load)]
                    for i in range(definition.num_partitions)
                ]
        meta = IndexMeta(
            definition=definition,
            nodes=nodes,
            state="deferred" if definition.deferred else "building",
        )
        for node_name in dict.fromkeys(nodes):
            self.cluster.network.call(
                "gsi-coordinator", node_name, "gsi_create_local", definition
            )
        self.registry.add(meta)
        if not definition.deferred:
            self._build(meta)
        return meta

    def build_index(self, name: str) -> None:
        """BUILD INDEX for a deferred index (defer_build, section 3.3.3)."""
        meta = self.registry.require(name)
        if meta.state == "ready":
            return
        self._build(meta)

    def _build(self, meta: IndexMeta) -> None:
        """Initial materialization: snapshot-scan every active vBucket on
        every data node, route entries to the hosting indexer(s), then
        install watermarks at the snapshot seqnos."""
        definition = meta.definition
        manager = self.cluster.manager
        meta.state = "ready"  # the router only routes for ready indexes
        self.registry.epoch += 1  # a new access path exists; invalidate plans
        marks: dict[int, int] = {}
        for node_name in manager.data_nodes():
            node = manager.nodes[node_name]
            engine = node.engines.get(definition.bucket)
            if engine is None:
                continue
            router = Router(node, manager.index_registry, self.cluster.network)
            for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
                for doc in engine.docs_in_vbucket(vbucket_id):
                    entries = definition.entries_for(doc.value, doc.key)
                    if entries:
                        if not router.route(KeyVersion(
                            index_name=definition.name,
                            bucket=definition.bucket,
                            doc_id=doc.key,
                            entries=entries,
                            vbucket_id=vbucket_id,
                            seqno=doc.meta.seqno,
                        )):
                            # Installing watermarks over a row the
                            # indexer never received would declare a
                            # permanently incomplete index "ready".
                            raise ServiceUnavailableError("index")
                marks[vbucket_id] = engine.vbuckets[vbucket_id].high_seqno
        for node_name in dict.fromkeys(meta.nodes):
            instance = self.cluster.node(node_name).indexer.indexer.instance(
                definition.name
            )
            instance.set_watermarks(marks)
        self.cluster.run_until_idle()

    def drop_index(self, name: str) -> None:
        meta = self.registry.remove(name)
        for node_name in dict.fromkeys(meta.nodes):
            try:
                self.cluster.network.call(
                    "gsi-coordinator", node_name, "gsi_drop_local", name
                )
            # Drop is best-effort: registry removal already hides the index.
            # repro-flow: disable-next=swallowed-exception
            except NodeDownError:
                continue

    def list_indexes(self, bucket: str | None = None) -> list[dict]:
        metas = (
            self.registry.indexes_on(bucket)
            if bucket is not None
            else [self.registry.require(n) for n in self.registry.names()]
        )
        return [meta.describe() for meta in metas]

    # -- scans ---------------------------------------------------------------------------

    def scan(
        self,
        name: str,
        low: list | None = None,
        high: list | None = None,
        *,
        inclusive_low: bool = True,
        inclusive_high: bool = True,
        descending: bool = False,
        limit: int | None = None,
        scan_consistency: str = "not_bounded",
        mutation_tokens: list | None = None,
    ) -> list[tuple[list, str]]:
        """Cluster-level index scan: consistency barrier (see
        :meth:`_consistency_barrier`), parallel partition fan-out, and a
        streaming ordered merge that short-circuits at ``limit``."""
        meta = self.registry.require(name)
        if meta.state != "ready":
            raise IndexNotReadyError(name)
        high = self._pad_high(meta, high, inclusive_high)
        self._consistency_barrier(meta, scan_consistency, mutation_tokens)
        if limit is not None and limit <= 0:
            return []

        # Every partition holds rows no other partition has: a scan that
        # skipped a down node would return a silently incomplete result
        # set, which is worse than failing.  Let NodeDownError propagate.
        node_names = list(dict.fromkeys(meta.nodes))
        if len(node_names) == 1:
            rows = self.cluster.network.call(
                "gsi-coordinator", node_names[0], "gsi_scan", name,
                low, high, inclusive_low, inclusive_high, descending,
                limit,
            )
            return rows if limit is None else rows[:limit]
        if not PARALLEL_SCAN_ENABLED:
            # Ablation baseline: serial fan-out, each partition charged
            # its own round trip and materialized in full before the
            # k-way merge.
            partials = [
                # Deliberate: this branch exists to measure serial
                # fan-out against the parallel default (ablation knob).
                # repro-hotpath: disable-next=n-plus-one-rpc
                self.cluster.network.call(
                    "gsi-coordinator", node_name, "gsi_scan", name,
                    low, high, inclusive_low, inclusive_high, descending,
                    limit,
                )
                for node_name in node_names
            ]
            merged = heapq.merge(*partials, key=_ROW_ORDER,
                                 reverse=descending)
            return list(itertools.islice(merged, limit))
        # Parallel scatter-gather: one wave of first-page RPCs to every
        # partition (charged a single round trip -- the calls overlap),
        # then a streaming k-way merge over lazily pulled pages.  With a
        # LIMIT the merge stops at the frontier, so each partition
        # yields at most limit + one page of rows.
        page = SCAN_PAGE_SIZE if limit is None else min(SCAN_PAGE_SIZE, limit)
        first_pages = self.cluster.network.call_fanout(
            "gsi-coordinator", node_names, "gsi_scan_page", name,
            low, high, inclusive_low, inclusive_high, descending,
            page, None,
        )
        streams = [
            self._page_stream(node_name, name, low, high, inclusive_low,
                              inclusive_high, descending, page, rows,
                              exhausted)
            for node_name, (rows, exhausted) in zip(node_names, first_pages)
        ]
        merged = heapq.merge(*streams, key=_ROW_ORDER, reverse=descending)
        return list(itertools.islice(merged, limit))

    def _page_stream(self, node_name: str, name: str, low, high,
                     inclusive_low: bool, inclusive_high: bool,
                     descending: bool, page: int, rows, exhausted: bool):
        """One partition's rows, pulled page by page: the next page is
        requested only when the merge frontier actually drains this
        partition past its buffered rows."""
        while True:
            yield from rows
            if exhausted or not rows:
                return
            # One RPC per *page*, pulled only when the merge frontier
            # drains past the buffer -- paging is the point here.
            # repro-hotpath: disable-next=n-plus-one-rpc
            rows, exhausted = self.cluster.network.call(
                "gsi-coordinator", node_name, "gsi_scan_page", name,
                low, high, inclusive_low, inclusive_high, descending,
                page, rows[-1],
            )

    def scan_aggregate(
        self,
        name: str,
        low: list | None = None,
        high: list | None = None,
        *,
        inclusive_low: bool = True,
        inclusive_high: bool = True,
        group_positions: list[int] | tuple = (),
        agg_specs: list[tuple[str, int | None]] | tuple = (),
        scan_consistency: str = "not_bounded",
        mutation_tokens: list | None = None,
    ) -> list[tuple[list, list[list]]]:
        """Partial-aggregate pushdown (section 5.1): every partition
        pre-aggregates its own rows via ``gsi_scan_aggregate`` -- one
        parallel wave, like :meth:`scan` -- and only the per-group
        partial states cross the fabric; this coordinator merges them
        by group token.  Returns ``[(group_values, partials), ...]`` in
        collation order of the group values."""
        meta = self.registry.require(name)
        if meta.state != "ready":
            raise IndexNotReadyError(name)
        high = self._pad_high(meta, high, inclusive_high)
        self._consistency_barrier(meta, scan_consistency, mutation_tokens)
        node_names = list(dict.fromkeys(meta.nodes))
        # A down partition would silently drop its groups' rows from the
        # totals; let NodeDownError propagate, exactly like scan().
        node_results = self.cluster.network.call_fanout(
            "gsi-coordinator", node_names, "gsi_scan_aggregate", name,
            low, high, inclusive_low, inclusive_high,
            list(group_positions), list(agg_specs),
        )
        merged: dict[str, tuple[list, list[list]]] = {}
        for node_groups in node_results:
            for token, values, partials in node_groups:
                entry = merged.get(token)
                if entry is None:
                    merged[token] = (values, [list(p) for p in partials])
                    continue
                for (agg_name, _position), mine, theirs in zip(
                    agg_specs, entry[1], partials,
                ):
                    mine[0] += theirs[0]
                    mine[1] += theirs[1]
                    if theirs[2] is MISSING:
                        continue
                    if mine[2] is MISSING:
                        mine[2] = theirs[2]
                    elif agg_name == "MIN" \
                            and compare(theirs[2], mine[2]) < 0:
                        mine[2] = theirs[2]
                    elif agg_name == "MAX" \
                            and compare(theirs[2], mine[2]) > 0:
                        mine[2] = theirs[2]
        out = list(merged.values())
        out.sort(key=_GROUP_ORDER)
        return out

    def _pad_high(self, meta: IndexMeta, high: list | None,
                  inclusive_high: bool) -> list | None:
        arity = len(meta.definition.key_sources)
        if high is not None and inclusive_high and len(high) < arity:
            # Prefix upper bound: pad with a past-everything sentinel so
            # composite entries sharing the prefix are included.
            high = list(high) + [HIGH_BOUND] * (arity - len(high))
        return high

    def _consistency_barrier(self, meta: IndexMeta, scan_consistency: str,
                             mutation_tokens: list | None) -> None:
        """Consistency levels (section 3.2.3 plus the 4.5-era at_plus):
        ``not_bounded`` scans immediately; ``request_plus`` waits for
        every mutation that existed at request time; ``at_plus`` waits
        only for the caller's own ``mutation_tokens``."""
        if scan_consistency == "request_plus":
            self._barrier(meta, self._current_seqnos(meta.definition.bucket))
        elif scan_consistency == "at_plus":
            marks: dict[int, int] = {}
            for token in mutation_tokens or []:
                current = marks.get(token.vbucket_id, 0)
                marks[token.vbucket_id] = max(current, token.seqno)
            self._barrier(meta, marks)
        elif scan_consistency != "not_bounded":
            raise InvalidArgumentError(
                f"unknown scan consistency {scan_consistency!r}")

    def _barrier(self, meta: IndexMeta, marks: dict[int, int]) -> None:
        """Wait until the index has processed the given seqno marks."""
        if not marks:
            return

        def satisfied() -> bool:
            for vb, seqno in marks.items():
                best = 0
                for node_name in dict.fromkeys(meta.nodes):
                    try:
                        # Consistency barrier polls one watermark RPC
                        # per index replica node -- bounded by replicas.
                        # repro-hotpath: disable-next=n-plus-one-rpc
                        watermarks = self.cluster.network.call(
                            "gsi-coordinator", node_name,
                            "gsi_watermarks", meta.definition.name,
                        )
                    # Barrier polls other replicas; a down node just cannot advance it.
                    # repro-flow: disable-next=swallowed-exception
                    except NodeDownError:
                        continue
                    best = max(best, watermarks.get(vb, 0))
                if best < seqno:
                    return False
            return True

        if not self.cluster.scheduler.run_until(satisfied):
            raise TimeoutError_(
                f"request_plus barrier for index {meta.definition.name!r} "
                f"did not converge"
            )

    def _current_seqnos(self, bucket: str) -> dict[int, int]:
        manager = self.cluster.manager
        marks: dict[int, int] = {}
        for node_name in manager.data_nodes():
            node = manager.nodes[node_name]
            if self.cluster.network.is_down(node_name):
                continue
            engine = node.engines.get(bucket)
            if engine is None:
                continue
            for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
                marks[vbucket_id] = engine.vbuckets[vbucket_id].high_seqno
        return marks
