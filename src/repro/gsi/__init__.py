"""Global secondary indexes: definitions (partial/array/primary/
memory-optimized), projector and router on the data service, indexers on
the index service, and the cluster-level coordinator with request_plus
consistency (sections 3.3, 4.3.4, 6.1)."""

from .indexdef import (
    IndexDefinition,
    array_index,
    attribute_index,
    meta_id_extractor,
    path_extractor,
    primary_index,
)
from .indexer import Indexer, IndexInstance
from .manager import GsiCoordinator, IndexMeta, IndexRegistry, IndexService
from .projector import KeyVersion, Projector, Router
from .storage import BTreeIndexStorage, SkipListIndexStorage, make_storage

__all__ = [
    "BTreeIndexStorage",
    "GsiCoordinator",
    "IndexDefinition",
    "IndexInstance",
    "IndexMeta",
    "IndexRegistry",
    "IndexService",
    "Indexer",
    "KeyVersion",
    "Projector",
    "Router",
    "SkipListIndexStorage",
    "array_index",
    "attribute_index",
    "make_storage",
    "meta_id_extractor",
    "path_extractor",
    "primary_index",
]
