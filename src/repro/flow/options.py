"""Option plumbing: tracked query/durability options must survive the
trip from the client API to the engine sink under their canonical names.

The tracked set is the options the paper's consistency story hangs on:
``replicate_to`` / ``persist_to`` (durability requirements) and
``scan_consistency`` / ``consistent_with`` / ``stale`` (index staleness
control).  Three ways to lose one:

``option-dropped``
    The caller takes a tracked option and calls a function that would
    accept it, but doesn't pass it on -- the option silently reverts to
    the callee's default.  Forwarding through ``*args`` / ``**kwargs``
    splats counts as passing.

``option-renamed``
    A tracked option is handed to a *public* callee under a different
    parameter name.  Renames at public seams are how ``at_plus`` turns
    into someone's ``consistency=`` that nothing downstream recognizes;
    private normalizers (``_normalize_tokens(tokens=...)``) are exempt.

``option-domain``
    Code that dispatches on a tracked option's string value must handle
    the values that change behavior: a function distinguishing
    ``request_plus`` but never mentioning ``at_plus`` silently degrades
    the stronger mode, and a literal outside the option's domain is a
    typo that would never match.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, has_star_kwargs, map_call_args
from .findings import FlowFinding
from .project import FuncInfo

TRACKED = frozenset({
    "replicate_to", "persist_to",
    "scan_consistency", "consistent_with", "stale",
})

#: Full value domains for string-valued tracked options.
DOMAINS = {
    "scan_consistency": frozenset({"not_bounded", "request_plus", "at_plus"}),
    "stale": frozenset({"ok", "false", "update_after"}),
}

#: Values that, once a function starts distinguishing among them, must
#: all be handled: degrading ``at_plus`` to the ``request_plus`` path
#: (or ``stale="false"`` to ``"ok"``) changes observable consistency.
MUST_HANDLE = {
    "scan_consistency": frozenset({"request_plus", "at_plus"}),
    "stale": frozenset({"false"}),
}


def analyze_options(graph: CallGraph) -> list[FlowFinding]:
    findings: list[FlowFinding] = []
    project = graph.project
    for func, call, callee, _kind in graph.call_sites:
        module = project.modules.get(func.module)
        path = str(module.path) if module else func.module
        findings.extend(_check_site(func, call, callee, path))
    for func in project.functions.values():
        module = project.modules.get(func.module)
        path = str(module.path) if module else func.module
        findings.extend(_check_domains(func, path))
    return findings


def _check_site(func: FuncInfo, call: ast.Call, callee: FuncInfo,
                path: str) -> list[FlowFinding]:
    findings = []
    caller_tracked = [p for p in (*func.params, *func.kwonly) if p in TRACKED]
    bound = map_call_args(call, callee)
    splat = has_star_kwargs(call) or (
        callee.has_vararg and any(isinstance(a, ast.Starred)
                                  for a in call.args))
    for option in caller_tracked:
        if splat or option in bound:
            continue
        if not callee.accepts(option):
            continue
        findings.append(FlowFinding(
            check="option-dropped", path=path,
            line=call.lineno, col=call.col_offset + 1,
            message=(
                f"call to {_display(callee.fqn)} drops {option!r}: the "
                f"caller takes it and the callee accepts it, but it is not "
                f"passed on (silently falls back to the callee default)"
            ),
        ))
    if callee.name.startswith("_"):
        return findings  # private seam: normalizers may rename freely
    for param, value in bound.items():
        option = _tracked_source(value, func)
        if option is None or param == option:
            continue
        if callee.accepts(option):
            # The canonical name exists on the callee and was bypassed.
            findings.append(FlowFinding(
                check="option-renamed", path=path,
                line=call.lineno, col=call.col_offset + 1,
                message=(
                    f"tracked option {option!r} passed to "
                    f"{_display(callee.fqn)} as {param!r} although the "
                    f"callee accepts {option!r}; use the canonical name"
                ),
            ))
        elif param not in TRACKED:
            findings.append(FlowFinding(
                check="option-renamed", path=path,
                line=call.lineno, col=call.col_offset + 1,
                message=(
                    f"tracked option {option!r} renamed to {param!r} at the "
                    f"public seam {_display(callee.fqn)}; renames lose the "
                    f"option's identity across layers"
                ),
            ))
    return findings


def _tracked_source(value: ast.expr, func: FuncInfo) -> str | None:
    """Is this argument expression the caller's tracked option?"""
    if isinstance(value, ast.Name) and value.id in TRACKED \
            and func.accepts(value.id):
        return value.id
    if isinstance(value, ast.Attribute) and value.attr in TRACKED:
        return value.attr
    return None


def _check_domains(func: FuncInfo, path: str) -> list[FlowFinding]:
    findings = []
    mentioned: dict[str, set[str]] = {}
    first_line: dict[str, int] = {}
    node = func.node
    for child in ast.walk(node):
        if not isinstance(child, ast.Compare):
            continue
        option = _compared_option(child.left)
        operands = list(child.comparators)
        if option is None and len(operands) == 1:
            option = _compared_option(operands[0])
            operands = [child.left]
        if option is None:
            continue
        if not all(isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
                   for op in child.ops):
            continue
        for operand in operands:
            for literal in _string_literals(operand):
                mentioned.setdefault(option, set()).add(literal)
                first_line.setdefault(option, child.lineno)
    for option, literals in mentioned.items():
        domain = DOMAINS[option]
        unknown = sorted(literals - domain)
        line = first_line[option]
        if unknown:
            findings.append(FlowFinding(
                check="option-domain", path=path, line=line, col=1,
                message=(
                    f"{_display(func.fqn)} compares {option!r} against "
                    f"{', '.join(repr(u) for u in unknown)}, outside its "
                    f"domain {sorted(domain)}"
                ),
            ))
        must = MUST_HANDLE[option]
        handled = literals & domain
        if handled & must and not must <= handled \
                and not (domain - must) <= handled:
            missing = sorted(must - handled)
            findings.append(FlowFinding(
                check="option-domain", path=path, line=line, col=1,
                message=(
                    f"{_display(func.fqn)} distinguishes {option!r} values "
                    f"{sorted(handled)} but never handles "
                    f"{', '.join(repr(m) for m in missing)}; the stronger "
                    f"consistency mode silently degrades"
                ),
            ))
    return findings


def _compared_option(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name) and expr.id in DOMAINS:
        return expr.id
    if isinstance(expr, ast.Attribute) and expr.attr in DOMAINS:
        return expr.attr
    return None


def _string_literals(expr: ast.expr) -> list[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [expr.value]
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for element in expr.elts:
            out.extend(_string_literals(element))
        return out
    return []


def _display(fqn: str) -> str:
    parts = fqn.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else fqn
