"""Hot-set derivation: which functions are performance-critical?

The hot set is the transitive call-graph closure of the tree's declared
**hot roots**:

* functions carrying the ``@hot_path`` decorator
  (:mod:`repro.common.costmodel`) -- KV engine ops, the smart client's
  RPC senders, the N1QL operator bodies, DCP stream steps;
* every pump or timer callable registered on the
  :class:`~repro.common.scheduler.Scheduler` (read off the call graph's
  :class:`~repro.flow.callgraph.PumpRegistration` records, so a pump
  does not need a decorator to be guarded).

Closure walks ``call``/``method``/``rpc``/``partial``/``pump``/``timer``
edges -- everything that can actually execute on behalf of a hot caller.
``ref`` edges (a bound method stored without being called) are excluded:
storing a reference is not running it.

This module is deliberately part of ``repro.flow`` rather than
``repro.hotpath``: the hot set is a property of the call graph, and
other analyses (or an ad-hoc report) can reuse it without importing the
cost rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph
from .project import FuncInfo, Project

#: Edge kinds that transfer execution to the callee.  ``ref`` is
#: reachability-only and would drag cold helper code into the hot set.
EXECUTING_KINDS = frozenset({"call", "method", "rpc", "partial", "pump",
                             "timer"})


def _decorator_name(dec: ast.expr) -> str | None:
    node = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def declared_cost(func: FuncInfo) -> str | None:
    """The ``@cost("...")`` bound declared on ``func``, or None.

    Read statically off the decorator AST so fixture trees (and code
    that stubs :mod:`repro.common.costmodel`) analyze without import.
    """
    for dec in func.decorators:
        if (_decorator_name(dec) == "cost" and isinstance(dec, ast.Call)
                and dec.args and isinstance(dec.args[0], ast.Constant)
                and isinstance(dec.args[0].value, str)):
            return dec.args[0].value
    return None


def is_hot_root(func: FuncInfo) -> bool:
    """True when ``func`` carries the ``@hot_path`` decorator."""
    return any(_decorator_name(dec) == "hot_path"
               for dec in func.decorators)


@dataclass
class HotSet:
    """The derived hot set plus enough provenance to explain it."""

    #: root fqn -> why it is a root ("@hot_path" or "pump:<name>").
    roots: dict[str, str] = field(default_factory=dict)
    #: every hot function, roots included.
    members: set[str] = field(default_factory=set)
    #: member fqn -> the caller that pulled it in (None for roots);
    #: following this chain reaches a root, which is the explanation a
    #: finding prints ("hot via KVEngine.multi_get <- SmartClient._call").
    pulled_in_by: dict[str, str | None] = field(default_factory=dict)

    def __contains__(self, fqn: str) -> bool:
        return fqn in self.members

    def why(self, fqn: str, limit: int = 4) -> str:
        """Short provenance chain from ``fqn`` back to its root."""
        chain = [fqn]
        seen = {fqn}
        while True:
            parent = self.pulled_in_by.get(chain[-1])
            if parent is None or parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
        root = chain[-1]
        reason = self.roots.get(root, "@hot_path")
        shown = chain[:limit]
        tail = " <- ".join(name.rsplit(".", 1)[-1] for name in shown[1:])
        origin = f"{reason} root {_short(root)}"
        if len(chain) == 1:
            return origin
        return f"{origin} via {tail}" if tail else origin


def _short(fqn: str) -> str:
    parts = fqn.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else fqn


def derive_hot_set(project: Project, graph: CallGraph) -> HotSet:
    """Collect the hot roots and close over executing call edges."""
    hot = HotSet()
    for fqn, func in project.functions.items():
        if is_hot_root(func):
            hot.roots[fqn] = "@hot_path"
    for registration in graph.pumps:
        if registration.target in project.functions:
            hot.roots.setdefault(
                registration.target,
                f"{registration.kind}:{registration.name or '<dynamic>'}",
            )

    frontier = sorted(hot.roots)
    for fqn in frontier:
        hot.members.add(fqn)
        hot.pulled_in_by[fqn] = None
    while frontier:
        caller = frontier.pop()
        for edge in graph.out_edges(caller):
            if edge.kind not in EXECUTING_KINDS:
                continue
            callee = edge.callee
            if callee in hot.members or callee not in project.functions:
                continue
            hot.members.add(callee)
            hot.pulled_in_by[callee] = caller
            frontier.append(callee)
    return hot
