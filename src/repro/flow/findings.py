"""The finding type every flow analysis reports.

Mirrors :class:`repro.lint.engine.Violation` (``path:line:col: check:
message``) so CI and editors treat repro-lint and repro-flow output
identically; the two stay separate types because lint findings belong to
a rule registry and flow findings to a whole-program analysis pass.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowFinding:
    """One finding: where, which check, and what to do about it."""

    check: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.check}: {self.message}"
