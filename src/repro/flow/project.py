"""Whole-program index: modules, imports, definitions, re-exports.

The flow analyses need one coherent picture of the tree, parsed once:
every module's AST, its import records (eager vs. deferred vs.
``TYPE_CHECKING``-only), every class and function definition with its
parameter list and annotations, and the re-export surface of package
``__init__`` files (both eager ``from .x import Y`` and the lazy
``_LAZY`` + ``__getattr__`` pattern used by :mod:`repro.n1ql`).

:class:`Project` also owns dotted-name resolution: given ``repro.client.
smart_client.SmartClient.get`` (or a name that travels through one or
more re-exports) it finds the defining :class:`FuncInfo` /
:class:`ClassInfo` / :class:`ModuleInfo`.  The call-graph builder sits
on top of this.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..analysis.harness import module_name_for, parse_suppressions

#: Import classification: only eager imports can create runtime import
#: cycles; TYPE_CHECKING imports are erased entirely and exempt from
#: layer conformance (they exist to make annotations resolvable).
EAGER, DEFERRED, TYPE_CHECKING_ONLY = "eager", "deferred", "type-checking"


@dataclass(frozen=True)
class ImportRecord:
    importer: str           #: dotted module doing the import
    target: str             #: dotted module being imported
    symbol: str | None      #: name imported from target (None = whole module)
    alias: str              #: local binding name
    line: int
    col: int
    kind: str               #: EAGER | DEFERRED | TYPE_CHECKING_ONLY


@dataclass
class FuncInfo:
    """One function, method, or synthesized lambda body."""

    fqn: str
    module: str
    cls: str | None                 #: owning class FQN, if a method
    name: str
    node: ast.AST                   #: FunctionDef / AsyncFunctionDef / Lambda
    line: int
    col: int
    params: list[str]               #: positional params (self/cls stripped)
    kwonly: list[str]
    has_vararg: bool
    has_kwarg: bool
    annotations: dict[str, ast.expr] = field(default_factory=dict)
    returns: ast.expr | None = None
    decorators: list[ast.expr] = field(default_factory=list)
    raises_decl: tuple[str, ...] | None = None
    is_property: bool = False

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")

    def accepts(self, param: str) -> bool:
        return param in self.params or param in self.kwonly


@dataclass
class ClassInfo:
    fqn: str
    module: str
    name: str
    node: ast.ClassDef
    line: int
    bases: list[str] = field(default_factory=list)     #: raw dotted names
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    #: class-body ``x: Ann`` and ``self.x = ...`` inferred types; values
    #: are class FQNs, filled in by the call-graph builder.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: raw class-body annotations (``x: Ann``), resolved lazily by the
    #: call-graph builder against the defining module's bindings.
    annotations: dict[str, ast.expr] = field(default_factory=dict)
    #: dict-typed attributes: attr -> value-class FQN (``x[k]``/``x.get``).
    attr_value_types: dict[str, str] = field(default_factory=dict)
    #: class-level tuples of exception names: ``_RETRYABLE = (A, B)``.
    exc_aliases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    decorators: list[ast.expr] = field(default_factory=list)


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    source_lines: list[str]
    is_package: bool
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    imports: list[ImportRecord] = field(default_factory=list)
    #: local name -> dotted target (module, or module-qualified symbol).
    bindings: dict[str, str] = field(default_factory=dict)
    #: module-level tuples of exception names.
    exc_aliases: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _type_checking_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    ranges = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc and node.body:
            last = max(
                getattr(n, "end_lineno", None) or 0
                for n in ast.walk(node)
                if hasattr(n, "lineno")
            )
            ranges.append((node.lineno, max(last, node.lineno)))
    return ranges


def _raises_declaration(node: ast.AST,
                        decorators: list[ast.expr]) -> tuple[str, ...] | None:
    """``@declared_raises("A", "B")`` on the def, or a first-level
    ``__raises__ = ("A", "B")`` statement in the body."""
    for dec in decorators:
        if isinstance(dec, ast.Call):
            func = dec.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "declared_raises":
                return tuple(
                    arg.value for arg in dec.args
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                )
    for stmt in getattr(node, "body", []):
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__raises__"):
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List)):
                return tuple(
                    elt.value for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return (value.value,)
    return None


def _func_info(node: ast.FunctionDef | ast.AsyncFunctionDef, fqn: str,
               module: str, cls: str | None) -> FuncInfo:
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args]
    if cls is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    annotations = {
        a.arg: a.annotation
        for a in args.posonlyargs + args.args + args.kwonlyargs
        if a.annotation is not None
    }
    decorator_names = {
        d.id if isinstance(d, ast.Name) else getattr(d, "attr", "")
        for d in node.decorator_list
    }
    return FuncInfo(
        fqn=fqn,
        module=module,
        cls=cls,
        name=node.name,
        node=node,
        line=node.lineno,
        col=node.col_offset + 1,
        params=params,
        kwonly=[a.arg for a in args.kwonlyargs],
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        annotations=annotations,
        returns=node.returns,
        decorators=list(node.decorator_list),
        raises_decl=_raises_declaration(node, node.decorator_list),
        is_property=bool(decorator_names & {"property", "cached_property"}),
    )


def _exc_tuple(value: ast.expr) -> tuple[str, ...] | None:
    """A tuple/list of bare exception names, e.g. ``(A, B, C)``."""
    if not isinstance(value, (ast.Tuple, ast.List)) or not value.elts:
        return None
    names = []
    for elt in value.elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
        else:
            return None
    return tuple(names)


class Project:
    """The parsed tree plus its definition and resolution indexes."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.parse_errors: list[tuple[str, int, str]] = []

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(cls, files: Iterable[Path]) -> "Project":
        project = cls()
        for path in files:
            project._add_file(path)
        return project

    def _add_file(self, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.parse_errors.append((str(path), exc.lineno or 1,
                                      exc.msg or "syntax error"))
            return
        source_lines = source.splitlines()
        name = module_name_for(path)
        info = ModuleInfo(
            name=name,
            path=str(path),
            tree=tree,
            source_lines=source_lines,
            is_package=path.stem == "__init__",
            suppressions=parse_suppressions(source_lines, "repro-flow"),
        )
        self.modules[name] = info
        self._index_imports(info, _type_checking_ranges(tree))
        self._index_definitions(info)
        self._index_lazy_exports(info)

    def _resolve_relative(self, info: ModuleInfo, level: int,
                          target: str | None) -> str | None:
        if level == 0:
            return target
        anchor = info.name.split(".")
        if not info.is_package:
            anchor = anchor[:-1]
        drop = level - 1
        if drop:
            if drop >= len(anchor):
                return None
            anchor = anchor[:-drop]
        if target:
            anchor = anchor + target.split(".")
        return ".".join(anchor) if anchor else None

    def _index_imports(self, info: ModuleInfo,
                       tc_ranges: list[tuple[int, int]]) -> None:
        top_level = set(info.tree.body)
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if any(first <= node.lineno <= last for first, last in tc_ranges):
                kind = TYPE_CHECKING_ONLY
            elif node in top_level:
                kind = EAGER
            else:
                kind = DEFERRED
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports.append(ImportRecord(
                        importer=info.name, target=alias.name, symbol=None,
                        alias=local, line=node.lineno,
                        col=node.col_offset + 1, kind=kind,
                    ))
                    info.bindings.setdefault(local, bound)
            else:
                target = self._resolve_relative(info, node.level, node.module)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports.append(ImportRecord(
                        importer=info.name, target=target, symbol=alias.name,
                        alias=local, line=node.lineno,
                        col=node.col_offset + 1, kind=kind,
                    ))
                    info.bindings.setdefault(local, f"{target}.{alias.name}")

    def _index_definitions(self, info: ModuleInfo) -> None:
        def visit_function(node, prefix: str, cls_fqn: str | None):
            fqn = f"{prefix}.{node.name}"
            func = _func_info(node, fqn, info.name, cls_fqn)
            self.functions[fqn] = func
            if cls_fqn is not None:
                self.classes[cls_fqn].methods[node.name] = func
            # Nested defs (timer callbacks, closures) are functions too.
            for stmt in ast.walk(node):
                if stmt is node:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_fqn = f"{fqn}.<locals>.{stmt.name}"
                    if nested_fqn not in self.functions:
                        self.functions[nested_fqn] = _func_info(
                            stmt, nested_fqn, info.name, None
                        )

        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(node, info.name, None)
            elif isinstance(node, ast.ClassDef):
                cls_fqn = f"{info.name}.{node.name}"
                klass = ClassInfo(
                    fqn=cls_fqn, module=info.name, name=node.name,
                    node=node, line=node.lineno,
                    bases=[b for b in map(_dotted, node.bases) if b],
                    decorators=list(node.decorator_list),
                )
                self.classes[cls_fqn] = klass
                info.bindings.setdefault(node.name, cls_fqn)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        visit_function(stmt, cls_fqn, cls_fqn)
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                            stmt.target, ast.Name):
                        klass.annotations[stmt.target.id] = stmt.annotation
                    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Name):
                        names = _exc_tuple(stmt.value)
                        if names:
                            klass.exc_aliases[stmt.targets[0].id] = names
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                names = _exc_tuple(node.value)
                if names:
                    info.exc_aliases[node.targets[0].id] = names

        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.bindings.setdefault(node.name, f"{info.name}.{node.name}")

    def _index_lazy_exports(self, info: ModuleInfo) -> None:
        """The ``_LAZY = {"Name": ("submodule", "attr")}`` +
        ``__getattr__`` re-export pattern of package ``__init__`` files."""
        if not info.is_package:
            return
        for node in info.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "_LAZY"
                    and isinstance(node.value, ast.Dict)):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(value, (ast.Tuple, ast.List))
                        and len(value.elts) == 2
                        and all(isinstance(e, ast.Constant) for e in value.elts)):
                    continue
                submodule, attr = (e.value for e in value.elts)
                info.bindings.setdefault(
                    key.value, f"{info.name}.{submodule}.{attr}"
                )

    # -- resolution ----------------------------------------------------------------

    def resolve(self, dotted: str, _seen: frozenset = frozenset()):
        """Resolve a dotted name to a FuncInfo / ClassInfo / ModuleInfo,
        following re-export chains; None when it leaves the project."""
        if dotted in _seen or not dotted:
            return None
        _seen = _seen | {dotted}
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        if dotted in self.modules:
            return self.modules[dotted]
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            bound = module.bindings.get(rest[0])
            if bound is None:
                return None
            target = ".".join([bound] + rest[1:])
            return self.resolve(target, _seen)
        # A method of a resolvable class: Class.method.
        if len(parts) >= 2:
            owner = self.resolve(".".join(parts[:-1]), _seen)
            if isinstance(owner, ClassInfo):
                return self.lookup_method(owner, parts[-1])
        return None

    def lookup_method(self, klass: ClassInfo, name: str,
                      _seen: frozenset = frozenset()) -> FuncInfo | None:
        if klass.fqn in _seen:
            return None
        method = klass.methods.get(name)
        if method is not None:
            return method
        for base in klass.bases:
            resolved = self.resolve_in_module(klass.module, base)
            if isinstance(resolved, ClassInfo):
                found = self.lookup_method(resolved, name,
                                           _seen | {klass.fqn})
                if found is not None:
                    return found
        return None

    def lookup_attr_type(self, klass: ClassInfo, name: str,
                         _seen: frozenset = frozenset()) -> str | None:
        if klass.fqn in _seen:
            return None
        found = klass.attr_types.get(name)
        if found:
            return found
        for base in klass.bases:
            resolved = self.resolve_in_module(klass.module, base)
            if isinstance(resolved, ClassInfo):
                inherited = self.lookup_attr_type(resolved, name,
                                                  _seen | {klass.fqn})
                if inherited:
                    return inherited
        return None

    def resolve_in_module(self, module_name: str, dotted: str):
        """Resolve a possibly-unqualified dotted name as seen from inside
        ``module_name`` (its bindings, then the global namespace)."""
        module = self.modules.get(module_name)
        if module is not None:
            head, _, rest = dotted.partition(".")
            bound = module.bindings.get(head)
            if bound is not None:
                return self.resolve(f"{bound}.{rest}" if rest else bound)
            local = f"{module_name}.{dotted}"
            resolved = self.resolve(local)
            if resolved is not None:
                return resolved
        return self.resolve(dotted)

    def annotation_type(self, ann: ast.expr | None,
                        module_name: str) -> tuple[str, str | None]:
        """("class", fqn) | ("dict", value_fqn) | ("list", elem_fqn) |
        ("", None)."""
        if ann is None:
            return "", None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                parsed = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return "", None
            return self.annotation_type(parsed, module_name)
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            kind, target = self.annotation_type(ann.left, module_name)
            if kind:
                return kind, target
            return self.annotation_type(ann.right, module_name)
        if isinstance(ann, (ast.Name, ast.Attribute)):
            dotted = _dotted(ann)
            if dotted is None:
                return "", None
            resolved = self.resolve_in_module(module_name, dotted)
            if isinstance(resolved, ClassInfo):
                return "class", resolved.fqn
            return "", None
        if isinstance(ann, ast.Subscript):
            head = _dotted(ann.value)
            if head is None:
                return "", None
            base = head.split(".")[-1].lower()
            slice_node = ann.slice
            if base == "optional":
                return self.annotation_type(slice_node, module_name)
            if base == "dict" and isinstance(slice_node, ast.Tuple) \
                    and len(slice_node.elts) == 2:
                value_kind, value = self.annotation_type(
                    slice_node.elts[1], module_name)
                return ("dict", value) if value_kind == "class" else ("", None)
            if base in ("list", "set", "tuple", "iterable", "iterator",
                        "sequence"):
                elts = (slice_node.elts[0]
                        if isinstance(slice_node, ast.Tuple) and slice_node.elts
                        else slice_node)
                elem_kind, elem = self.annotation_type(elts, module_name)
                return ("list", elem) if elem_kind == "class" else ("", None)
        return "", None


def _dotted(node: ast.expr) -> str | None:
    """Flatten a Name/Attribute chain to a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
