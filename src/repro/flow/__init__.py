"""repro-flow: whole-program call-graph analysis for the repro tree.

Where repro-lint judges one file at a time, repro-flow parses the whole
tree once, builds a module import graph and a name-resolved call graph
(methods, scheduler pumps, timers, ``functools.partial``, and fabric
dispatch-by-string are all explicit edge kinds), and runs three
interprocedural analyses on top:

* **exception flow** -- which ``common.errors`` exceptions can escape
  each service entry point, checked against ``@declared_raises``
  contracts (:mod:`repro.flow.excflow`);
* **option plumbing** -- do ``replicate_to`` / ``scan_consistency`` /
  ``stale`` and friends survive the trip from client API to engine sink
  under their canonical names (:mod:`repro.flow.options`);
* **layer conformance** -- imports must flow down the architecture DAG,
  with cycle detection over eager imports (:mod:`repro.flow.layers`).

A reachability-based dead-code report rides along
(:mod:`repro.flow.deadcode`).  The CLI shares repro-lint's exit-status
contract, suppression syntax (``# repro-flow: disable=<check>``), and
``--format github`` output via :mod:`repro.analysis`.
"""

from .callgraph import CallEdge, CallGraph, build_callgraph
from .deadcode import analyze_dead_code
from .excflow import analyze_exceptions
from .findings import FlowFinding
from .hotset import HotSet, declared_cost, derive_hot_set, is_hot_root
from .layers import analyze_layers
from .options import analyze_options
from .project import Project

__all__ = [
    "CallEdge",
    "CallGraph",
    "FlowFinding",
    "HotSet",
    "Project",
    "analyze_dead_code",
    "analyze_exceptions",
    "analyze_layers",
    "analyze_options",
    "build_callgraph",
    "declared_cost",
    "derive_hot_set",
    "is_hot_root",
]
