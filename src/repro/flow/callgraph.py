"""Name-resolved call graph over the project index.

Edges carry a *kind* because this codebase moves control in five
distinct ways and each needs different treatment downstream:

``call`` / ``method``
    Ordinary direct and attribute-resolved calls (including property
    loads, which execute the property body).  Exceptions propagate.
``rpc``
    Fabric dispatch-by-string: ``network.call(src, dst, "kv_get", ...)``
    reaches ``getattr(endpoint, "kv_get")`` on the destination node.
    The builder resolves the string against the registered endpoint
    classes and against dynamically attached handlers
    (``node.gsi_apply = self.indexer.apply``).  Call sites that forward
    a *parameter* as the method name (the smart client's ``_call``)
    are resolved one level up: every caller that passes a string
    literal for that parameter gets the rpc edge.  Exceptions propagate
    (the in-process fabric re-raises at the call site).
``pump`` / ``timer``
    ``scheduler.register(name, fn)`` and ``call_later`` / ``call_at``
    callbacks.  Registration is not invocation: no exception flow along
    the edge, but the target becomes a scheduler entry point.
``partial``
    ``functools.partial(fn, ...)`` -- creation over-approximates as
    reachability (dead-code analysis) but not as invocation
    (exception flow).
``ref``
    A bound-method reference stored or passed without being called.
    Reachability only.

Type inference is deliberately shallow -- parameter and return
annotations, ``self.x = ClassName(...)`` constructor assignments,
class-body annotations, and dict value types -- because that is exactly
the discipline the tree already follows; where the baseline run found
resolution gaps, the fix was to add the missing annotation, which helps
human readers as much as the analyzer.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from .project import ClassInfo, FuncInfo, ModuleInfo, Project


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    kind: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for debugging reports
        return f"{self.caller} -[{self.kind}]-> {self.callee} @{self.line}"


@dataclass(frozen=True)
class PumpRegistration:
    kind: str           #: "pump" | "timer"
    name: str | None    #: literal registration name, when constant
    target: str         #: FuncInfo fqn of the pump/callback body
    registrar: str      #: function doing the registration
    line: int


#: Inference results: ("instance"|"class"|"func"|"module"|"dictof"|"listof", fqn)
TRef = tuple[str, str]


@dataclass
class CallGraph:
    project: Project
    edges: list[CallEdge] = field(default_factory=list)
    by_caller: dict[str, list[CallEdge]] = field(default_factory=dict)
    #: ast.Call node id -> edge list (for per-site handler filtering).
    site_edges: dict[int, list[CallEdge]] = field(default_factory=dict)
    pumps: list[PumpRegistration] = field(default_factory=list)
    rpc_handlers: dict[str, list[str]] = field(default_factory=dict)
    rpc_names_used: set[str] = field(default_factory=set)
    #: functions forwarding a parameter as the RPC method name.
    forwarders: dict[str, str] = field(default_factory=dict)
    endpoint_classes: set[str] = field(default_factory=set)
    unresolved_calls: int = 0
    #: ast.Call id -> (callee fqn, kind) for option plumbing arg mapping.
    call_sites: list[tuple[FuncInfo, ast.Call, FuncInfo, str]] = \
        field(default_factory=list)

    def out_edges(self, fqn: str) -> list[CallEdge]:
        return self.by_caller.get(fqn, [])


def build_callgraph(project: Project) -> CallGraph:
    return _Builder(project).build()


def _last_component(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _Builder:
    def __init__(self, project: Project):
        self.project = project
        self.graph = CallGraph(project)
        self._edge_keys: set[tuple] = set()
        #: ast.Call ids belonging to detached (pump/timer) lambdas.
        self._detached: set[int] = set()
        #: (func fqn) -> initial env for nested/lambda processing.
        self._queue: list[tuple[FuncInfo, dict[str, TRef]]] = []
        self._processed: set[str] = set()
        self._dynamic_handlers: dict[str, set[str]] = {}

    # -- top level ----------------------------------------------------------------

    def build(self) -> CallGraph:
        self._infer_class_attrs()
        self._find_endpoints_and_dynamic_handlers()
        for func in list(self.project.functions.values()):
            if ".<locals>." in func.fqn or "<lambda" in func.fqn:
                continue
            self._process(func, self._initial_env(func))
        while self._queue:
            func, env = self._queue.pop()
            self._process(func, env)
        # Anything nested that no enclosing function queued (unreached
        # closures) still contributes edges, with an annotation-only env.
        for func in list(self.project.functions.values()):
            if func.fqn not in self._processed:
                self._process(func, self._initial_env(func))
        self._resolve_forwarded_rpc()
        return self.graph

    def _initial_env(self, func: FuncInfo) -> dict[str, TRef]:
        env: dict[str, TRef] = {}
        if func.cls is not None:
            env["self"] = ("instance", func.cls)
        for param, ann in func.annotations.items():
            tref = self._ann_tref(ann, func.module)
            if tref is not None:
                env[param] = tref
        return env

    def _ann_tref(self, ann: ast.expr | None, module: str) -> TRef | None:
        kind, target = self.project.annotation_type(ann, module)
        if kind == "class":
            return ("instance", target)
        if kind == "dict" and target:
            return ("dictof", target)
        if kind == "list" and target:
            return ("listof", target)
        return None

    # -- class attribute inference ------------------------------------------------

    def _infer_class_attrs(self) -> None:
        """Fill ClassInfo.attr_types from class-body annotations and
        ``self.x = ...`` assignments; iterate so constructor chains
        (``self.router = Router(...)``) settle."""
        for klass in self.project.classes.values():
            for attr, ann in klass.annotations.items():
                kind, target = self.project.annotation_type(ann, klass.module)
                if kind == "class" and target:
                    klass.attr_types[attr] = target
                elif kind == "dict" and target:
                    klass.attr_value_types[attr] = target
        for _round in range(3):
            changed = False
            for klass in self.project.classes.values():
                for method in klass.methods.values():
                    env = self._initial_env(method)
                    for node in ast.walk(method.node):
                        if isinstance(node, ast.Assign) \
                                and len(node.targets) == 1:
                            target, tref = node.targets[0], None
                        elif isinstance(node, ast.AnnAssign):
                            # ``self.x: dict[str, Node] = {}`` declares
                            # the type right at the assignment.
                            target = node.target
                            tref = self._ann_tref(node.annotation,
                                                  method.module)
                        else:
                            continue
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        if tref is None and isinstance(node, ast.Assign):
                            tref = self._infer(node.value, env, method,
                                               emit=False)
                        if tref is None:
                            continue
                        kind, fqn = tref
                        if kind == "instance" \
                                and klass.attr_types.get(target.attr) != fqn:
                            klass.attr_types[target.attr] = fqn
                            changed = True
                        elif kind == "dictof" and \
                                klass.attr_value_types.get(target.attr) != fqn:
                            klass.attr_value_types[target.attr] = fqn
                            changed = True
            if not changed:
                break

    def _find_endpoints_and_dynamic_handlers(self) -> None:
        """Locate fabric endpoint classes (``network.register(name,
        self)``) and dynamically attached RPC handlers
        (``node.gsi_apply = self.indexer.apply``)."""
        for func in self.project.functions.values():
            env = self._initial_env(func)
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "register" \
                        and self._receiver_is(node.func.value, env, func,
                                              "network", "Network") \
                        and len(node.args) >= 2:
                    endpoint = node.args[1]
                    if isinstance(endpoint, ast.Name) \
                            and endpoint.id == "self" and func.cls:
                        self.graph.endpoint_classes.add(func.cls)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Attribute):
                    target = node.targets[0]
                    if isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        continue  # plain attribute state, not RPC wiring
                    bound = self._infer(node.value, env, func, emit=False)
                    if bound is not None and bound[0] == "func":
                        self._dynamic_handlers.setdefault(
                            target.attr, set()).add(bound[1])

    # -- receiver classification ---------------------------------------------------

    def _receiver_is(self, base: ast.expr, env: dict[str, TRef],
                     func: FuncInfo, suffix: str, class_name: str) -> bool:
        if _last_component(base) == suffix:
            return True
        tref = self._infer(base, env, func, emit=False)
        if tref is not None and tref[0] == "instance":
            return tref[1].rsplit(".", 1)[-1] == class_name
        return False

    # -- function processing -------------------------------------------------------

    def _process(self, func: FuncInfo, env: dict[str, TRef]) -> None:
        if func.fqn in self._processed:
            return
        self._processed.add(func.fqn)
        env = dict(env)
        env.update(self._initial_env(func))
        body = getattr(func.node, "body", [])
        if isinstance(body, ast.expr):  # lambda body
            body = [ast.Expr(value=body)]
        self._walk_block(body, env, func)

    def _walk_block(self, stmts, env: dict[str, TRef],
                    func: FuncInfo) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, env, func)

    def _walk_stmt(self, stmt: ast.stmt, env: dict[str, TRef],
                   func: FuncInfo) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_fqn = f"{func.fqn}.<locals>.{stmt.name}"
            nested = self.project.functions.get(nested_fqn)
            if nested is not None:
                env[stmt.name] = ("func", nested_fqn)
                self._queue.append((nested, dict(env)))
            return
        if isinstance(stmt, ast.ClassDef):
            return
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._scan_expr(expr, env, func)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            tref = self._infer(stmt.value, env, func, emit=False)
            if tref is not None:
                env[stmt.targets[0].id] = tref
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                            ast.Name):
            tref = self._ann_tref(stmt.annotation, func.module)
            if tref is not None:
                env[stmt.target.id] = tref
        elif isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
            iterable = self._infer(stmt.iter, env, func, emit=False)
            if iterable is not None and iterable[0] == "listof":
                env[stmt.target.id] = ("instance", iterable[1])
        # Recurse into compound statement bodies with the same env.
        for block_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, block_name, None)
            if isinstance(block, list):
                self._walk_block(block, env, func)
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk_block(handler.body, env, func)

    def _scan_expr(self, expr: ast.expr, env: dict[str, TRef],
                   func: FuncInfo) -> None:
        for node in ast.walk(expr):
            if id(node) in self._detached:
                continue
            if isinstance(node, ast.Call):
                self._handle_call(node, env, func)
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                self._handle_attribute_load(node, env, func)

    # -- edges --------------------------------------------------------------------

    def _add_edge(self, func: FuncInfo, callee: str, kind: str,
                  node: ast.AST, call: ast.Call | None = None) -> None:
        edge = CallEdge(caller=func.fqn, callee=callee, kind=kind,
                        line=getattr(node, "lineno", func.line),
                        col=getattr(node, "col_offset", 0) + 1)
        key = (edge.caller, edge.callee, edge.kind, edge.line, edge.col)
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        self.graph.edges.append(edge)
        self.graph.by_caller.setdefault(edge.caller, []).append(edge)
        if call is not None:
            self.graph.site_edges.setdefault(id(call), []).append(edge)

    def _handle_attribute_load(self, node: ast.Attribute,
                               env: dict[str, TRef], func: FuncInfo) -> None:
        """Property loads execute the property body: give them a real
        ``method`` edge so exception flow and reachability see them."""
        base = self._infer(node.value, env, func, emit=False)
        if base is None or base[0] != "instance":
            return
        klass = self.project.classes.get(base[1])
        if klass is None:
            return
        method = self.project.lookup_method(klass, node.attr)
        if method is not None and method.is_property:
            self._add_edge(func, method.fqn, "method", node)
        elif method is not None and not isinstance(
                getattr(node, "parent", None), ast.Call):
            # Bound-method reference (stored/passed, not called here).
            self._add_edge(func, method.fqn, "ref", node)

    def _handle_call(self, call: ast.Call, env: dict[str, TRef],
                     func: FuncInfo) -> None:
        callee = call.func
        if isinstance(callee, ast.Attribute):
            attr = callee.attr
            base = callee.value
            if attr == "register" and len(call.args) >= 2 \
                    and self._receiver_is(base, env, func,
                                          "scheduler", "Scheduler"):
                self._register_callback(call, call.args[1], "pump", env, func)
                return
            if attr in ("call_later", "call_at") and len(call.args) >= 2 \
                    and self._receiver_is(base, env, func,
                                          "scheduler", "Scheduler"):
                self._register_callback(call, call.args[1], "timer", env, func)
                return
            if attr in ("call", "call_fanout") and len(call.args) >= 3 \
                    and self._receiver_is(base, env, func,
                                          "network", "Network"):
                # Both put the method name at args[2]; call_fanout is the
                # parallel-wave variant, one rpc edge covers every dst.
                self._handle_rpc_site(call, env, func)
                return
            if attr == "partial" and _last_component(base) == "functools" \
                    and call.args:
                self._handle_partial(call, env, func)
                return
        elif isinstance(callee, ast.Name):
            bound = self.project.modules.get(func.module)
            if callee.id == "partial" and bound is not None \
                    and bound.bindings.get("partial", "").startswith("functools") \
                    and call.args:
                self._handle_partial(call, env, func)
                return
        resolved = self._resolve_call_target(call, env, func)
        if resolved is None:
            if not (isinstance(callee, ast.Name)
                    and hasattr(builtins, callee.id)):
                self.graph.unresolved_calls += 1
            return
        target, kind = resolved
        if isinstance(target, ClassInfo):
            return  # default-constructor call: nothing to traverse
        self._add_edge(func, target.fqn, kind, call, call)
        self.graph.call_sites.append((func, call, target, kind))

    def _resolve_call_target(
            self, call: ast.Call, env: dict[str, TRef],
            func: FuncInfo) -> tuple[FuncInfo | ClassInfo, str] | None:
        callee = call.func
        if isinstance(callee, ast.Name):
            tref = env.get(callee.id)
            if tref is None:
                resolved = self.project.resolve_in_module(func.module,
                                                          callee.id)
                tref = self._entity_tref(resolved)
            return self._callable_target(tref, "call")
        if isinstance(callee, ast.Attribute):
            base = self._infer(callee.value, env, func, emit=False)
            if base is None:
                return None
            kind, fqn = base
            if kind == "module":
                resolved = self.project.resolve(f"{fqn}.{callee.attr}")
                return self._callable_target(self._entity_tref(resolved),
                                             "call")
            if kind == "instance":
                klass = self.project.classes.get(fqn)
                if klass is None:
                    return None
                method = self.project.lookup_method(klass, callee.attr)
                if method is None:
                    return None
                return method, "method"
            if kind == "class":
                klass = self.project.classes.get(fqn)
                if klass is None:
                    return None
                method = self.project.lookup_method(klass, callee.attr)
                if method is None:
                    return None
                return method, "call"
        return None

    def _callable_target(
            self, tref: TRef | None,
            kind: str) -> tuple[FuncInfo | ClassInfo, str] | None:
        if tref is None:
            return None
        if tref[0] == "func":
            target = self.project.functions.get(tref[1])
            return (target, kind) if target is not None else None
        if tref[0] == "class":
            klass = self.project.classes.get(tref[1])
            if klass is None:
                return None
            init = self.project.lookup_method(klass, "__init__")
            if init is not None:
                return (init, "call")
            # Default constructor: no user code runs, but the call is
            # resolved and its result type is the class itself.
            return (klass, "call")
        return None

    def _entity_tref(self, resolved) -> TRef | None:
        if isinstance(resolved, FuncInfo):
            return ("func", resolved.fqn)
        if isinstance(resolved, ClassInfo):
            return ("class", resolved.fqn)
        if isinstance(resolved, ModuleInfo):
            return ("module", resolved.name)
        return None

    # -- special edge kinds --------------------------------------------------------

    def _register_callback(self, call: ast.Call, target_expr: ast.expr,
                           kind: str, env: dict[str, TRef],
                           func: FuncInfo) -> None:
        name = None
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            name = call.args[0].value
        target = self._resolve_callable_ref(target_expr, env, func)
        if target is None:
            self.graph.unresolved_calls += 1
            return
        self._add_edge(func, target, kind, call)
        self.graph.pumps.append(PumpRegistration(
            kind=kind, name=name, target=target, registrar=func.fqn,
            line=call.lineno,
        ))

    def _resolve_callable_ref(self, expr: ast.expr, env: dict[str, TRef],
                              func: FuncInfo) -> str | None:
        """What function does this callback expression denote?"""
        if isinstance(expr, ast.Lambda):
            return self._synthesize_lambda(expr, env, func)
        if isinstance(expr, ast.Call):
            # partial(fn, ...) or functools.partial(fn, ...)
            last = _last_component(expr.func)
            if last == "partial" and expr.args:
                return self._resolve_callable_ref(expr.args[0], env, func)
            return None
        if isinstance(expr, ast.Name):
            tref = env.get(expr.id)
            if tref is None:
                resolved = self.project.resolve_in_module(func.module, expr.id)
                tref = self._entity_tref(resolved)
            if tref is not None and tref[0] == "func":
                return tref[1]
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer(expr.value, env, func, emit=False)
            if base is not None and base[0] == "instance":
                klass = self.project.classes.get(base[1])
                if klass is not None:
                    method = self.project.lookup_method(klass, expr.attr)
                    if method is not None:
                        return method.fqn
            if base is not None and base[0] == "module":
                resolved = self.project.resolve(f"{base[1]}.{expr.attr}")
                if isinstance(resolved, FuncInfo):
                    return resolved.fqn
            # Fallback: a uniquely named method across the project.
            candidates = {
                m.fqn
                for klass in self.project.classes.values()
                for name, m in klass.methods.items()
                if name == expr.attr
            }
            if len(candidates) == 1:
                return candidates.pop()
        return None

    def _synthesize_lambda(self, node: ast.Lambda, env: dict[str, TRef],
                           func: FuncInfo) -> str:
        fqn = f"{func.fqn}.<lambda:{node.lineno}:{node.col_offset}>"
        if fqn not in self.project.functions:
            args = node.args
            params = [a.arg for a in args.posonlyargs + args.args]
            info = FuncInfo(
                fqn=fqn, module=func.module, cls=None, name="<lambda>",
                node=node, line=node.lineno, col=node.col_offset + 1,
                params=params, kwonly=[a.arg for a in args.kwonlyargs],
                has_vararg=args.vararg is not None,
                has_kwarg=args.kwarg is not None,
            )
            self.project.functions[fqn] = info
            # Seed the lambda's env from its default expressions
            # (``lambda e=engine: e.flush()``) and the closure.
            lambda_env = dict(env)
            defaults = args.defaults
            if defaults:
                for arg, default in zip(
                        (args.posonlyargs + args.args)[-len(defaults):],
                        defaults):
                    tref = self._infer(default, env, func, emit=False)
                    if tref is not None:
                        lambda_env[arg.arg] = tref
            self._queue.append((info, lambda_env))
        # Detach the lambda body from the enclosing function's edge scan.
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._detached.add(id(child))
        return fqn

    def _handle_rpc_site(self, call: ast.Call, env: dict[str, TRef],
                         func: FuncInfo) -> None:
        method_arg = call.args[2]
        if isinstance(method_arg, ast.Constant) \
                and isinstance(method_arg.value, str):
            self._add_rpc_edges(func, method_arg.value, call)
        elif isinstance(method_arg, ast.Name) \
                and func.accepts(method_arg.id):
            self.graph.forwarders[func.fqn] = method_arg.id
        else:
            self.graph.unresolved_calls += 1

    def _add_rpc_edges(self, func: FuncInfo, name: str,
                       node: ast.AST) -> None:
        self.graph.rpc_names_used.add(name)
        for handler in self._rpc_targets(name):
            self._add_edge(func, handler, "rpc", node,
                           node if isinstance(node, ast.Call) else None)

    def _rpc_targets(self, name: str) -> list[str]:
        cached = self.graph.rpc_handlers.get(name)
        if cached is not None:
            return cached
        targets: set[str] = set(self._dynamic_handlers.get(name, ()))
        classes = [
            self.project.classes[fqn]
            for fqn in self.graph.endpoint_classes
            if fqn in self.project.classes
        ] or list(self.project.classes.values())
        for klass in classes:
            method = klass.methods.get(name)
            if method is not None:
                targets.add(method.fqn)
        resolved = sorted(targets)
        self.graph.rpc_handlers[name] = resolved
        return resolved

    def _handle_partial(self, call: ast.Call, env: dict[str, TRef],
                        func: FuncInfo) -> None:
        target = self._resolve_callable_ref(call.args[0], env, func)
        if target is None:
            self.graph.unresolved_calls += 1
            return
        self._add_edge(func, target, "partial", call)

    def _resolve_forwarded_rpc(self) -> None:
        """Second pass: a call into an rpc-forwarding function that binds
        a string literal to the forwarded parameter dispatches that RPC
        from the *caller's* site."""
        for func, call, target, _kind in list(self.graph.call_sites):
            param = self.graph.forwarders.get(target.fqn)
            if param is None:
                continue
            bound = map_call_args(call, target)
            literal = bound.get(param)
            if isinstance(literal, ast.Constant) \
                    and isinstance(literal.value, str):
                self._add_rpc_edges(func, literal.value, call)

    # -- expression inference ------------------------------------------------------

    def _infer(self, expr: ast.expr, env: dict[str, TRef],
               func: FuncInfo, emit: bool) -> TRef | None:
        if isinstance(expr, ast.Name):
            tref = env.get(expr.id)
            if tref is not None:
                return tref
            return self._entity_tref(
                self.project.resolve_in_module(func.module, expr.id)
            )
        if isinstance(expr, ast.Attribute):
            base = self._infer(expr.value, env, func, emit)
            if base is None:
                return None
            kind, fqn = base
            if kind == "module":
                return self._entity_tref(
                    self.project.resolve(f"{fqn}.{expr.attr}")
                )
            if kind == "instance":
                klass = self.project.classes.get(fqn)
                if klass is None:
                    return None
                method = self.project.lookup_method(klass, expr.attr)
                if method is not None:
                    if method.is_property:
                        return self._ann_tref(method.returns, method.module)
                    return ("func", method.fqn)
                attr_type = self.project.lookup_attr_type(klass, expr.attr)
                if attr_type:
                    return ("instance", attr_type)
                value_type = klass.attr_value_types.get(expr.attr)
                if value_type:
                    return ("dictof", value_type)
                return None
            if kind == "class":
                klass = self.project.classes.get(fqn)
                if klass is None:
                    return None
                method = self.project.lookup_method(klass, expr.attr)
                if method is not None:
                    return ("func", method.fqn)
            return None
        if isinstance(expr, ast.Subscript):
            base = self._infer(expr.value, env, func, emit)
            if base is not None and base[0] in ("dictof", "listof"):
                return ("instance", base[1])
            return None
        if isinstance(expr, ast.Call):
            return self._infer_call_type(expr, env, func)
        if isinstance(expr, ast.Await):
            return self._infer(expr.value, env, func, emit)
        if isinstance(expr, ast.IfExp):
            return (self._infer(expr.body, env, func, emit)
                    or self._infer(expr.orelse, env, func, emit))
        if isinstance(expr, ast.BoolOp) and expr.values:
            return self._infer(expr.values[0], env, func, emit)
        return None

    def _infer_call_type(self, call: ast.Call, env: dict[str, TRef],
                         func: FuncInfo) -> TRef | None:
        callee = call.func
        if isinstance(callee, ast.Attribute):
            base = self._infer(callee.value, env, func, emit=False)
            if base is not None and base[0] == "dictof" \
                    and callee.attr in ("get", "pop", "setdefault"):
                return ("instance", base[1])
        resolved = self._resolve_call_target(call, env, func)
        if resolved is None:
            return None
        target, _kind = resolved
        if isinstance(target, ClassInfo):
            return ("instance", target.fqn)
        if target.name == "__init__" and target.cls is not None:
            return ("instance", target.cls)
        return self._ann_tref(target.returns, target.module)


def map_call_args(call: ast.Call,
                  callee: FuncInfo) -> dict[str, ast.expr]:
    """Map call-site argument expressions onto callee parameter names
    (positional and keyword; ``self`` already stripped from methods)."""
    bound: dict[str, ast.expr] = {}
    params = callee.params
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            bound[params[index]] = arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            bound[keyword.arg] = keyword.value
    return bound


def has_star_kwargs(call: ast.Call) -> bool:
    return any(kw.arg is None for kw in call.keywords)
