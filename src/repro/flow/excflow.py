"""Exception-flow exhaustiveness over the call graph.

Computes, for every function, the set of ``common.errors`` taxonomy
exceptions that can escape it (direct raises, re-raises of caught or
stored exceptions, and propagation through call / method / rpc edges,
filtered at each call site by the enclosing ``try`` handlers).  Then:

``exception-escape``
    A service entry point (smart client public API, N1QL service,
    fabric RPC handler, pump or timer body) lets a taxonomy exception
    escape without declaring it via ``@declared_raises(...)`` or an
    in-body ``__raises__ = (...)``.  The declaration is the contract a
    caller can program against; an undeclared escape is either a missing
    declaration or a missing handler, and both are bugs worth a look.

``swallowed-exception``
    An ``except <TaxonomyError>`` handler whose body is nothing but
    ``pass`` or ``continue``.  In a database, silently eating a
    ``NodeDownError`` usually means silently returning partial results;
    genuinely best-effort paths carry a
    ``# repro-flow: disable=swallowed-exception`` with a justification.

Propagation deliberately excludes ``pump``/``timer``/``partial``/``ref``
edges: registering a callback does not raise at the registration site --
the callback body is instead analyzed as its own entry point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .callgraph import CallGraph, _last_component
from .findings import FlowFinding
from .project import ClassInfo, FuncInfo, Project

#: Edge kinds along which exceptions propagate to the caller.
PROPAGATING = frozenset({"call", "method", "rpc"})

#: Marker for handlers that catch everything taxonomy-wide
#: (bare ``except``, ``except Exception``, the taxonomy root).
CATCH_ALL = "*"

#: Module suffixes whose public class methods are service entry points.
ENTRY_MODULE_SUFFIXES = {
    "client.smart_client": "client API",
    "n1ql.service": "query service API",
    "admission.controller": "admission API",
}

#: Panics from the simulation harness itself -- livelock detection and
#: scheduler reentrancy guards.  Any code that drives the scheduler can
#: hit them, so requiring them on every declaration would drown the
#: contract in noise; they are unchecked, like RuntimeError (which both
#: subclass).
UNCHECKED = frozenset({"LivelockError", "SchedulerReentrancyError"})


@dataclass(frozen=True)
class Handler:
    """One ``except`` clause as seen by a protected site."""

    caught: frozenset[str]   #: taxonomy names (subtree-expanded) or CATCH_ALL
    reraises: bool           #: bare ``raise`` / ``raise <bound name>`` inside

    def absorbs(self, exc: str) -> bool:
        if self.reraises:
            return False
        return CATCH_ALL in self.caught or exc in self.caught


class Taxonomy:
    """The ``ReproError`` class tree: membership and subtree expansion."""

    def __init__(self, project: Project, root: str = "ReproError"):
        self.project = project
        self.root = root
        self.children: dict[str, set[str]] = {}
        members = {root}
        by_name: dict[str, ClassInfo] = {}
        for klass in project.classes.values():
            by_name.setdefault(klass.name, klass)
        grew = True
        while grew:
            grew = False
            for klass in project.classes.values():
                if klass.name in members:
                    continue
                for base in klass.bases:
                    if base.rsplit(".", 1)[-1] in members:
                        members.add(klass.name)
                        self.children.setdefault(
                            base.rsplit(".", 1)[-1], set()
                        ).add(klass.name)
                        grew = True
                        break
        self.members = members

    def __contains__(self, name: str) -> bool:
        return name in self.members

    def subtree(self, name: str) -> frozenset[str]:
        out = {name}
        frontier = [name]
        while frontier:
            for child in self.children.get(frontier.pop(), ()):
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return frozenset(out)


def _exc_names_from_expr(expr: ast.expr, func: FuncInfo, project: Project,
                         taxonomy: Taxonomy) -> frozenset[str]:
    """Resolve an ``except <expr>`` type expression to caught taxonomy
    names.  Broad catches collapse to CATCH_ALL; non-taxonomy types
    (``ValueError``) catch nothing we track."""
    if isinstance(expr, ast.Tuple):
        caught: set[str] = set()
        for element in expr.elts:
            caught |= _exc_names_from_expr(element, func, project, taxonomy)
        return frozenset(caught)
    name = _last_component(expr)
    if name is None:
        return frozenset()
    if name in ("Exception", "BaseException", taxonomy.root):
        return frozenset({CATCH_ALL})
    if name in taxonomy:
        return taxonomy.subtree(name)
    # ``except self._RETRYABLE`` / module-level alias tuples.
    alias_names: tuple[str, ...] | None = None
    if isinstance(expr, ast.Attribute) and func.cls is not None \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id in ("self", "cls"):
        klass = project.classes.get(func.cls)
        seen: set[str] = set()
        while klass is not None and klass.fqn not in seen:
            seen.add(klass.fqn)
            if expr.attr in klass.exc_aliases:
                alias_names = klass.exc_aliases[expr.attr]
                break
            parent = None
            for base in klass.bases:
                resolved = project.resolve_in_module(klass.module, base)
                if isinstance(resolved, ClassInfo):
                    parent = resolved
                    break
            klass = parent
    elif isinstance(expr, ast.Name):
        module = project.modules.get(func.module)
        if module is not None and expr.id in module.exc_aliases:
            alias_names = module.exc_aliases[expr.id]
    if alias_names:
        caught = set()
        for alias in alias_names:
            if alias in ("Exception", "BaseException", taxonomy.root):
                return frozenset({CATCH_ALL})
            if alias in taxonomy:
                caught |= taxonomy.subtree(alias)
        return frozenset(caught)
    return frozenset()


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if isinstance(node.exc, ast.Name) and handler.name is not None \
                    and node.exc.id == handler.name:
                return True
    return False


class _SiteScanner:
    """Per-function walk assigning each Call/Raise node its protection
    stack and collecting raise sites and swallowed-handler findings."""

    def __init__(self, func: FuncInfo, project: Project, taxonomy: Taxonomy):
        self.func = func
        self.project = project
        self.taxonomy = taxonomy
        #: node id -> tuple[Handler, ...] (innermost first)
        self.protection: dict[int, tuple[Handler, ...]] = {}
        #: (exceptions, line) escaping at each raise site, pre-filtered.
        self.raises: list[tuple[frozenset[str], int]] = []
        self.swallows: list[tuple[frozenset[str], int, int]] = []
        self._var_sets: dict[str, set[str]] = {}

    def scan(self) -> None:
        self._collect_var_sets()
        body = getattr(self.func.node, "body", [])
        if isinstance(body, ast.expr):
            body = [ast.Expr(value=body)]
        self._block(body, ())

    def _collect_var_sets(self) -> None:
        """``last_error = NodeDownError(...)`` / ``except T as e`` binding
        analysis so ``raise last_error`` resolves.  Two passes settle
        ``a = b`` chains."""
        node = self.func.node
        for _pass in range(2):
            for child in ast.walk(node):
                if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                        and isinstance(child.targets[0], ast.Name):
                    target = child.targets[0].id
                    value = child.value
                    if isinstance(value, ast.Call):
                        name = _last_component(value.func)
                        if name is not None and name in self.taxonomy:
                            self._var_sets.setdefault(target, set()).add(name)
                    elif isinstance(value, ast.Name) \
                            and value.id in self._var_sets:
                        self._var_sets.setdefault(target, set()).update(
                            self._var_sets[value.id])
                elif isinstance(child, ast.ExceptHandler) \
                        and child.name is not None and child.type is not None:
                    caught = _exc_names_from_expr(
                        child.type, self.func, self.project, self.taxonomy)
                    self._var_sets.setdefault(child.name, set()).update(
                        caught - {CATCH_ALL})

    def _block(self, stmts, stack: tuple[Handler, ...],
               caught_here: frozenset[str] = frozenset()) -> None:
        for stmt in stmts:
            self._stmt(stmt, stack, caught_here)

    def _stmt(self, stmt: ast.stmt, stack: tuple[Handler, ...],
              caught_here: frozenset[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are their own functions
        # Record protection for every expression hanging directly off
        # this statement (child blocks recurse with their own stacks).
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                for node in ast.walk(child):
                    if isinstance(node, ast.Call):
                        self.protection[id(node)] = stack
        if isinstance(stmt, ast.Raise):
            self._raise_site(stmt, stack, caught_here)
            return
        if isinstance(stmt, ast.Try):
            handlers = []
            for handler in stmt.handlers:
                caught = (frozenset({CATCH_ALL}) if handler.type is None
                          else _exc_names_from_expr(
                              handler.type, self.func, self.project,
                              self.taxonomy))
                handlers.append(Handler(caught=caught,
                                        reraises=_handler_reraises(handler)))
                self._check_swallow(handler, caught)
            self._block(stmt.body, tuple(handlers) + stack, caught_here)
            for handler, spec in zip(stmt.handlers, handlers):
                # Exceptions raised inside a handler see only the
                # *outer* protection; a bare ``raise`` re-raises what
                # this clause caught.
                self._block(handler.body, stack,
                            spec.caught - {CATCH_ALL})
            self._block(stmt.orelse, stack, caught_here)
            self._block(stmt.finalbody, stack, caught_here)
            return
        for block_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, block_name, None)
            if isinstance(block, list):
                self._block(block, stack, caught_here)
        for handler in getattr(stmt, "handlers", []) or []:
            self._block(handler.body, stack, caught_here)

    def _check_swallow(self, handler: ast.ExceptHandler,
                       caught: frozenset[str]) -> None:
        if not caught or caught == frozenset({CATCH_ALL}):
            relevant = bool(caught)
        else:
            relevant = True
        if not relevant:
            return
        if all(isinstance(s, (ast.Pass, ast.Continue)) for s in handler.body):
            self.swallows.append(
                (caught, handler.lineno, handler.col_offset + 1))

    def _raise_site(self, stmt: ast.Raise, stack: tuple[Handler, ...],
                    caught_here: frozenset[str]) -> None:
        raised: set[str] = set()
        if stmt.exc is None:
            raised |= caught_here  # bare re-raise inside a handler
        elif isinstance(stmt.exc, ast.Call):
            name = _last_component(stmt.exc.func)
            if name is not None and name in self.taxonomy:
                raised.add(name)
        elif isinstance(stmt.exc, ast.Name):
            raised |= self._var_sets.get(stmt.exc.id, set())
        escaping = frozenset(
            exc for exc in raised
            if not any(h.absorbs(exc) for h in stack)
        )
        if escaping:
            self.raises.append((escaping, stmt.lineno))


@dataclass
class ExcFlowResult:
    #: function fqn -> taxonomy exceptions that can escape it
    escapes: dict[str, frozenset[str]]
    #: (fqn, exc) -> ("raise", line) | ("via", callee_fqn, line)
    evidence: dict[tuple[str, str], tuple]
    findings: list[FlowFinding]
    entry_points: dict[str, str]   #: fqn -> reason


def analyze_exceptions(graph: CallGraph) -> ExcFlowResult:
    project = graph.project
    taxonomy = Taxonomy(project)
    scanners: dict[str, _SiteScanner] = {}
    escapes: dict[str, set[str]] = {}
    evidence: dict[tuple[str, str], tuple] = {}
    findings: list[FlowFinding] = []

    for fqn, func in project.functions.items():
        scanner = _SiteScanner(func, project, taxonomy)
        scanner.scan()
        scanners[fqn] = scanner
        local = escapes.setdefault(fqn, set())
        for raised, line in scanner.raises:
            for exc in raised:
                if exc not in local:
                    local.add(exc)
                    evidence[(fqn, exc)] = ("raise", line)
        module = project.modules.get(func.module)
        for caught, line, col in scanner.swallows:
            names = sorted(caught - {CATCH_ALL}) or ["Exception"]
            finding = FlowFinding(
                check="swallowed-exception",
                path=str(module.path) if module else func.module,
                line=line, col=col,
                message=(
                    f"handler swallows {', '.join(names)} with a bare "
                    f"pass/continue; handle it, re-raise, or justify with a "
                    f"suppression"
                ),
            )
            findings.append(finding)

    # Precompute the protection stack guarding each edge's call site so
    # the fixpoint below is a dict hit, not a scan.
    edge_stacks: dict[tuple, tuple[Handler, ...]] = {}
    for call_id, site_edges in graph.site_edges.items():
        for edge in site_edges:
            scanner = scanners.get(edge.caller)
            if scanner is not None:
                edge_stacks[_edge_key(edge)] = scanner.protection.get(
                    call_id, ())

    # Propagation fixpoint: a callee's escapes flow to the caller unless
    # absorbed by the handlers enclosing that specific call site.
    changed = True
    while changed:
        changed = False
        for caller, edges in graph.by_caller.items():
            if caller not in scanners:
                continue
            local = escapes.setdefault(caller, set())
            for edge in edges:
                if edge.kind not in PROPAGATING:
                    continue
                stack = edge_stacks.get(_edge_key(edge), ())
                for exc in tuple(escapes.get(edge.callee, ())):
                    if exc in local:
                        continue
                    if any(h.absorbs(exc) for h in stack):
                        continue
                    local.add(exc)
                    evidence[(caller, exc)] = ("via", edge.callee, edge.line)
                    changed = True

    entry_points = _entry_points(graph)
    frozen = {fqn: frozenset(excs) for fqn, excs in escapes.items()}
    findings.extend(
        _escape_findings(graph, taxonomy, frozen, evidence, entry_points))
    return ExcFlowResult(escapes=frozen, evidence=evidence,
                         findings=findings, entry_points=entry_points)


def _edge_key(edge) -> tuple:
    return (edge.caller, edge.callee, edge.kind, edge.line, edge.col)


def _entry_points(graph: CallGraph) -> dict[str, str]:
    project = graph.project
    entries: dict[str, str] = {}
    for module_suffix, reason in ENTRY_MODULE_SUFFIXES.items():
        for klass in project.classes.values():
            if not klass.module.endswith(module_suffix):
                continue
            for method in klass.methods.values():
                if method.is_public and not method.is_dunder:
                    entries.setdefault(method.fqn, reason)
    for handlers in graph.rpc_handlers.values():
        for handler in handlers:
            entries.setdefault(handler, "rpc handler")
    for registration in graph.pumps:
        entries.setdefault(registration.target, registration.kind)
    return entries


def _escape_findings(graph: CallGraph, taxonomy: Taxonomy,
                     escapes: dict[str, frozenset[str]],
                     evidence: dict[tuple[str, str], tuple],
                     entry_points: dict[str, str]) -> list[FlowFinding]:
    project = graph.project
    findings = []
    for fqn in sorted(entry_points):
        func = project.functions.get(fqn)
        if func is None:
            continue
        declared: set[str] = set()
        for name in func.raises_decl or ():
            declared |= taxonomy.subtree(name) if name in taxonomy else {name}
        undeclared = sorted(
            escapes.get(fqn, frozenset()) - declared - UNCHECKED
        )
        if not undeclared:
            continue
        module = project.modules.get(func.module)
        path = str(module.path) if module else func.module
        reason = entry_points[fqn]
        for exc in undeclared:
            findings.append(FlowFinding(
                check="exception-escape",
                path=path, line=func.line, col=func.col,
                message=(
                    f"{_display(fqn)} ({reason}) can raise {exc} "
                    f"({_trace(project, evidence, fqn, exc)}) but does not "
                    f"declare it; add @declared_raises({exc!r}, ...) or "
                    f"handle it"
                ),
            ))
    return findings


def _display(fqn: str) -> str:
    parts = fqn.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else fqn


def _trace(project: Project, evidence: dict[tuple[str, str], tuple],
           fqn: str, exc: str, limit: int = 6) -> str:
    hops = []
    current = fqn
    for _ in range(limit):
        record = evidence.get((current, exc))
        if record is None:
            break
        if record[0] == "raise":
            hops.append(f"raised at line {record[1]}")
            break
        _via, callee, _line = record
        hops.append(f"via {_display(callee)}")
        current = callee
    return " ".join(hops) if hops else "propagated"
