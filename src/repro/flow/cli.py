"""Command line front end: ``python -m repro.flow [paths...]``.

Exit status mirrors repro-lint and repro-sanitize: 0 clean, 1 findings,
2 usage errors -- one contract for all three gates in CI.

Beyond the three checking analyses there are two helper modes:
``--report dead-code`` prints unreachable-function candidates (always
exit 0: deleting code is a decision, not a gate), and
``--suggest-raises`` prints ready-to-paste ``@declared_raises`` lines
for every entry point with undeclared escapes -- the intended workflow
for bringing a new entry point under the exception-flow contract.
"""

from __future__ import annotations

import argparse
import sys

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    PROFILES,
    UsageError,
    discover_program,
    keep_finding,
    print_finding,
    report_parse_errors,
    select_checks,
    suppressions_by_path,
)
from .callgraph import build_callgraph
from .deadcode import analyze_dead_code
from .excflow import analyze_exceptions
from .findings import FlowFinding
from .layers import analyze_layers
from .options import analyze_options
from .project import Project

ANALYSES = ("exceptions", "options", "layers")

#: Checks the relaxed profile (examples/, benchmarks/, fixtures run
#: without --profile strict) does not enforce: demo scripts drive the
#: cluster without declaring a raises contract.
RELAXED_EXEMPT = frozenset({"exception-escape"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow",
        description="Whole-program call-graph analysis for the repro "
                    "package: exception-flow exhaustiveness, option "
                    "plumbing, and layer conformance.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze as one program "
             "(default: src/repro)",
    )
    parser.add_argument(
        "--check", metavar="NAME[,NAME...]", default=None,
        help=f"run only these analyses (of: {', '.join(ANALYSES)})",
    )
    parser.add_argument(
        "--profile", choices=("auto",) + PROFILES, default="auto",
        help="auto (default) is strict under src/repro and relaxed "
             "elsewhere; relaxed does not require @declared_raises "
             "contracts",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default) prints path:line:col lines; github emits "
             "::error workflow commands that become inline PR annotations",
    )
    parser.add_argument(
        "--report", choices=("dead-code",), default=None,
        help="print the dead-code candidate report instead of running "
             "the checking analyses (informational; always exits 0)",
    )
    parser.add_argument(
        "--suggest-raises", action="store_true",
        help="print a @declared_raises(...) suggestion for every entry "
             "point with undeclared escaping exceptions, then exit 0",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        checks = select_checks(args.check, ANALYSES, label="analysis")
    except UsageError as exc:
        print(f"repro-flow: {exc}", file=sys.stderr)
        return EXIT_USAGE
    files = discover_program(args.paths, "repro-flow")
    if files is None:
        return EXIT_USAGE
    project = Project.build(files)
    if project.parse_errors:
        report_parse_errors(project.parse_errors, "repro-flow")
        return EXIT_USAGE
    graph = build_callgraph(project)

    if args.report == "dead-code":
        candidates = analyze_dead_code(graph)
        for candidate in candidates:
            print(f"{candidate.path}:{candidate.line}: dead-code: "
                  f"{candidate.fqn}: {candidate.reason}")
        if not args.quiet:
            print(f"repro-flow: {len(candidates)} dead-code candidate"
                  f"{'' if len(candidates) == 1 else 's'} "
                  f"(informational; not a gate)")
        return EXIT_CLEAN

    if args.suggest_raises:
        return _suggest_raises(graph, project)

    findings: list[FlowFinding] = []
    if "exceptions" in checks:
        findings.extend(analyze_exceptions(graph).findings)
    if "options" in checks:
        findings.extend(analyze_options(graph))
    if "layers" in checks:
        findings.extend(analyze_layers(project))
    suppressions = suppressions_by_path(project.modules.values(),
                                        "repro-flow")
    findings = [f for f in findings
                if keep_finding(f, suppressions, args.profile,
                                RELAXED_EXEMPT)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    for finding in findings:
        print_finding(finding, "repro-flow", args.output_format)
    if not args.quiet:
        print(
            f"repro-flow: {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'} in {len(files)} files "
            f"({len(project.functions)} functions, {len(graph.edges)} "
            f"call edges, {graph.unresolved_calls} unresolved calls)"
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _suggest_raises(graph, project: Project) -> int:
    result = analyze_exceptions(graph)
    from .excflow import UNCHECKED, Taxonomy
    taxonomy = Taxonomy(project)
    suggestions = 0
    for fqn in sorted(result.entry_points):
        func = project.functions.get(fqn)
        if func is None:
            continue
        declared: set[str] = set()
        for name in func.raises_decl or ():
            declared |= set(taxonomy.subtree(name)) \
                if name in taxonomy else {name}
        undeclared = sorted(
            result.escapes.get(fqn, frozenset()) - declared - UNCHECKED
        )
        if not undeclared:
            continue
        suggestions += 1
        module = project.modules.get(func.module)
        path = module.path if module else func.module
        names = ", ".join(repr(name) for name in undeclared)
        print(f"{path}:{func.line}: {fqn}\n"
              f"    @declared_raises({names})")
    print(f"repro-flow: {suggestions} entry point"
          f"{'' if suggestions == 1 else 's'} with undeclared escapes")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
