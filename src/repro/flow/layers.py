"""Layer conformance over the module import graph.

The architecture is a DAG the paper draws directly: clients sit on top
of the cluster fabric, the fabric hosts the services, the services sit
on the KV engine and DCP streams, and everything shares ``common``.
Imports must flow strictly downward:

    =====  ==========================================
    rank   packages
    =====  ==========================================
    0      common
    1      storage
    2      kv
    3      dcp
    4      n1ql, gsi, views, xdcr, replication
    5      cluster
    6      client
    7      server, ycsb
    8      lint, sanitize, flow, analysis  (tooling)
    9      the ``repro`` facade __init__
    =====  ==========================================

Checks:

``layer-violation``
    An import whose importer's rank is not above the importee's.
    Same-package imports are free; same-rank cross-package imports go
    through the declared interface modules only (collation, index
    definitions, view definitions).  ``if TYPE_CHECKING:`` imports are
    erased at runtime and exempt.  Deferred (function-body) imports are
    still layer-checked -- deferring an upward import hides the layering
    breach without removing it.

``layer-restricted``
    ``repro.kv.engine`` / ``repro.kv.hashtable`` hold node-local state a
    real deployment reaches only over the fabric; only kv, cluster, dcp,
    replication and the analysis tooling may import them (shared value
    types live in ``repro.kv.types``).

``import-cycle``
    Strongly connected components in the *eager* import graph.  Deferred
    imports are excluded here (a function-body import cannot deadlock
    module init) but still rank-checked above.
"""

from __future__ import annotations

from .findings import FlowFinding
from .project import DEFERRED, EAGER, ModuleInfo, Project

RANKS = {
    "common": 0,
    "storage": 1, "admission": 1,
    "kv": 2,
    "dcp": 3,
    "n1ql": 4, "gsi": 4, "views": 4, "xdcr": 4, "replication": 4,
    "cluster": 5,
    "client": 6,
    "server": 7, "ycsb": 7,
    "lint": 8, "sanitize": 8, "flow": 8, "analysis": 8,
    "": 9,   # the repro facade __init__ re-exports from everywhere
}

TOOLING_RANK = 8

#: Same-rank cross-package imports allowed through these modules only:
#: they are the declared interfaces between sibling services.
INTERFACE_MODULES = frozenset({
    "repro.n1ql.collation",
    "repro.gsi.indexdef",
    "repro.views.viewindex",
    "repro.views.mapreduce",
})

#: Node-local engine internals; see ``layer-restricted`` above.
RESTRICTED_MODULES = frozenset({
    "repro.kv.engine",
    "repro.kv.hashtable",
})

RESTRICTED_IMPORTERS = frozenset({
    "kv", "cluster", "dcp", "replication",
    "lint", "sanitize", "flow", "analysis",
})


def package_of(module_name: str) -> str:
    """First path component under the ``repro`` root ('' for the facade
    ``repro`` / ``repro.__init__`` itself)."""
    parts = module_name.split(".")
    if parts[0] != "repro":
        return parts[0]
    if len(parts) == 1:
        return ""
    return parts[1]


def _resolve_importee(project: Project, target: str,
                      symbol: str | None) -> str | None:
    """The project module an import record actually lands in, or None
    for stdlib/external imports."""
    if symbol is not None and f"{target}.{symbol}" in project.modules:
        return f"{target}.{symbol}"
    if target in project.modules:
        return target
    return None


def analyze_layers(project: Project) -> list[FlowFinding]:
    findings: list[FlowFinding] = []
    eager_graph: dict[str, set[str]] = {}
    for module in project.modules.values():
        package = package_of(module.name)
        rank = RANKS.get(package)
        for record in module.imports:
            importee = _resolve_importee(project, record.target,
                                         record.symbol)
            if importee is None or record.kind == "type-checking":
                continue
            if record.kind == EAGER:
                eager_graph.setdefault(module.name, set()).add(importee)
            findings.extend(_check_record(module, record, importee,
                                          package, rank))
    findings.extend(_find_cycles(project, eager_graph))
    return findings


def _check_record(module: ModuleInfo, record, importee: str,
                  package: str, rank: int | None) -> list[FlowFinding]:
    findings = []
    importee_package = package_of(importee)
    importee_rank = RANKS.get(importee_package)
    deferred_note = " (deferred imports are still layer-checked)" \
        if record.kind == DEFERRED else ""
    if importee in RESTRICTED_MODULES \
            and package not in RESTRICTED_IMPORTERS \
            and package != importee_package:
        findings.append(FlowFinding(
            check="layer-restricted", path=str(module.path),
            line=record.line, col=record.col,
            message=(
                f"{module.name} imports {importee}, which holds node-local "
                f"engine state; go through the fabric RPC layer (shared "
                f"value types live in repro.kv.types){deferred_note}"
            ),
        ))
    if rank is None or importee_rank is None:
        return findings
    if package == importee_package:
        return findings
    if rank == TOOLING_RANK and importee_rank == TOOLING_RANK:
        return findings  # tooling freely shares tooling
    if rank > importee_rank:
        return findings
    if rank == importee_rank and importee in INTERFACE_MODULES:
        return findings
    direction = ("sideways" if rank == importee_rank else "upward")
    findings.append(FlowFinding(
        check="layer-violation", path=str(module.path),
        line=record.line, col=record.col,
        message=(
            f"{module.name} (layer {package or 'repro'!r}, rank {rank}) "
            f"imports {importee} (layer {importee_package!r}, rank "
            f"{importee_rank}) -- a {direction} import; dependencies must "
            f"flow client -> fabric -> services -> kv -> common"
            f"{deferred_note}"
        ),
    ))
    return findings


def _find_cycles(project: Project,
                 graph: dict[str, set[str]]) -> list[FlowFinding]:
    """Tarjan SCC over the eager import graph; every non-trivial SCC is
    one finding anchored at its first module."""
    index_counter = [0]
    stack: list[str] = []
    on_stack: set[str] = set()
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    sccs: list[list[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan: (node, edge iterator) frames.
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = low[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, edges = work[-1]
            advanced = False
            for child in edges:
                if child not in graph and child not in index:
                    continue
                if child not in index:
                    index[child] = low[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1 or current in graph.get(current, ()):
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    findings = []
    for component in sccs:
        anchor = project.modules.get(component[0])
        findings.append(FlowFinding(
            check="import-cycle",
            path=str(anchor.path) if anchor else component[0],
            line=1, col=1,
            message=(
                f"eager import cycle: {' -> '.join(component)} -> "
                f"{component[0]}; break it with a deferred import or by "
                f"moving the shared piece down a layer"
            ),
        ))
    return findings
