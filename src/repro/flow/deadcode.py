"""Dead-code report: functions the call graph cannot reach.

Reachability starts from everything the outside world can invoke --
service entry points, RPC handlers, pump and timer bodies, dunders,
``main`` functions, and anything decorated (decorators usually mean an
external registry) -- and walks *every* edge kind, including ``ref``
(bound-method references) and ``partial``.

A function the walk misses is only a *candidate*: dynamic dispatch can
hide uses from any static analysis.  So each candidate is cross-checked
textually against every analyzed source file; one occurrence of its name
anywhere beyond its own ``def`` line (a test, a getattr string, a table)
clears it.  What survives is reported by ``--report dead-code`` --
informationally (exit 0), because deleting code is a human decision the
tool should motivate, not force.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .callgraph import CallGraph
from .excflow import _entry_points


@dataclass(frozen=True)
class DeadCandidate:
    fqn: str
    path: str
    line: int
    reason: str


def _roots(graph: CallGraph) -> set[str]:
    project = graph.project
    roots: set[str] = set(_entry_points(graph))
    for fqn, func in project.functions.items():
        if func.is_dunder:
            roots.add(fqn)
        elif func.name == "main" or func.module.endswith("__main__"):
            roots.add(fqn)
        elif func.decorators:
            roots.add(fqn)
    return roots


def reachable_from(graph: CallGraph, roots: set[str]) -> set[str]:
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        current = frontier.pop()
        for edge in graph.out_edges(current):
            if edge.callee not in seen:
                seen.add(edge.callee)
                frontier.append(edge.callee)
    return seen


def analyze_dead_code(graph: CallGraph) -> list[DeadCandidate]:
    project = graph.project
    reached = reachable_from(graph, _roots(graph))
    sources = {
        name: module.source_lines
        for name, module in project.modules.items()
    }
    candidates = []
    for fqn, func in sorted(project.functions.items()):
        if fqn in reached or not func.is_public:
            continue
        if "<lambda" in fqn or ".<locals>." in fqn:
            continue
        if _textually_referenced(func, sources):
            continue
        module = project.modules.get(func.module)
        candidates.append(DeadCandidate(
            fqn=fqn,
            path=str(module.path) if module else func.module,
            line=func.line,
            reason="unreached from any entry point and never named "
                   "outside its own def",
        ))
    return candidates


def _textually_referenced(func, sources: dict[str, list[str]]) -> bool:
    pattern = re.compile(rf"\b{re.escape(func.name)}\b")
    span_start = func.line
    span_end = getattr(func.node, "end_lineno", func.line) or func.line
    for module_name, lines in sources.items():
        own_module = module_name == func.module
        for lineno, line in enumerate(lines, start=1):
            if own_module and span_start <= lineno <= span_end:
                continue  # its own def/body (recursion doesn't count)
            if pattern.search(line):
                return True
    return False
