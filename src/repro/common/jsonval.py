"""JSON value helpers.

Documents in this system are JSON values (section 3): ``None``, bools,
ints/floats, strings, lists, and string-keyed dicts.  This module
provides validation, canonical encoding, structural size accounting (for
the managed cache's memory quota), and deep copy / deep freeze helpers
used wherever a component must not alias client-owned structures.
"""

from __future__ import annotations

import json
from typing import Any

from .errors import InvalidArgumentError

JsonValue = None | bool | int | float | str | list | dict

#: Rough per-object overhead charged by the memory accountant, tuned to be
#: stable across Python versions rather than byte-exact.
_BASE_COST = 16


def is_json_value(value: Any) -> bool:
    """True if ``value`` is representable as JSON (recursively)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, list):
        return all(is_json_value(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and is_json_value(item)
            for key, item in value.items()
        )
    return False


def validate_json_value(value: Any) -> None:
    """Raise :class:`TypeError` if ``value`` is not a JSON value."""
    if not is_json_value(value):
        raise TypeError(f"not a JSON value: {value!r}")


def encode_canonical(value: JsonValue) -> bytes:
    """Deterministic byte encoding (sorted keys, no whitespace).

    Used by the storage engine and by XDCR checksums, where two encodings
    of the same logical document must be byte-identical.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def decode(data: bytes) -> JsonValue:
    """Inverse of :func:`encode_canonical`."""
    return json.loads(data.decode("utf-8"))


def deep_copy(value: JsonValue) -> JsonValue:
    """Copy a JSON value.  Faster than :func:`copy.deepcopy` because the
    shape is known, and it never shares mutable containers."""
    if isinstance(value, dict):
        return {key: deep_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [deep_copy(item) for item in value]
    return value


def sizeof(value: JsonValue) -> int:
    """Approximate in-memory footprint in bytes.

    The managed cache (section 4.3.3) enforces a per-bucket memory quota
    and evicts values when it is exceeded; this accountant provides the
    charge for each cached document.  The numbers are deliberately simple
    and deterministic rather than CPython-exact.
    """
    if value is None or isinstance(value, bool):
        return _BASE_COST
    if isinstance(value, (int, float)):
        return _BASE_COST + 8
    if isinstance(value, str):
        return _BASE_COST + len(value.encode("utf-8"))
    if isinstance(value, list):
        return _BASE_COST + sum(sizeof(item) for item in value)
    if isinstance(value, dict):
        return _BASE_COST + sum(
            _BASE_COST + len(key.encode("utf-8")) + sizeof(item)
            for key, item in value.items()
        )
    raise TypeError(f"not a JSON value: {value!r}")


def get_path(value: JsonValue, path: str) -> tuple[bool, JsonValue]:
    """Resolve a dotted sub-document path like ``"billing.address.zip"``.

    Returns ``(found, value)``; ``found`` is False when any step is
    missing.  Array steps may be numeric (``"items.0.sku"``).  This backs
    the sub-document lookups the DML statements support (section 3.2.2).
    """
    current = value
    if path == "":
        return True, current
    for step in path.split("."):
        if isinstance(current, dict):
            if step not in current:
                return False, None
            current = current[step]
        elif isinstance(current, list):
            try:
                index = int(step)
            except ValueError:
                return False, None
            if not -len(current) <= index < len(current):
                return False, None
            current = current[index]
        else:
            return False, None
    return True, current


def set_path(value: JsonValue, path: str, new_value: JsonValue) -> None:
    """Set a dotted path inside ``value`` in place, creating intermediate
    objects as needed.  Raises :class:`TypeError` when a step traverses a
    non-container."""
    if not path:
        raise InvalidArgumentError("empty path")
    steps = path.split(".")
    current = value
    for step in steps[:-1]:
        if isinstance(current, dict):
            if step not in current or not isinstance(current[step], (dict, list)):
                current[step] = {}
            current = current[step]
        elif isinstance(current, list):
            current = current[int(step)]
        else:
            raise TypeError(f"cannot traverse {type(current).__name__} at {step!r}")
    last = steps[-1]
    if isinstance(current, dict):
        current[last] = new_value
    elif isinstance(current, list):
        current[int(last)] = new_value
    else:
        raise TypeError(f"cannot set field on {type(current).__name__}")


def unset_path(value: JsonValue, path: str) -> bool:
    """Remove a dotted path; returns True if something was removed."""
    if not path:
        raise InvalidArgumentError("empty path")
    steps = path.split(".")
    found, parent = get_path(value, ".".join(steps[:-1]))
    if not found:
        return False
    last = steps[-1]
    if isinstance(parent, dict) and last in parent:
        del parent[last]
        return True
    if isinstance(parent, list):
        try:
            index = int(last)
        except ValueError:
            return False
        if -len(parent) <= index < len(parent):
            del parent[index]
            return True
    return False
