"""Virtual time.

The paper's system is full of time-dependent behaviour: document TTL
expiry, GETL lock timeouts, heartbeat-based failure detection, and the
throughput experiments themselves.  Real wall-clock time makes all of
that nondeterministic and slow to test, so every component takes a
:class:`Clock` and the cluster wires in a single shared
:class:`VirtualClock` that tests and benchmarks advance explicitly.
"""

from __future__ import annotations

from .errors import InvalidArgumentError


class Clock:
    """Abstract time source.  ``now()`` returns seconds as a float."""

    def now(self) -> float:
        raise NotImplementedError


class VirtualClock(Clock):
    """A manually advanced clock.

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise InvalidArgumentError(f"cannot move time backwards ({seconds})")
        self._now += seconds

    def advance_to(self, when: float) -> None:
        if when < self._now:
            raise InvalidArgumentError(
                f"cannot move time backwards (now={self._now}, target={when})"
            )
        self._now = when
