"""Declared state-machine protocols for lifecycle-bearing fields.

The system's hottest correctness surface is a handful of small state
machines: vBucket states driving rebalance/failover (section 4.3.1),
the admission circuit breaker, DCP stream phases, XDCR stream slots.
Every one is "just an attribute assignment" at the write site, which is
exactly why regressions slip in silently.  ``repro.proto`` is the
analyzer that checks those assignments against a declared transition
relation; this module is the declaration side of the contract:

* ``@protocol("A->B", "B->C", ...)`` on an :class:`~enum.Enum` declares
  the machine on the *state type*: every field that holds members of
  the enum is a state field of this protocol, wherever it lives.

* ``@protocol("A->B", ..., field="state")`` on an ordinary class
  declares the machine on the *owning class* for fields whose states
  are plain named constants (the circuit breaker's ``CLOSED`` /
  ``OPEN`` / ``HALF_OPEN`` strings).

* ``__protocol__ = ("field", "A->B", ...)`` in a class body is the
  tuple form of the same owning-class declaration, for classes where a
  decorator is awkward.

Semantics the analyzer enforces (see ``repro.proto`` for the rules):
the declared pairs are the *only* legal transitions (self-transitions
``A->A`` are implicitly allowed as no-ops); a state with no outgoing
pairs is terminal (``DEAD`` never resurrects); ``order=("PENDING",
"ACTIVE", "DEAD")`` additionally declares a handoff sequence that
multi-step operations (a vBucket move) must follow in program order;
and writes are only legal inside the module that owns the state field
-- the static analog of the sanitizer's write-ownership choke points.

Like ``@hot_path``/``@cost``/``@bounded`` these are **zero-overhead at
runtime**: the decorator validates its arguments, attaches an
attribute, and returns the class unwrapped.  The analyzer reads both
forms statically off the AST, so fixture trees never need to be
importable.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, TypeVar

from .errors import InvalidArgumentError

C = TypeVar("C", bound=type)

#: Attribute the decorator attaches: ``(field_or_None, transitions,
#: order)`` -- the runtime mirror of what the analyzer reads statically.
PROTOCOL_ATTR = "__protocol_spec__"


def parse_transition(raw: str) -> tuple[str, str]:
    """Split one ``"A->B"`` declaration, validating its shape."""
    if not isinstance(raw, str) or "->" not in raw:
        raise InvalidArgumentError(
            f"protocol transitions are 'FROM->TO' strings, got {raw!r}"
        )
    src, _, dst = raw.partition("->")
    src, dst = src.strip(), dst.strip()
    if not src or not dst:
        raise InvalidArgumentError(
            f"protocol transition {raw!r} needs both endpoints"
        )
    return src, dst


def protocol(*transitions: str, field: str | None = None,
             order: tuple[str, ...] = ()) -> Callable[[C], C]:
    """Declare the allowed state transitions of a state machine.

    On an :class:`~enum.Enum`, every endpoint must name a member; on an
    ordinary class, ``field`` must name the state attribute and the
    endpoints define the state vocabulary.  ``order`` names the handoff
    sequence multi-step operations must respect (a subset of the
    states, in required program order).  Returns the class unchanged.
    """
    if not transitions:
        raise InvalidArgumentError("protocol() needs at least one transition")
    pairs = tuple(parse_transition(raw) for raw in transitions)
    states = {name for pair in pairs for name in pair}
    for step in order:
        if step not in states:
            raise InvalidArgumentError(
                f"order step {step!r} is not a state of this protocol"
            )

    def mark(cls: C) -> C:
        if isinstance(cls, type) and issubclass(cls, Enum):
            if field is not None:
                raise InvalidArgumentError(
                    "field= is for non-enum protocols; an enum protocol "
                    "binds every field holding its members"
                )
            members = set(cls.__members__)
            unknown = states - members
            if unknown:
                raise InvalidArgumentError(
                    f"protocol on {cls.__name__} names non-members: "
                    f"{sorted(unknown)}"
                )
        elif field is None:
            raise InvalidArgumentError(
                f"protocol on non-enum {cls.__name__} requires field="
            )
        setattr(cls, PROTOCOL_ATTR, (field, pairs, tuple(order)))
        return cls

    return mark
