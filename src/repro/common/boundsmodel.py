"""Declared resource-bound contracts for containers and caches.

The paper's system is a *managed* cache: every queue, cache, and
accounting counter lives under a finite memory quota (sections 2 and
4.2), so any container that grows on a pump- or RPC-reachable path must
either be structurally bounded (a ``maxlen`` deque, an evicting cache, a
queue with a registered consumer pump) or carry a written justification.
``repro.bounds`` is the analyzer that enforces this; this module is the
declaration side of the contract:

* ``@bounded(kind, reason)`` marks a growth site's function (or the
  class owning the container) as *deliberately* bounded by a mechanism
  the analyzer cannot see structurally.  ``kind`` names the mechanism:

  - ``"maxlen"``: a hard size cap enforced elsewhere (config knob,
    fixed key space, construction-time limit);
  - ``"evicted"``: an eviction/expiry policy reclaims entries (LRU
    sweep, epoch invalidation, idle-entry reaping);
  - ``"consumer-drained"``: a consumer outside the class (another pump,
    an RPC peer) drains the container, so local growth is transient.

* ``__bounds__`` declares the same thing at module level for containers
  whose growth and draining sites are too spread out for a decorator:
  a tuple of ``"Class.attribute"`` (or bare ``"attribute"``) strings.
  Use the decorator where possible -- it sits next to the growth site;
  ``__bounds__`` is for shared state mutated from many functions.

Like ``@hot_path``/``@cost`` these are **zero-overhead at runtime**:
the decorator attaches attributes and returns the function unwrapped,
and the analyzer reads both forms statically off the AST -- the module
never needs to be importable for analysis.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from .errors import InvalidArgumentError

F = TypeVar("F", bound=Callable)

#: The declarable bounding mechanisms.  Anything that fits none of these
#: is not bounded -- fix the container instead of inventing a kind.
BOUND_KINDS = ("maxlen", "evicted", "consumer-drained")


def bounded(kind: str, reason: str) -> Callable[[F], F]:
    """Declare that the containers this function grows are bounded.

    ``kind`` must be one of :data:`BOUND_KINDS` and ``reason`` must say
    *what* enforces the bound (one line, specific: "capped at
    FAILOVER_LOG_LIMIT entries", not "small in practice").  Returns the
    function unchanged; ``repro.bounds`` reads the declaration
    statically and exempts the function's growth sites.
    """
    if kind not in BOUND_KINDS:
        raise InvalidArgumentError(
            f"bound kind must be one of {BOUND_KINDS}, got {kind!r}"
        )
    if not reason or not reason.strip():
        raise InvalidArgumentError("bounded() requires a non-empty reason")

    def mark(fn: F) -> F:
        fn.__bounded__ = (kind, reason)
        return fn

    return mark
