"""CRC32 key hashing (section 4.1, Figure 5).

Smart clients map every document ID onto one of the bucket's 1024
vBuckets by hashing the key with CRC32 and taking the low bits.  We
implement the standard reflected CRC-32 (polynomial 0xEDB88320, the same
one memcached/libcouchbase use) from scratch with a table-driven
algorithm; the test suite cross-checks it against :func:`zlib.crc32`.

Couchbase folds the 32-bit digest to the vBucket count with
``(crc >> 16) & 0x7fff % num_vbuckets`` in libcouchbase; we follow the
same fold so key placement matches the real client's behaviour.
"""

from __future__ import annotations

_POLY = 0xEDB88320


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """Reflected CRC-32 of ``data``, optionally continuing from ``value``."""
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def vbucket_for_key(key: str | bytes, num_vbuckets: int) -> int:
    """Map a document ID to its vBucket (libcouchbase-compatible fold)."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    digest = crc32(key)
    return ((digest >> 16) & 0x7FFF) % num_vbuckets
