"""Cooperative scheduler for the cluster's asynchronous machinery.

Section 2.3.2 of the paper: *"Couchbase Server made a design choice to
update all other components of the database asynchronously when a data
update occurs."*  The flusher (disk write queue), intra-cluster
replicator, view engine, GSI projector/indexer, and XDCR are all
background consumers of work queues.

In the real system those are OS threads; here they are **pumps** -- small
callables registered with a shared :class:`Scheduler` that each drain a
bounded batch of their queue when invoked and report whether they did any
work.  ``run_until_idle()`` repeatedly invokes every pump (in registration
order, deterministically) until a full round does nothing.  This gives the
same observable semantics -- writes acknowledge immediately, downstream
state catches up "later" -- while keeping tests exact and repeatable.

The scheduler also owns timed events (lock timeouts, heartbeats,
compaction ticks) against the shared :class:`VirtualClock`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from .clock import VirtualClock
from .errors import LivelockError

Pump = Callable[[], bool]


class Scheduler:
    """Deterministic cooperative scheduler.

    Pumps are callables returning ``True`` if they made progress.  Timers
    fire when the attached virtual clock is advanced past their deadline
    via :meth:`advance`.
    """

    #: Safety valve: ``run_until_idle`` raises if the system fails to
    #: quiesce after this many full rounds, which indicates a livelock
    #: (two pumps feeding each other forever).
    MAX_ROUNDS = 100_000

    def __init__(self, clock: VirtualClock | None = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._pumps: list[tuple[str, Pump]] = []
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._cancelled: set[int] = set()

    # -- pumps -------------------------------------------------------------

    def register(self, name: str, pump: Pump) -> None:
        """Register a background pump under a (diagnostic) name."""
        self._pumps.append((name, pump))

    def unregister(self, name: str) -> None:
        self._pumps = [(n, p) for n, p in self._pumps if n != name]

    def pump_names(self) -> list[str]:
        return [name for name, _ in self._pumps]

    def step(self) -> bool:
        """Run one round of every pump; return True if any did work."""
        progressed = False
        # Snapshot: a pump may register/unregister pumps while running.
        for _name, pump in list(self._pumps):
            if pump():
                progressed = True
        return progressed

    def run_until_idle(self) -> int:
        """Drive all pumps until a full round makes no progress.

        Returns the number of rounds that did work.  This is the moral
        equivalent of "wait for all async work to settle" in the real
        system.
        """
        rounds = 0
        while self.step():
            rounds += 1
            if rounds > self.MAX_ROUNDS:
                raise LivelockError(
                    "scheduler livelock: pumps still busy after "
                    f"{self.MAX_ROUNDS} rounds: {self.pump_names()}"
                )
        return rounds

    def run_until(self, condition: Callable[[], bool], max_rounds: int = 100_000) -> bool:
        """Drive pumps until ``condition()`` holds or the system goes idle.

        Returns True if the condition was met.  Used for blocking waits
        such as ``stale=false`` view queries and ``request_plus`` scans.
        """
        if condition():
            return True
        for _ in range(max_rounds):
            progressed = self.step()
            if condition():
                return True
            if not progressed:
                return condition()
        raise LivelockError("run_until exceeded max_rounds without idling")

    # -- timers ------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to fire when virtual time reaches ``when``.

        Returns a handle usable with :meth:`cancel`.
        """
        handle = next(self._timer_seq)
        heapq.heappush(self._timers, (when, handle, callback))
        return handle

    def call_later(self, delay: float, callback: Callable[[], None]) -> int:
        return self.call_at(self.clock.now() + delay, callback)

    def cancel(self, handle: int) -> None:
        self._cancelled.add(handle)

    def advance(self, seconds: float) -> None:
        """Advance virtual time, firing due timers in deadline order and
        letting the pumps settle after each firing."""
        deadline = self.clock.now() + seconds
        while self._timers and self._timers[0][0] <= deadline:
            when, handle, callback = heapq.heappop(self._timers)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.clock.advance_to(max(when, self.clock.now()))
            callback()
            self.run_until_idle()
        self.clock.advance_to(deadline)

    def pending_timers(self) -> int:
        return sum(1 for _, h, _ in self._timers if h not in self._cancelled)
