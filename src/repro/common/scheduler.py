"""Cooperative scheduler for the cluster's asynchronous machinery.

Section 2.3.2 of the paper: *"Couchbase Server made a design choice to
update all other components of the database asynchronously when a data
update occurs."*  The flusher (disk write queue), intra-cluster
replicator, view engine, GSI projector/indexer, and XDCR are all
background consumers of work queues.

In the real system those are OS threads; here they are **pumps** -- small
callables registered with a shared :class:`Scheduler` that each drain a
bounded batch of their queue when invoked and report whether they did any
work.  ``run_until_idle()`` repeatedly invokes every pump until a full
round does nothing.  This gives the same observable semantics -- writes
acknowledge immediately, downstream state catches up "later" -- while
keeping tests exact and repeatable.

The *order* pumps run in within a round is owned by a pluggable
:class:`SchedulePolicy`.  The default (:class:`RegistrationOrder`)
preserves the historical fixed order, so every existing test and the
Fig-15/16 harness observe the exact same interleaving as before.  The
sanitizer (``repro.sanitize``) swaps in seed-deterministic policies
(:class:`SeededShuffle`, :class:`StarveOne`, :class:`Weighted`) to explore
other interleavings: every policy returns a *permutation* of the live
pumps, so quiescence detection ("a full round made no progress") is
unchanged -- only the order inside the round varies, and identical seeds
always produce identical schedules.

The scheduler also owns timed events (lock timeouts, heartbeats,
compaction ticks) against the shared :class:`VirtualClock`.
"""

from __future__ import annotations

import heapq
import itertools
from random import Random
from typing import Callable

from . import tracing
from .clock import VirtualClock
from .errors import InvalidArgumentError, LivelockError, SchedulerReentrancyError

Pump = Callable[[], bool]

#: Large prime used to mix (seed, round) into a single int seed.  Seeding
#: with an int only -- never a tuple containing strings -- keeps schedules
#: stable across processes regardless of PYTHONHASHSEED.
_SEED_MIX = 1_000_003


class SchedulePolicy:
    """Decides the order pumps run in within one scheduler round.

    Contract: :meth:`order` receives the round index and the list of live
    pump names in registration order, and must return a **permutation** of
    that list (same names, each exactly once).  Policies must be
    deterministic functions of ``(constructor args, round_index, names)``
    so a schedule can be replayed exactly from its seed.
    """

    def order(self, round_index: int, names: list[str]) -> list[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class RegistrationOrder(SchedulePolicy):
    """The historical default: pumps run in registration order."""

    def order(self, round_index: int, names: list[str]) -> list[str]:
        return names

    def describe(self) -> str:
        return "registration-order"


class SeededShuffle(SchedulePolicy):
    """Uniformly shuffle each round with a per-round RNG derived from the
    seed, so round k's order is independent of rounds 0..k-1 and of how
    many pumps existed in earlier rounds."""

    def __init__(self, seed: int):
        self.seed = seed

    def order(self, round_index: int, names: list[str]) -> list[str]:
        rng = Random(self.seed * _SEED_MIX + round_index)
        shuffled = list(names)
        rng.shuffle(shuffled)
        return shuffled

    def describe(self) -> str:
        return f"seeded-shuffle(seed={self.seed})"


class StarveOne(SchedulePolicy):
    """Adversarial starvation: pick one victim pump per epoch (8 rounds)
    and push it to the end of every round in that epoch, so everything
    else repeatedly runs ahead of it.  This widens the window for bugs
    where component A implicitly assumes component B has caught up."""

    EPOCH_ROUNDS = 8

    def __init__(self, seed: int):
        self.seed = seed

    def order(self, round_index: int, names: list[str]) -> list[str]:
        if not names:
            return []
        epoch = round_index // self.EPOCH_ROUNDS
        rng = Random(self.seed * _SEED_MIX + epoch)
        victim = rng.randrange(len(names))
        ordered = list(names)
        ordered.append(ordered.pop(victim))
        return ordered

    def describe(self) -> str:
        return f"starve-one(seed={self.seed})"


class Weighted(SchedulePolicy):
    """Biased-order sampling: each pump draws an Efraimidis-Spirakis key
    ``u ** (1/w)`` and the round runs highest-key first, so heavier pump
    kinds tend to run earlier.  Weights are looked up by the pump name's
    first ``/``-separated segment (``flusher/n1/b`` -> ``flusher``)."""

    def __init__(self, seed: int, weights: dict[str, float] | None = None):
        self.seed = seed
        self.weights = dict(weights) if weights else {}

    def _weight(self, name: str) -> float:
        kind = name.split("/", 1)[0]
        weight = self.weights.get(kind, 1.0)
        if weight <= 0:
            raise InvalidArgumentError(f"pump weight must be positive: {kind}={weight}")
        return weight

    def order(self, round_index: int, names: list[str]) -> list[str]:
        rng = Random(self.seed * _SEED_MIX + round_index)
        keyed = [
            (rng.random() ** (1.0 / self._weight(name)), index, name)
            for index, name in enumerate(names)
        ]
        keyed.sort(key=lambda item: (-item[0], item[1]))
        return [name for _, _, name in keyed]

    def describe(self) -> str:
        return f"weighted(seed={self.seed})"


class Scheduler:
    """Deterministic cooperative scheduler.

    Pumps are callables returning ``True`` if they made progress.  Timers
    fire when the attached virtual clock is advanced past their deadline
    via :meth:`advance`.
    """

    #: Safety valve: ``run_until_idle`` raises if the system fails to
    #: quiesce after this many full rounds, which indicates a livelock
    #: (two pumps feeding each other forever).
    MAX_ROUNDS = 100_000

    def __init__(self, clock: VirtualClock | None = None,
                 policy: SchedulePolicy | None = None):
        self.clock = clock if clock is not None else VirtualClock()
        self.policy: SchedulePolicy = policy if policy is not None else RegistrationOrder()
        #: Diagnostic name, prefixed onto pump names in write-race reports
        #: so multi-cluster (XDCR) runs attribute writes unambiguously.
        self.name = "scheduler"
        #: Name of the pump currently executing, or ``None`` when control
        #: is in frontend/test code or a timer callback.
        self.current_pump: str | None = None
        #: When set to a list, every executed round's pump order is
        #: appended -- the schedule trace the divergence oracle reports.
        self.trace: list[list[str]] | None = None
        self._pumps: list[tuple[str, Pump]] = []
        self._by_name: dict[str, Pump] = {}
        self._round = 0
        self._in_pump = False
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._cancelled: set[int] = set()

    # -- pumps -------------------------------------------------------------

    def register(self, name: str, pump: Pump) -> None:
        """Register a background pump under a (diagnostic) name."""
        if name in self._by_name:
            raise InvalidArgumentError(f"pump already registered: {name!r}")
        self._pumps.append((name, pump))
        self._by_name[name] = pump

    def unregister(self, name: str) -> None:
        self._pumps = [(n, p) for n, p in self._pumps if n != name]
        self._by_name.pop(name, None)

    def pump_names(self) -> list[str]:
        return [name for name, _ in self._pumps]

    def step(self) -> bool:
        """Run one round of every pump; return True if any did work.

        The round order is ``policy.order(...)`` over a snapshot of the
        live pump names.  A pump registered mid-round joins the *next*
        round; a pump unregistered mid-round is skipped for the remainder
        of this round (it no longer exists -- running it from the stale
        snapshot would execute a torn-down component).
        """
        if self._in_pump:
            raise SchedulerReentrancyError(
                f"pump {self.current_pump!r} re-entered the scheduler drive "
                "loop; pumps must do one bounded slice of work and return"
            )
        round_index = self._round
        self._round += 1
        names = self.pump_names()
        ordered = self.policy.order(round_index, names)
        if sorted(ordered) != sorted(names):
            raise InvalidArgumentError(
                f"schedule policy {self.policy.describe()} returned "
                f"{ordered!r}, not a permutation of {names!r}"
            )
        tracker = tracing.current()
        progressed = False
        executed: list[str] = []
        for name in ordered:
            pump = self._by_name.get(name)
            if pump is None:
                continue  # unregistered earlier this round
            executed.append(name)
            self.current_pump = name
            self._in_pump = True
            if tracker is not None:
                tracker.enter_pump(f"{self.name}:{name}")
            try:
                if pump():
                    progressed = True
            finally:
                if tracker is not None:
                    tracker.exit_pump()
                self.current_pump = None
                self._in_pump = False
        if self.trace is not None:
            self.trace.append(executed)
        return progressed

    def run_until_idle(self) -> int:
        """Drive all pumps until a full round makes no progress.

        Returns the number of rounds that did work.  This is the moral
        equivalent of "wait for all async work to settle" in the real
        system.
        """
        rounds = 0
        while self.step():
            rounds += 1
            if rounds > self.MAX_ROUNDS:
                raise LivelockError(
                    "scheduler livelock: pumps still busy after "
                    f"{self.MAX_ROUNDS} rounds: {self.pump_names()}"
                )
        return rounds

    def run_until(self, condition: Callable[[], bool], max_rounds: int = 100_000) -> bool:
        """Drive pumps until ``condition()`` holds or the system goes idle.

        Returns True if the condition was met.  Used for blocking waits
        such as ``stale=false`` view queries and ``request_plus`` scans.
        """
        if condition():
            return True
        for _ in range(max_rounds):
            progressed = self.step()
            if condition():
                return True
            if not progressed:
                return condition()
        raise LivelockError("run_until exceeded max_rounds without idling")

    # -- timers ------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to fire when virtual time reaches ``when``.

        Returns a handle usable with :meth:`cancel`.
        """
        handle = next(self._timer_seq)
        heapq.heappush(self._timers, (when, handle, callback))
        return handle

    def call_later(self, delay: float, callback: Callable[[], None]) -> int:
        return self.call_at(self.clock.now() + delay, callback)

    def cancel(self, handle: int) -> None:
        self._cancelled.add(handle)

    def advance(self, seconds: float) -> None:
        """Advance virtual time, firing due timers in deadline order and
        letting the pumps settle after each firing."""
        deadline = self.clock.now() + seconds
        while self._timers and self._timers[0][0] <= deadline:
            when, handle, callback = heapq.heappop(self._timers)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.clock.advance_to(max(when, self.clock.now()))
            callback()
            self.run_until_idle()
        self.clock.advance_to(deadline)

    def pending_timers(self) -> int:
        return sum(1 for _, h, _ in self._timers if h not in self._cancelled)
