"""Simulated disk.

The paper's storage engine (section 4.3.3) is append-only with periodic
compaction, and its durability story (section 2.3.2) distinguishes data
that reached memory from data that reached disk.  To test both -- and to
simulate crashes that lose unsynced writes -- we back the storage engine
with an in-memory "disk" whose files track a **synced prefix**: bytes
appended but not yet fsynced are discarded by :meth:`SimulatedDisk.crash`.

The disk also keeps I/O accounting (bytes written, fsync count) used by
the compaction ablation bench to measure write amplification.
"""

from __future__ import annotations

from ..common.errors import DiskFullError, InvalidArgumentError


class SimulatedFile:
    """An append-only byte file with explicit sync semantics."""

    def __init__(self, name: str, disk: "SimulatedDisk"):
        self.name = name
        self._disk = disk
        self._data = bytearray()
        self._synced_size = 0

    # -- write path ---------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Append ``data``; return the offset it was written at."""
        if self._disk.capacity is not None:
            if self._disk.used_bytes() + len(data) > self._disk.capacity:
                raise DiskFullError(
                    f"disk full writing {len(data)} bytes to {self.name!r}"
                )
        offset = len(self._data)
        self._data += data
        self._disk.stats.bytes_written += len(data)
        self._disk.stats.writes += 1
        return offset

    def sync(self) -> None:
        """Durably persist everything appended so far."""
        self._synced_size = len(self._data)
        self._disk.stats.syncs += 1

    def truncate(self, size: int) -> None:
        """Discard bytes past ``size`` (used by recovery to drop a torn
        trailing record)."""
        del self._data[size:]
        self._synced_size = min(self._synced_size, size)

    # -- read path ------------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > len(self._data):
            raise InvalidArgumentError(
                f"read past EOF in {self.name!r}: "
                f"offset={offset} length={length} size={len(self._data)}"
            )
        self._disk.stats.bytes_read += length
        self._disk.stats.reads += 1
        return bytes(self._data[offset:offset + length])

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def synced_size(self) -> int:
        return self._synced_size

    def _lose_unsynced(self) -> None:
        del self._data[self._synced_size:]


class DiskStats:
    """I/O accounting for one simulated disk."""

    def __init__(self):
        self.bytes_written = 0
        self.bytes_read = 0
        self.writes = 0
        self.reads = 0
        self.syncs = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class SimulatedDisk:
    """A namespace of :class:`SimulatedFile` objects with crash semantics."""

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self._files: dict[str, SimulatedFile] = {}
        self.stats = DiskStats()

    def open(self, name: str) -> SimulatedFile:
        """Open (creating if absent) the named file."""
        if name not in self._files:
            self._files[name] = SimulatedFile(name, self)
        return self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def rename(self, old: str, new: str) -> None:
        """Atomic rename -- the compactor swaps the compacted file in with
        this, exactly as couchstore does."""
        if old not in self._files:
            raise FileNotFoundError(old)
        file = self._files.pop(old)
        file.name = new
        self._files[new] = file

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def used_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    def crash(self) -> None:
        """Simulate power loss: every file loses its unsynced suffix."""
        for file in self._files.values():
            file._lose_unsynced()
