"""Shared substrate: errors, JSON values, documents, virtual time, the
cooperative scheduler, the simulated disk, the in-process network, CRC32
key hashing, and metrics."""

from .clock import Clock, VirtualClock
from .costmodel import cost, hot_path
from .crc import crc32, vbucket_for_key
from .disk import DiskStats, SimulatedDisk, SimulatedFile
from .document import Document, DocumentMeta
from .jsonval import (
    JsonValue,
    deep_copy,
    decode,
    encode_canonical,
    get_path,
    is_json_value,
    set_path,
    sizeof,
    unset_path,
    validate_json_value,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .scheduler import Scheduler
from .transport import Network

__all__ = [
    "Clock",
    "Counter",
    "DiskStats",
    "Document",
    "DocumentMeta",
    "Histogram",
    "JsonValue",
    "MetricsRegistry",
    "Network",
    "Scheduler",
    "SimulatedDisk",
    "SimulatedFile",
    "VirtualClock",
    "cost",
    "crc32",
    "decode",
    "deep_copy",
    "encode_canonical",
    "get_path",
    "hot_path",
    "is_json_value",
    "set_path",
    "sizeof",
    "unset_path",
    "validate_json_value",
    "vbucket_for_key",
]
