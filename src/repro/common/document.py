"""Documents and their metadata.

A document (section 3) is a JSON value addressed by a user-supplied
string key inside a bucket.  The server attaches metadata:

* **cas** -- the compare-and-swap token, changed on every mutation
  (section 3.1.1).  Modeled as a strictly increasing 64-bit integer.
* **seqno** -- the per-vBucket mutation sequence number (section 4.2:
  "When a document is written, a sequence number is generated and
  associated with the mutation").  DCP, durability observation, and
  scan-consistency waits are all expressed in seqnos.
* **rev** -- the revision (update) counter used by XDCR conflict
  resolution: "the document with the most updates is considered the
  winner" (section 4.6.1).
* **expiry** -- absolute virtual-time expiration, 0 meaning none.
* **flags** -- opaque client flags, carried verbatim like memcached's.
* **deleted** -- tombstone marker; deletes are mutations too and must
  flow through DCP to replicas and indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .jsonval import JsonValue, deep_copy, sizeof


@dataclass
class DocumentMeta:
    key: str
    cas: int = 0
    seqno: int = 0
    rev: int = 0
    expiry: float = 0.0
    flags: int = 0
    deleted: bool = False
    vbucket_id: int = 0

    def copy(self) -> "DocumentMeta":
        return replace(self)

    def is_expired(self, now: float) -> bool:
        return self.expiry != 0.0 and not self.deleted and now >= self.expiry


@dataclass
class Document:
    """A stored document: metadata plus JSON body.

    ``value`` is None when ``meta.deleted`` is set (tombstone) or when the
    value has been ejected from the cache and only key+metadata remain
    resident (section 4.3.3, "value eviction").
    """

    meta: DocumentMeta
    value: JsonValue | None = None
    #: True when the value is not resident in memory (ejected); the body
    #: must be fetched from the storage engine.  Distinct from tombstones.
    ejected: bool = field(default=False, compare=False)

    @property
    def key(self) -> str:
        return self.meta.key

    def copy(self) -> "Document":
        return Document(self.meta.copy(), deep_copy(self.value), self.ejected)

    def memory_footprint(self) -> int:
        """Bytes charged against the bucket quota for this cache entry."""
        base = 64 + len(self.meta.key.encode("utf-8"))
        if self.value is not None and not self.ejected:
            base += sizeof(self.value)
        return base
