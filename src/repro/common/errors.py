"""Exception hierarchy for the repro database.

Every error raised by the public API derives from :class:`ReproError` so
applications can catch a single base class.  The hierarchy mirrors the
error surface of the system described in the paper: key-value protocol
errors (memcached-style status codes), cluster-topology errors raised to
smart clients, index/view errors, and N1QL compile/runtime errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


def declared_raises(*exception_names: str):
    """Declare the taxonomy exceptions a service entry point may raise.

    The declaration is data, not behavior: it sets ``__raises__`` on the
    function, and ``repro-flow``'s exception-flow analysis checks that
    the set of exceptions that can actually escape the entry point is
    covered by it (a declared base class covers its subclasses).  Names
    are strings so declaring does not force imports across layers::

        @declared_raises("KeyNotFoundError", "NodeDownError")
        def get(self, bucket, key):
            ...

    Run ``python -m repro.flow --suggest-raises`` to generate the
    declaration for a new entry point.
    """

    def decorate(func):
        func.__raises__ = tuple(exception_names)
        return func

    return decorate


class InvalidArgumentError(ReproError, ValueError):
    """A service was handed an argument it cannot act on -- an unknown
    enum value, an out-of-range bound, a malformed spec.  Subclasses the
    builtin :class:`ValueError` so pre-taxonomy callers that catch
    ``ValueError`` keep working."""


class LivelockError(ReproError, RuntimeError):
    """A bounded drive loop (scheduler rounds, XDCR settle) failed to
    quiesce within its safety-valve budget, which indicates components
    feeding each other work forever.  Subclasses the builtin
    :class:`RuntimeError` for pre-taxonomy callers."""


class SchedulerReentrancyError(ReproError, RuntimeError):
    """A pump body re-entered the scheduler drive loop (``step`` /
    ``run_until_idle`` / ``run_until`` / ``advance``).  Pumps must do one
    bounded slice of work and return; re-entering the loop from inside a
    pump nests rounds and silently serialises the very interleavings the
    sanitizer explores."""


# ---------------------------------------------------------------------------
# Key-value (memcached-style) protocol errors -- section 3.1.1 of the paper.
# ---------------------------------------------------------------------------

class KeyValueError(ReproError):
    """Base class for errors of the key-value access path."""


class KeyNotFoundError(KeyValueError):
    """The requested document ID does not exist (KEY_ENOENT)."""

    def __init__(self, key: str):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class KeyExistsError(KeyValueError):
    """An insert found the key already present (KEY_EEXISTS)."""

    def __init__(self, key: str):
        super().__init__(f"key already exists: {key!r}")
        self.key = key


class CasMismatchError(KeyValueError):
    """Optimistic concurrency check failed: the CAS supplied by the client
    does not match the server's current CAS for the document (section
    3.1.1, "compare and swap").  The client should re-read and retry."""

    def __init__(self, key: str, expected: int, actual: int):
        super().__init__(
            f"CAS mismatch for {key!r}: client held {expected}, server has {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


class DocumentLockedError(KeyValueError):
    """The document is under a hard (pessimistic) lock taken via get-and-lock
    and the operation did not present the lock-holder's CAS."""

    def __init__(self, key: str):
        super().__init__(f"document is locked: {key!r}")
        self.key = key


class TemporaryFailureError(KeyValueError):
    """The server cannot service the request right now (e.g. out of memory
    quota while ejection is in progress); the client should back off and
    retry.

    Overload-path raisers (the engine's quota check) attach backpressure
    metadata: ``retry_after`` is the server's backoff hint in virtual
    seconds, ``pending_writes`` the flusher backlog behind the failure,
    and ``memory_ratio`` how far past quota the cache is.  A ``None``
    ``retry_after`` marks a *semantic* temporary failure (e.g. counter on
    a non-integer document) that no amount of waiting will fix -- the
    smart client retries only pressure-tagged failures."""

    def __init__(self, message: str = "temporary failure; back off and retry",
                 *, retry_after: float | None = None,
                 pending_writes: int = 0, memory_ratio: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after
        self.pending_writes = pending_writes
        self.memory_ratio = memory_ratio


class AdmissionRejectedError(TemporaryFailureError):
    """The admission-control front door shed this request before it cost
    the cluster any work: a token bucket ran dry, a bulkhead compartment
    was full, a circuit breaker is open, or the degradation policy is
    shedding this service class.  Subclasses
    :class:`TemporaryFailureError` so every pre-admission caller's
    back-off handling (and ``@declared_raises`` contract) covers it."""

    def __init__(self, reason: str, *, retry_after: float | None = None):
        super().__init__(f"admission rejected: {reason}",
                         retry_after=retry_after)
        self.reason = reason


class ValueTooLargeError(KeyValueError):
    """The document body exceeds the bucket's maximum value size (E2BIG)."""


class DurabilityError(KeyValueError):
    """A requested durability constraint (replicate_to / persist_to) could
    not be met, e.g. not enough replica nodes are configured or alive."""


class DurabilityImpossibleError(DurabilityError):
    """The durability requirement exceeds the bucket's replica count, so it
    can never be satisfied regardless of timing."""


# ---------------------------------------------------------------------------
# Cluster / topology errors -- sections 4.1 and 4.3.1.
# ---------------------------------------------------------------------------

class ClusterError(ReproError):
    """Base class for cluster-topology errors."""


class NotMyVBucketError(ClusterError):
    """The contacted node does not host the active copy of the key's
    vBucket.  Smart clients treat this as a signal to refresh their cached
    cluster map and retry (section 4.1)."""

    def __init__(self, vbucket_id: int, node_name: str):
        super().__init__(
            f"vBucket {vbucket_id} is not active on node {node_name!r}"
        )
        self.vbucket_id = vbucket_id
        self.node_name = node_name


class NodeDownError(ClusterError):
    """The target node is not reachable (crashed or partitioned)."""

    def __init__(self, node_name: str):
        super().__init__(f"node is down: {node_name!r}")
        self.node_name = node_name


class NoQuorumError(ClusterError):
    """Not enough live nodes to elect an orchestrator or run a management
    operation."""


class RebalanceInProgressError(ClusterError):
    """A topology-changing operation was requested while a rebalance is
    already running."""


class BucketNotFoundError(ClusterError):
    """No bucket (keyspace) with the given name exists on the cluster."""

    def __init__(self, name: str):
        super().__init__(f"bucket not found: {name!r}")
        self.name = name


class BucketExistsError(ClusterError):
    """A bucket with the given name already exists."""

    def __init__(self, name: str):
        super().__init__(f"bucket already exists: {name!r}")
        self.name = name


class ServiceUnavailableError(ClusterError):
    """No node in the cluster runs the requested service (multi-dimensional
    scaling means a service may be absent, section 4.4)."""

    def __init__(self, service: str):
        super().__init__(f"no node runs the {service} service")
        self.service = service


class NodeExistsError(ClusterError, ValueError):
    """A node with the given name is already a cluster member."""

    def __init__(self, node_name: str):
        super().__init__(f"duplicate node name {node_name!r}")
        self.node_name = node_name


class NodeNotFoundError(ClusterError, ValueError):
    """A management operation named a node the cluster does not know."""

    def __init__(self, node_name: str):
        super().__init__(f"unknown node {node_name!r}")
        self.node_name = node_name


class NotConnectedError(ClusterError, RuntimeError):
    """The client is not wired to a cluster facade, so operations that
    need topology access (N1QL, view queries) cannot be routed."""


# ---------------------------------------------------------------------------
# Storage errors -- section 4.3.3.
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-engine errors."""


class CorruptFileError(StorageError):
    """A storage file failed checksum or header validation on open."""


class DiskFullError(StorageError):
    """The simulated disk refused a write because its capacity is exhausted."""


# ---------------------------------------------------------------------------
# DCP errors -- section 4.3.2.
# ---------------------------------------------------------------------------

class DcpError(ReproError):
    """Base class for Database Change Protocol errors."""


class StreamRollbackRequired(DcpError):
    """The producer cannot continue a stream from the consumer's requested
    point; the consumer must roll back to ``rollback_seqno`` and
    re-request (mirrors DCP's ROLLBACK response)."""

    def __init__(self, vbucket_id: int, rollback_seqno: int):
        super().__init__(
            f"vBucket {vbucket_id}: rollback to seqno {rollback_seqno} required"
        )
        self.vbucket_id = vbucket_id
        self.rollback_seqno = rollback_seqno


# ---------------------------------------------------------------------------
# Index / view errors -- sections 3.1.2 and 3.3.
# ---------------------------------------------------------------------------

class IndexError_(ReproError):
    """Base class for secondary-index errors (named with a trailing
    underscore to avoid shadowing the builtin :class:`IndexError`)."""


class IndexNotFoundError(IndexError_):
    def __init__(self, name: str):
        super().__init__(f"index not found: {name!r}")
        self.name = name


class IndexExistsError(IndexError_):
    def __init__(self, name: str):
        super().__init__(f"index already exists: {name!r}")
        self.name = name


class IndexNotReadyError(IndexError_):
    """The index exists but its initial build has not completed (e.g. it
    was created with ``defer_build`` and never built)."""

    def __init__(self, name: str):
        super().__init__(f"index not ready (still building or deferred): {name!r}")
        self.name = name


class ViewNotFoundError(IndexError_):
    def __init__(self, design: str, view: str):
        super().__init__(f"view not found: {design!r}/{view!r}")
        self.design = design
        self.view = view


class ViewExistsError(IndexError_, ValueError):
    def __init__(self, full_name: str):
        super().__init__(f"view already defined: {full_name}")
        self.full_name = full_name


class ViewQueryError(IndexError_, ValueError):
    """A view query asked for something the view cannot answer, e.g.
    reduce output from a map-only view."""


# ---------------------------------------------------------------------------
# N1QL errors -- section 3.2.
# ---------------------------------------------------------------------------

class N1qlError(ReproError):
    """Base class for N1QL query errors."""


class N1qlSyntaxError(N1qlError):
    """The statement failed to lex or parse.  Carries the offending
    position so clients can point at the error."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        loc = f" at line {line}, column {column}" if line else ""
        super().__init__(f"syntax error{loc}: {message}")
        self.line = line
        self.column = column


class N1qlSemanticError(N1qlError):
    """The statement parsed but is not executable -- e.g. an unsupported
    general join between two secondary attributes (section 3.2.4), an
    unknown keyspace, or a bad parameter reference."""


class N1qlRuntimeError(N1qlError):
    """An error occurred while executing a (valid) plan."""


class NoSuitableIndexError(N1qlSemanticError):
    """The planner found no access path for a keyspace: no USE KEYS, no
    qualifying secondary index, and no primary index to fall back to."""

    def __init__(self, keyspace: str):
        super().__init__(
            f"no index available on keyspace {keyspace!r}; create a primary "
            f"index or a suitable secondary index, or use USE KEYS"
        )
        self.keyspace = keyspace


# ---------------------------------------------------------------------------
# XDCR errors -- section 4.6.
# ---------------------------------------------------------------------------

class XdcrError(ReproError):
    """Base class for cross-datacenter replication errors."""


class ReplicationExistsError(XdcrError):
    def __init__(self, source: str, target: str):
        super().__init__(f"replication {source!r} -> {target!r} already defined")


class TimeoutError_(ReproError):
    """A blocking wait (durability observe, stale=false build, request_plus
    scan) exceeded its deadline.  Trailing underscore avoids shadowing the
    builtin :class:`TimeoutError`."""
