"""In-process network fabric.

The real cluster is shared-nothing nodes on a LAN; here every node lives
in one Python process and "RPC" is a method call routed through a
:class:`Network`.  Routing through a central object buys three things:

* **fault injection** -- nodes can be marked down and node pairs can be
  partitioned, and every call re-checks reachability, which is what the
  failure-detection and failover tests exercise (section 4.3.1);
* **latency accounting** -- every call is charged a configurable virtual
  latency, used by the YCSB cost model (appendix 10.1); and
* **observability** -- a per-(service, method) call counter that tests use
  to assert, e.g., that a key-value get touched exactly one node
  (section 3.1.1: "only the cluster node hosting the data with that key
  will be contacted").
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from . import tracing
from .errors import InvalidArgumentError, NodeDownError


class Network:
    """Registry of endpoints plus fault state."""

    def __init__(self, default_latency: float = 0.0):
        self._endpoints: dict[str, Any] = {}
        self._down: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self.default_latency = default_latency
        self.calls: Counter[tuple[str, str]] = Counter()
        #: Total virtual seconds of latency charged so far.
        self.latency_charged = 0.0
        #: Optional admission hook ``(src, dst, method) -> release|None``
        #: consulted before every dispatch; it may raise to shed the call
        #: and may return a callable invoked when the call finishes.
        #: Duck-typed so ``common`` does not depend on the admission
        #: layer; the cluster facade installs the controller's filter.
        self.call_filter = None

    # -- membership ----------------------------------------------------------

    def register(self, name: str, endpoint: Any) -> None:
        self._endpoints[name] = endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> Any:
        """Raw access to an endpoint (bypasses fault simulation); only
        test code and the cluster bootstrapper should use this."""
        return self._endpoints[name]

    def names(self) -> list[str]:
        return sorted(self._endpoints)

    # -- fault injection -------------------------------------------------------

    def set_down(self, name: str, down: bool = True) -> None:
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    def partition(self, a: str, b: str) -> None:
        """Sever connectivity between ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str | None = None, b: str | None = None) -> None:
        """Heal partitions: ``heal()`` clears every partition,
        ``heal(a)`` removes *all* partitions involving node ``a``, and
        ``heal(a, b)`` removes just that pair."""
        if a is None:
            if b is not None:
                raise InvalidArgumentError(
                    "heal(None, node) is ambiguous; pass the node as the "
                    "first argument or call heal() to clear everything"
                )
            self._partitions.clear()
        elif b is None:
            self._partitions = {
                pair for pair in self._partitions if a not in pair
            }
        else:
            self._partitions.discard(frozenset((a, b)))

    def reachable(self, src: str, dst: str) -> bool:
        if dst in self._down or src in self._down:
            return False
        return frozenset((src, dst)) not in self._partitions

    # -- calls ---------------------------------------------------------------

    def call(self, src: str, dst: str, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` on the endpoint named ``dst`` on behalf of
        ``src``.  Raises :class:`NodeDownError` if unreachable."""
        return self._dispatch(src, dst, method, args, kwargs,
                              charge_latency=True)

    def call_fanout(self, src: str, dsts: list[str], method: str,
                    *args: Any) -> list[Any]:
        """Scatter ``method`` to every endpoint in ``dsts`` as one
        parallel wave; returns the results in ``dsts`` order.

        The calls overlap in virtual time, so the wave is charged one
        ``default_latency`` total instead of one per call; per-(node,
        method) counters still tick for every call.  Dispatch happens in
        list order -- the scatter is deterministic, so the sanitizer sees
        identical merge inputs under any pump schedule -- and the first
        unreachable destination raises :class:`NodeDownError` (a partial
        scatter-gather would silently drop that node's rows)."""
        results = []
        for position, dst in enumerate(dsts):
            results.append(self._dispatch(src, dst, method, args, {},
                                          charge_latency=position == 0))
        return results

    def _dispatch(self, src: str, dst: str, method: str, args: tuple,
                  kwargs: dict, *, charge_latency: bool) -> Any:
        if dst not in self._endpoints:
            raise NodeDownError(dst)
        if not self.reachable(src, dst):
            raise NodeDownError(dst)
        release = (self.call_filter(src, dst, method)
                   if self.call_filter is not None else None)
        try:
            self.calls[(dst, method)] += 1
            if charge_latency:
                self.latency_charged += self.default_latency
            # An RPC is a *declared* hand-off point: whatever the endpoint
            # mutates while serving it was mediated by the fabric, which the
            # write-race tracker treats as legitimate cross-pump
            # communication.
            tracker = tracing.current()
            if tracker is None:
                return getattr(self._endpoints[dst], method)(*args, **kwargs)
            tracker.enter_mediated()
            try:
                return getattr(self._endpoints[dst], method)(*args, **kwargs)
            finally:
                tracker.exit_mediated()
        finally:
            if release is not None:
                release()

    def reset_counters(self) -> None:
        self.calls.clear()
        self.latency_charged = 0.0
