"""Declared-cost contracts for performance-critical code.

The paper's core claim is that the managed cache serves KV traffic at
memcached-like speed with query processing layered on top (sections 2
and 5) -- so the KV op path, the per-row N1QL operators, and the
scheduler pump bodies are performance-critical *by construction*.  These
two decorators make that status machine-checkable:

* ``@hot_path`` marks a function as a hot-set **root**: everything it
  (transitively) calls is analyzed by ``repro.hotpath`` for accidental
  per-call blowups (quadratic loops, defensive copies, loop-invariant
  work, N+1 RPC fan-out).
* ``@cost("O(1)" | "O(log n)" | "O(n)")`` declares an upper bound on a
  hot root's per-call work, where *n* is the size of the input the call
  actually touches (a batch, one vBucket's live set) -- never the whole
  keyspace.  ``repro.hotpath`` checks declarations for consistency up
  the call graph: an ``O(1)`` function may not call an ``O(n)`` one, and
  nothing may call an ``O(n)`` function from inside an unbounded loop.

Both are **zero-overhead at runtime**: they attach attributes to the
function object and return it unwrapped, so decorated hot paths pay
nothing per call.  The analyzer reads the decorators statically (by
name, off the AST) -- importability is not required for analysis.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from .errors import InvalidArgumentError

F = TypeVar("F", bound=Callable)

#: The declarable cost vocabulary, cheapest first.  Anything that cannot
#: honestly declare ``O(n)`` of its *per-call input* does not belong on
#: a hot path and should be restructured (bounded slices, batching)
#: rather than given a bigger annotation.
COSTS = ("O(1)", "O(log n)", "O(n)")

#: Rank order used by the analyzer's contract check.
COST_RANK = {name: rank for rank, name in enumerate(COSTS)}


def hot_path(fn: F) -> F:
    """Mark ``fn`` as a hot-set root for ``repro.hotpath``.

    Returns ``fn`` unchanged (no wrapper): the marker must not add a
    frame to the very paths it declares performance-critical.
    """
    fn.__hot_path__ = True
    return fn


def cost(bound: str) -> Callable[[F], F]:
    """Declare ``fn``'s per-call cost bound (one of :data:`COSTS`).

    ``n`` is the size of the per-call input -- the keys in one multi-op,
    the rows in one batch, the dirty queue slice one pump drains -- not
    global state.  The bound is enforced statically by ``repro.hotpath``
    (callees must declare costs no greater than their callers'), never
    at runtime.
    """
    if bound not in COSTS:
        raise InvalidArgumentError(
            f"cost bound must be one of {COSTS}, got {bound!r}"
        )

    def mark(fn: F) -> F:
        fn.__declared_cost__ = bound
        return fn

    return mark
