"""Process-wide hook points for the write-race tracker.

The sanitizer (``repro.sanitize``) needs to know, at every mutation of a
shared structure, *which pump* is executing and whether the mutation
arrived through a declared mediation point (an RPC dispatched by
:class:`repro.common.transport.Network`).  Threading a tracker object
through every engine constructor would churn dozens of call sites for a
diagnostic concern, so instead the instrumented choke points call the
module-level :func:`record_write` / :func:`record_take`, which are no-ops
unless a tracker has been installed for the current run.

Exactly one tracker can be installed at a time; the sanitizer installs a
fresh one per scenario run and uninstalls it afterwards, so normal test
and harness runs pay only a ``None`` check per choke point.
"""

from __future__ import annotations

from typing import Protocol

#: Registered mutable module state (see the declared-shared-state lint
#: rule): the single process-wide tracker slot.
__shared_state__ = ("_tracker",)

_tracker = None


class Tracker(Protocol):
    def enter_pump(self, name: str) -> None: ...
    def exit_pump(self) -> None: ...
    def enter_mediated(self) -> None: ...
    def exit_mediated(self) -> None: ...
    def record_write(self, tag: str) -> None: ...
    def record_take(self, stream_id: str) -> None: ...


def install(tracker) -> object | None:
    """Install ``tracker`` as the process-wide tracker; returns the
    previously installed one (normally ``None``) so callers can restore it."""
    global _tracker
    previous = _tracker
    _tracker = tracker
    return previous


def current():
    """The installed tracker, or ``None`` outside sanitized runs."""
    return _tracker


def record_write(tag: str) -> None:
    """Report a mutation of the shared structure identified by ``tag``
    (e.g. ``kv/node1/default`` for a KV engine, ``views/node1/default``
    for a view index).  No-op unless a tracker is installed."""
    if _tracker is not None:
        _tracker.record_write(tag)


def record_take(stream_id: str) -> None:
    """Report a consumer draining the queue/stream ``stream_id``.  The
    first pump to take from a stream claims it; a different pump taking
    later is a queue-theft violation.  No-op unless a tracker is installed."""
    if _tracker is not None:
        _tracker.record_take(stream_id)
