"""Multi-dimensional scaling: the service types a node can run.

Section 4.4: "an administrator can choose to run the Data, Index and
Query Services on all or different nodes", sizing each independently
(data nodes want memory, query nodes want cores, index nodes want fast
disks).  The futures section adds search and analytics; both are listed
here so topologies can reserve nodes for them, though only data, index,
and query have engines in this reproduction's scope (search/analytics
are explicitly future work in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Service(Enum):
    DATA = "data"
    INDEX = "index"
    QUERY = "query"
    SEARCH = "search"
    ANALYTICS = "analytics"

ALL_CORE_SERVICES = frozenset({Service.DATA, Service.INDEX, Service.QUERY})


@dataclass
class BucketConfig:
    """Per-bucket (keyspace) settings -- section 4.1."""

    name: str
    num_replicas: int = 1
    quota_bytes: int | None = None
    eviction_policy: str = "value"
    #: Online auto-compaction fires past this fragmentation ratio
    #: (section 4.3.3); None disables it.
    compaction_threshold: float | None = 0.6
    #: Seconds between expiry-pager sweeps; None disables the pager
    #: (expiry still happens lazily on access).
    expiry_pager_interval: float | None = 60.0

    def __post_init__(self):
        if not 0 <= self.num_replicas <= 3:
            raise ValueError("a bucket can be replicated up to 3 times")
        if "/" in self.name or not self.name:
            raise ValueError(f"invalid bucket name: {self.name!r}")
        if self.compaction_threshold is not None and not (
            0.0 < self.compaction_threshold < 1.0
        ):
            raise ValueError("compaction_threshold must be in (0, 1)")
