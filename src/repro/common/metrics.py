"""Lightweight metrics: counters and latency histograms.

Every service keeps a :class:`MetricsRegistry`; the YCSB runner and the
ablation benches read throughput and latency percentiles from these.
Histograms use fixed logarithmic buckets so memory stays bounded no
matter how many samples are recorded.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from contextlib import contextmanager


class Counter:
    """A monotonically increasing named metric."""

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Log-bucketed latency histogram (seconds).

    Buckets span 1 microsecond to ~1000 seconds with 10 buckets per
    decade, which keeps percentile error under ~12% -- plenty for the
    shape comparisons this repo makes.
    """

    _MIN = 1e-6
    _BUCKETS_PER_DECADE = 10
    _DECADES = 9

    def __init__(self):
        size = self._BUCKETS_PER_DECADE * self._DECADES + 2
        self._counts = [0] * size
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def _bucket(self, value: float) -> int:
        if value < self._MIN:
            return 0
        index = int(math.log10(value / self._MIN) * self._BUCKETS_PER_DECADE) + 1
        return min(index, len(self._counts) - 1)

    def _bucket_upper(self, index: int) -> float:
        if index == 0:
            return self._MIN
        return self._MIN * 10 ** (index / self._BUCKETS_PER_DECADE)

    def record(self, value: float) -> None:
        self._counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100])."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                return min(self._bucket_upper(index), self.max)
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self):
        self.counters: dict[str, Counter] = defaultdict(Counter)
        self.histograms: dict[str, Histogram] = defaultdict(Histogram)

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name].inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].record(value)

    @contextmanager
    def timer(self, name: str):
        """Record the duration of a ``with`` block into histogram ``name``.

        This is the one sanctioned wall-clock read in the library: the
        measured quantity *is* elapsed real time (how long our own code
        took), never simulated time, so it cannot leak nondeterminism
        into simulation logic.  Everything else must use the injected
        Clock -- enforced by repro-lint's no-wall-clock rule.
        """
        start = time.perf_counter()  # repro-lint: disable=no-wall-clock
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start  # repro-lint: disable=no-wall-clock
            self.histograms[name].record(elapsed)

    def counter_value(self, name: str) -> int:
        return self.counters[name].value if name in self.counters else 0

    def snapshot(self) -> dict:
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "histograms": {name: h.summary() for name, h in self.histograms.items()},
        }
