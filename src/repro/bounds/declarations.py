"""Static readers for the ``@bounded`` / ``__bounds__`` contract.

Mirrors how :mod:`repro.flow.hotset` reads ``@hot_path`` and ``@cost``:
by name, off the AST, so fixture trees (and code that stubs
:mod:`repro.common.boundsmodel`) analyze without being importable.

Two declaration forms (see :mod:`repro.common.boundsmodel` for the
runtime side and the kind vocabulary):

* ``@bounded("kind", "reason")`` on a function exempts every container
  growth site inside that function;
* ``__bounds__ = ("attr", ...)`` in a class body -- or
  ``("Class.attr", ...)`` at module level -- exempts the named
  container attributes wherever they grow.
"""

from __future__ import annotations

import ast

from ..flow.project import ClassInfo, FuncInfo, ModuleInfo


def _decorator_name(dec: ast.expr) -> str | None:
    node = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def declared_bound(func: FuncInfo) -> tuple[str, str] | None:
    """The ``@bounded(kind, reason)`` declaration on ``func``, or None."""
    for dec in func.decorators:
        if (_decorator_name(dec) == "bounded" and isinstance(dec, ast.Call)
                and len(dec.args) >= 2
                and all(isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        for arg in dec.args[:2])):
            return dec.args[0].value, dec.args[1].value
    return None


def _bounds_tuple(body: list[ast.stmt]) -> frozenset[str]:
    """The names listed by a first-level ``__bounds__ = (...)``."""
    for stmt in body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__bounds__"):
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List)):
                return frozenset(
                    elt.value for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                return frozenset({value.value})
    return frozenset()


def class_bounds(klass: ClassInfo) -> frozenset[str]:
    """Attribute names declared bounded in the class body."""
    return _bounds_tuple(klass.node.body)


def module_bounds(module: ModuleInfo) -> frozenset[str]:
    """``Class.attr`` (or bare ``attr``) names declared bounded at
    module level."""
    return _bounds_tuple(module.tree.body)
