"""Command line front end: ``python -m repro.bounds [paths...]``.

Exit status mirrors repro-lint/sanitize/flow/hotpath: 0 clean, 1
findings, 2 usage errors -- one contract for every gate in CI.
Suppressions are ``# repro-bounds: disable=<check>`` (or
``disable-next=``) with a short justification expected on the same or
neighboring line; containers with a *mechanism* rather than a comment
should prefer ``@bounded`` / ``__bounds__`` declarations
(:mod:`repro.common.boundsmodel`), which document the mechanism at the
definition instead of silencing one line.

``--report scope`` prints the derived bounds scope (every function
reachable from a pump, timer, RPC handler, or ``@hot_path`` root) with
provenance and exits 0.
"""

from __future__ import annotations

import argparse
import sys

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    PROFILES,
    UsageError,
    discover_program,
    keep_finding,
    print_finding,
    report_parse_errors,
    select_checks,
    suppressions_by_path,
)
from ..flow.callgraph import build_callgraph
from ..flow.project import Project
from .analyze import ALL_CHECKS, analyze

TOOL = "repro-bounds"

#: Checks the relaxed profile (fixture trees, harness code analyzed
#: without --profile strict) does not enforce: a demo script may memo
#: into a dict without committing to an eviction policy.
RELAXED_EXEMPT = frozenset({"cache-without-eviction"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bounds",
        description="Whole-program resource-bounds and lifecycle "
                    "analysis: derives the pump/RPC-reachable scope, "
                    "then checks that every container on it is bounded, "
                    "memory charges balance, retries back off, and "
                    "acquired slots release on error paths.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze as one program "
             "(default: src/repro)",
    )
    parser.add_argument(
        "--check", metavar="NAME[,NAME...]", default=None,
        help=f"run only these checks (of: {', '.join(ALL_CHECKS)})",
    )
    parser.add_argument(
        "--profile", choices=("auto",) + PROFILES, default="auto",
        help="auto (default) is strict under src/repro and relaxed "
             "elsewhere; relaxed does not enforce cache eviction "
             "policies",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default) prints path:line:col lines; github emits "
             "::error workflow commands that become inline PR annotations",
    )
    parser.add_argument(
        "--report", choices=("scope",), default=None,
        help="print the derived bounds scope with provenance instead of "
             "running the checks (informational; always exits 0)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        checks = frozenset(select_checks(args.check, ALL_CHECKS))
    except UsageError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    files = discover_program(args.paths, TOOL)
    if files is None:
        return EXIT_USAGE
    project = Project.build(files)
    if project.parse_errors:
        report_parse_errors(project.parse_errors, TOOL)
        return EXIT_USAGE
    graph = build_callgraph(project)
    result = analyze(project, graph, checks)

    if args.report == "scope":
        for fqn in sorted(result.scope.members):
            func = project.functions.get(fqn)
            line = func.line if func else 0
            print(f"{fqn}:{line}: {result.scope.why(fqn)}")
        if not args.quiet:
            print(f"{TOOL}: {len(result.scope.members)} functions in "
                  f"scope from {len(result.scope.roots)} roots "
                  f"(informational; not a gate)")
        return EXIT_CLEAN

    suppressions = suppressions_by_path(project.modules.values(), TOOL)
    findings = [f for f in result.findings
                if keep_finding(f, suppressions, args.profile,
                                RELAXED_EXEMPT)]
    for finding in findings:
        print_finding(finding, TOOL, args.output_format)
    if not args.quiet:
        tracked = len(result.inventory.containers) \
            if result.inventory else 0
        print(
            f"{TOOL}: {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'} in {len(files)} files "
            f"({tracked} containers tracked, {len(result.scope.members)} "
            f"functions in scope from {len(result.scope.roots)} roots)"
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
