"""Entry point for ``python -m repro.bounds``."""

import sys

from .cli import main

sys.exit(main())
