"""charge-balance: conservation of memory accounting.

``HashTable.charge(delta)`` is the single funnel every byte of cache
memory flows through; ``tests/kv/test_memory_accounting.py`` checks the
invariant *dynamically* (counter == ground-truth re-summation after
every mutation).  This module proves the structural half statically:

* an **accounting class** is any class defining a ``charge`` method;
* its **charged containers** are the attributes some method mutates in
  the same breath as calling ``charge`` -- the entry stores whose
  contents the counter mirrors;
* every method that *removes* from a charged container must issue a
  negative charge (directly or via one delegated sibling call), every
  method that *inserts* must issue a positive one;
* between a negative charge and its balancing positive re-charge, the
  method may not raise or call anything whose body raises: an exception
  in that window leaves the counter out of sync with live state.

Charge signs are classified syntactically: ``charge(-x)`` and negative
constants are negative, everything else positive.  A computed delta
(``charge(new - old)``) counts as positive -- if that is wrong, split
it into an explicit discharge/recharge pair, which is also easier to
audit.
"""

from __future__ import annotations

import ast

from ..flow.callgraph import CallGraph
from ..flow.project import ClassInfo, FuncInfo, Project
from .containers import Inventory
from .findings import BoundsFinding

CHECK = "charge-balance"


def _charge_calls(func: FuncInfo) -> list[tuple[ast.Call, str]]:
    """(call, "neg"|"pos") for every ``*.charge(...)`` in ``func``."""
    calls = []
    for node in ast.walk(func.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "charge" and node.args):
            arg = node.args[0]
            negative = (
                isinstance(arg, ast.UnaryOp)
                and isinstance(arg.op, ast.USub)
            ) or (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float)) and arg.value < 0
            )
            calls.append((node, "neg" if negative else "pos"))
    return calls


def _delegated_signs(func: FuncInfo, klass: ClassInfo,
                     signs_by_method: dict[str, set[str]]) -> set[str]:
    """Charge signs contributed by direct ``self.m(...)`` calls."""
    signs: set[str] = set()
    for node in ast.walk(func.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in klass.methods):
            signs |= signs_by_method.get(node.func.attr, set())
    return signs


class _RaiseIndex:
    """Lazily answers "does this callee's own body raise?"."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.sites_by_caller: dict[str, list] = {}
        for func, call, target, _kind in graph.call_sites:
            self.sites_by_caller.setdefault(func.fqn, []) \
                .append((call, target))
        self._raises: dict[str, bool] = {}

    def may_raise(self, fqn: str) -> bool:
        cached = self._raises.get(fqn)
        if cached is None:
            func = self.project.functions.get(fqn)
            cached = func is not None and any(
                isinstance(node, ast.Raise)
                for node in ast.walk(func.node)
            )
            self._raises[fqn] = cached
        return cached


def check_charges(project: Project, graph: CallGraph,
                  inventory: Inventory) -> list[BoundsFinding]:
    findings: list[BoundsFinding] = []
    raises = _RaiseIndex(project, graph)
    for cls_fqn in sorted(project.classes):
        klass = project.classes[cls_fqn]
        if "charge" not in klass.methods:
            continue
        module = project.modules.get(klass.module)
        if module is None:
            continue
        signs_by_method = {
            name: {sign for _call, sign in _charge_calls(method)}
            for name, method in klass.methods.items()
        }
        owned = [info for (owner, _attr), info in
                 sorted(inventory.containers.items())
                 if owner == cls_fqn]
        method_fqns = {m.fqn: name for name, m in klass.methods.items()}
        # A container is *charged* when some method mutates it and
        # charges in the same body.
        charged = [
            info for info in owned
            if any(site.func in method_fqns
                   and signs_by_method.get(method_fqns[site.func])
                   for site in info.growth + info.drains)
        ]
        for name in sorted(klass.methods):
            method = klass.methods[name]
            if name in ("charge", "__init__"):
                continue
            own = signs_by_method.get(name, set())
            available = own | _delegated_signs(method, klass,
                                               signs_by_method)
            for info in charged:
                for site in info.drains:
                    if site.func != method.fqn or "neg" in available:
                        continue
                    findings.append(BoundsFinding(
                        check=CHECK, path=module.path, line=site.line,
                        col=site.col,
                        message=f"{name} removes from charged container "
                                f"{info.describe()} without a negative "
                                f"charge(): the memory counter keeps "
                                f"counting freed bytes",
                    ))
                for site in info.growth + info.memo_sites:
                    if site.func != method.fqn or "pos" in available:
                        continue
                    findings.append(BoundsFinding(
                        check=CHECK, path=module.path, line=site.line,
                        col=site.col,
                        message=f"{name} inserts into charged container "
                                f"{info.describe()} without a positive "
                                f"charge(): the memory counter "
                                f"undercounts live bytes",
                    ))
            findings.extend(_check_gap(method, name, module.path, raises))
    return findings


def _check_gap(method: FuncInfo, name: str, path: str,
               raises: _RaiseIndex) -> list[BoundsFinding]:
    """No raise (own or called) between a discharge and its re-charge."""
    charges = sorted(_charge_calls(method),
                     key=lambda pair: (pair[0].lineno,
                                       pair[0].col_offset))
    findings: list[BoundsFinding] = []
    charge_ids = {id(call) for call, _sign in charges}
    for (first, first_sign), (second, _s) in zip(charges, charges[1:]):
        if first_sign != "neg":
            continue
        window = (first.lineno, second.lineno)
        for node in ast.walk(method.node):
            line = getattr(node, "lineno", None)
            if line is None or not (window[0] <= line <= window[1]):
                continue
            risky = None
            if isinstance(node, ast.Raise):
                risky = "raises"
            elif isinstance(node, ast.Call) and id(node) not in charge_ids:
                for call, target in raises.sites_by_caller.get(
                        method.fqn, ()):
                    if call is node and raises.may_raise(target.fqn):
                        risky = f"calls {target.name}(), which can raise"
                        break
            if risky is not None:
                findings.append(BoundsFinding(
                    check=CHECK, path=path, line=line,
                    col=getattr(node, "col_offset", 0) + 1,
                    message=f"{name} {risky} between a negative charge() "
                            f"and its balancing positive charge(): an "
                            f"exception here leaves the memory counter "
                            f"out of sync with live state",
                ))
                break
    return findings
