"""repro-bounds: whole-program resource-bounds & lifecycle analysis.

The fifth analysis layer.  repro-lint checks lines, repro-sanitize
checks scenarios, repro-flow checks the call graph, repro-hotpath
checks costs on hot paths -- repro-bounds checks that everything the
running system *accumulates* is bounded and everything it *acquires*
is released.  Five rule families, all scoped to code reachable from
pumps, timers, RPC handlers, and ``@hot_path`` roots:

* ``unbounded-buffer`` -- containers that grow on a pump/RPC path with
  no maxlen, drain, cap, or ``@bounded`` declaration;
* ``cache-without-eviction`` -- dict-backed memo/caches with no
  eviction policy;
* ``charge-balance`` -- mutations of memory-accounted containers must
  carry matching ``charge()`` calls, including on exception paths;
* ``retry-without-backoff`` -- loops re-issuing RPCs after
  ``TemporaryFailureError`` with no relief call;
* ``leak-on-error`` -- acquired slots/permits not released in a
  ``finally``.

Run as ``python -m repro.bounds [paths...]``.
"""

from .analyze import ALL_CHECKS, BoundsResult, analyze
from .findings import BoundsFinding
from .scope import derive_bounds_scope

__all__ = [
    "ALL_CHECKS",
    "BoundsFinding",
    "BoundsResult",
    "analyze",
    "derive_bounds_scope",
]
