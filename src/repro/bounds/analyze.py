"""Orchestration: inventory + scope -> the five rule families."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flow.callgraph import CallGraph, build_callgraph
from ..flow.hotset import HotSet
from ..flow.project import Project
from .charges import check_charges
from .containers import Inventory
from .findings import BoundsFinding
from .rules import check_buffers, scan_function
from .scope import derive_bounds_scope

#: Every check the CLI can select -- one name per rule family.
ALL_CHECKS = (
    "unbounded-buffer",
    "cache-without-eviction",
    "charge-balance",
    "retry-without-backoff",
    "leak-on-error",
)


@dataclass
class BoundsResult:
    findings: list[BoundsFinding] = field(default_factory=list)
    scope: HotSet = field(default_factory=HotSet)
    inventory: Inventory | None = None


def analyze(project: Project, graph: CallGraph | None = None,
            selected: frozenset[str] | None = None) -> BoundsResult:
    """Run the resource-bounds analysis over one project index."""
    if graph is None:
        graph = build_callgraph(project)
    chosen = frozenset(ALL_CHECKS) if selected is None else selected
    scope = derive_bounds_scope(project, graph)
    inventory = Inventory(project)
    inventory.mark_memo_sites()
    result = BoundsResult(scope=scope, inventory=inventory)

    if chosen & {"unbounded-buffer", "cache-without-eviction"}:
        result.findings.extend(
            check_buffers(project, inventory, scope, chosen)
        )
    if "charge-balance" in chosen:
        result.findings.extend(check_charges(project, graph, inventory))
    if chosen & {"retry-without-backoff", "leak-on-error"}:
        for fqn in sorted(scope.members):
            func = project.functions.get(fqn)
            if func is None:
                continue
            module = project.modules.get(func.module)
            if module is None:
                continue
            result.findings.extend(
                scan_function(func, module.path, project, chosen)
            )

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return result
