"""The bounds scope: code that runs forever or on behalf of peers.

A container that grows only during setup (wiring a cluster, loading a
fixture) is somebody's one-shot problem; a container that grows on a
path the scheduler or the RPC fabric re-enters indefinitely is a leak.
The bounds rules therefore scope themselves to the transitive closure
(over executing call edges, as in :mod:`repro.flow.hotset`) of three
root families:

* every pump or timer registered on the scheduler -- code that runs
  every round, forever;
* every RPC handler reachable through the fabric
  (``graph.rpc_handlers``) -- code a remote peer can drive as often as
  it likes;
* every ``@hot_path`` root -- the declared entry points of the serving
  path (the smart client's senders sit *upstream* of the fabric, so
  pump/RPC reachability alone would miss their retry loops).

The result reuses :class:`repro.flow.hotset.HotSet` so findings can
print the same provenance chains ("grows here, reachable via
pump:flusher <- KVEngine.flush").
"""

from __future__ import annotations

from ..flow.callgraph import CallGraph
from ..flow.hotset import EXECUTING_KINDS, HotSet, is_hot_root
from ..flow.project import Project


def derive_bounds_scope(project: Project, graph: CallGraph) -> HotSet:
    """Collect pump/timer/RPC/@hot_path roots and close over executing
    call edges."""
    scope = HotSet()
    for registration in graph.pumps:
        if registration.target in project.functions:
            scope.roots.setdefault(
                registration.target,
                f"{registration.kind}:{registration.name or '<dynamic>'}",
            )
    for rpc_name, handlers in graph.rpc_handlers.items():
        for handler in handlers:
            if handler in project.functions:
                scope.roots.setdefault(handler, f"rpc:{rpc_name}")
    for fqn, func in project.functions.items():
        if is_hot_root(func):
            scope.roots.setdefault(fqn, "@hot_path")

    frontier = sorted(scope.roots)
    for fqn in frontier:
        scope.members.add(fqn)
        scope.pulled_in_by[fqn] = None
    while frontier:
        caller = frontier.pop()
        for edge in graph.out_edges(caller):
            if edge.kind not in EXECUTING_KINDS:
                continue
            callee = edge.callee
            if callee in scope.members or callee not in project.functions:
                continue
            scope.members.add(callee)
            scope.pulled_in_by[callee] = caller
            frontier.append(callee)
    return scope
