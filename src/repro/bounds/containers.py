"""Container inventory: who grows what, and what bounds it.

The **unbounded-buffer** and **cache-without-eviction** rules both need
the same whole-program picture: every container-typed class attribute,
every site that grows it, and every mechanism that could bound it --
a construction-time ``maxlen``, a drain site (``pop``/``del``/
``clear``/a rebind that trims the container from itself, anywhere in
the project: queues are routinely filled by one class and drained by a
consumer pump in another), a ``len()`` cap check, or an explicit
``@bounded`` / ``__bounds__`` declaration.

Receiver matching is deliberately shallow, like the call-graph
builder's type inference: a site on ``self.X`` binds to the enclosing
class's container ``X``; a site on any other receiver (``vb.
dirty_queue.append`` from the engine) matches *every* container with
that attribute name.  Name collisions therefore err toward "bounded"
(any same-named drain counts), never toward a false positive.

Heuristics, stated so suppressions can cite them:

* a dict store whose value expression *reads the same container*
  (``x[k] = x.get(k, 0) + 1``) is an update, not growth -- the
  counter-update idiom implies a bounded key space;
* augmented stores (``x[k] += 1``) are updates for the same reason;
* implicit containers (no recorded construction) are created only for
  the unambiguous growth methods (``append``/``appendleft``/``add``)
  and dict stores on ``self`` -- ``update``/``extend`` on an unknown
  attribute could be config plumbing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..flow.project import FuncInfo, Project
from .declarations import class_bounds, declared_bound, module_bounds

#: Methods that add elements.  The frozenset split matches the implicit-
#: container heuristic above.
UNAMBIGUOUS_GROWTH = frozenset({"append", "appendleft", "add"})
GROWTH_METHODS = UNAMBIGUOUS_GROWTH | frozenset(
    {"extend", "insert", "setdefault", "update"})
DRAIN_METHODS = frozenset(
    {"pop", "popleft", "popitem", "remove", "discard", "clear"})
#: Constructor names that announce a container attribute.
CONTAINER_CTORS = {
    "dict": "dict", "defaultdict": "dict", "OrderedDict": "dict",
    "Counter": "dict", "list": "list", "set": "set", "deque": "deque",
}


@dataclass(frozen=True)
class Site:
    """One growth/drain/cap site: where, in which function, how."""

    func: str           #: enclosing function fqn
    line: int
    col: int
    how: str            #: "append", "store", "del", "rebind-trim", ...


@dataclass
class ContainerInfo:
    owner: str          #: owning class fqn ("" for implicit attrs)
    attr: str
    kind: str           #: "list" | "dict" | "set" | "deque" | "unknown"
    module: str
    line: int
    has_maxlen: bool = False
    declared: tuple[str, str] | None = None    #: (kind, reason)
    growth: list[Site] = field(default_factory=list)
    drains: list[Site] = field(default_factory=list)
    caps: list[Site] = field(default_factory=list)
    #: growth sites that belong to a memoize pattern (checked-then-
    #: stored in the same function): cache-without-eviction territory.
    memo_sites: list[Site] = field(default_factory=list)

    @property
    def bounded(self) -> bool:
        return bool(self.has_maxlen or self.drains or self.caps
                    or self.declared)

    def describe(self) -> str:
        owner = self.owner.rsplit(".", 1)[-1] if self.owner else "<implicit>"
        return f"{owner}.{self.attr}"


def _ctor_kind(value: ast.expr) -> tuple[str, bool] | None:
    """(kind, has_maxlen) when ``value`` constructs a container."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list", False
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict", False
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set", False
    if isinstance(value, ast.Call):
        name = value.func.attr if isinstance(value.func, ast.Attribute) \
            else (value.func.id if isinstance(value.func, ast.Name) else None)
        kind = CONTAINER_CTORS.get(name or "")
        if kind is None:
            return None
        has_maxlen = kind == "deque" and any(
            kw.arg == "maxlen"
            and not (isinstance(kw.value, ast.Constant)
                     and kw.value.value is None)
            for kw in value.keywords
        )
        return kind, has_maxlen
    return None


def _annotation_kind(ann: ast.expr) -> str | None:
    head = ann.value if isinstance(ann, ast.Subscript) else ann
    name = head.attr if isinstance(head, ast.Attribute) else (
        head.id if isinstance(head, ast.Name) else None)
    return CONTAINER_CTORS.get((name or "").split("[")[0])


def _attr_of(node: ast.expr) -> tuple[str, bool] | None:
    """(attribute name, receiver is self) for an Attribute chain tail."""
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    return node.attr, isinstance(base, ast.Name) and base.id == "self"


def _reads_attr(expr: ast.expr, attr: str) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == attr
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(expr)
    )


class Inventory:
    """The project-wide container index."""

    def __init__(self, project: Project):
        self.project = project
        #: (owner fqn, attr) -> ContainerInfo
        self.containers: dict[tuple[str, str], ContainerInfo] = {}
        #: attr name -> containers carrying it (for non-self receivers)
        self.by_attr: dict[str, list[ContainerInfo]] = {}
        self._collect_definitions()
        self._scan_sites()
        self._apply_declarations()

    # -- definitions ---------------------------------------------------------------

    def _define(self, owner: str, attr: str, kind: str, module: str,
                line: int, has_maxlen: bool) -> None:
        key = (owner, attr)
        existing = self.containers.get(key)
        if existing is not None:
            if kind != "unknown" and existing.kind == "unknown":
                existing.kind = kind
            existing.has_maxlen = existing.has_maxlen or has_maxlen
            return
        info = ContainerInfo(owner=owner, attr=attr, kind=kind,
                             module=module, line=line,
                             has_maxlen=has_maxlen)
        self.containers[key] = info
        self.by_attr.setdefault(attr, []).append(info)

    def _collect_definitions(self) -> None:
        for klass in self.project.classes.values():
            for attr, ann in klass.annotations.items():
                kind = _annotation_kind(ann)
                if kind is not None:
                    self._define(klass.fqn, attr, kind, klass.module,
                                 klass.line, False)
            for stmt in klass.node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name) \
                        and stmt.value is not None:
                    ctor = _ctor_kind(stmt.value)
                    if ctor is not None:
                        self._define(klass.fqn, stmt.target.id, ctor[0],
                                     klass.module, stmt.lineno, ctor[1])
            for method in klass.methods.values():
                for node in ast.walk(method.node):
                    if not (isinstance(node, (ast.Assign, ast.AnnAssign))):
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    value = node.value
                    if value is None or len(targets) != 1:
                        continue
                    target = targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    ctor = _ctor_kind(value)
                    if ctor is not None:
                        self._define(klass.fqn, target.attr, ctor[0],
                                     klass.module, node.lineno, ctor[1])
                    elif isinstance(node, ast.AnnAssign):
                        kind = _annotation_kind(node.annotation)
                        if kind is not None:
                            self._define(klass.fqn, target.attr, kind,
                                         klass.module, node.lineno, False)

    # -- site scanning -------------------------------------------------------------

    def _matches(self, attr: str, is_self: bool,
                 func: FuncInfo) -> list[ContainerInfo]:
        if is_self and func.cls is not None:
            owned = self.containers.get((func.cls, attr))
            if owned is not None:
                return [owned]
            # Inherited containers: fall through to name matching so a
            # subclass method's site binds the base class's attribute.
        return self.by_attr.get(attr, [])

    def _record(self, bucket: str, attr: str, is_self: bool,
                func: FuncInfo, node: ast.AST, how: str,
                implicit_ok: bool = False) -> None:
        matches = self._matches(attr, is_self, func)
        if not matches and implicit_ok and is_self and func.cls is not None:
            self._define(func.cls, attr, "unknown", func.module,
                         getattr(node, "lineno", func.line), False)
            matches = [self.containers[(func.cls, attr)]]
        site = Site(func=func.fqn, line=getattr(node, "lineno", func.line),
                    col=getattr(node, "col_offset", 0) + 1, how=how)
        for info in matches:
            getattr(info, bucket).append(site)

    def _scan_sites(self) -> None:
        for func in list(self.project.functions.values()):
            node = func.node
            body = getattr(node, "body", None)
            if body is None:
                continue
            for stmt in ast.walk(node):
                self._scan_stmt(stmt, func)

    def _scan_stmt(self, stmt: ast.AST, func: FuncInfo) -> None:
        if isinstance(stmt, ast.Call):
            self._scan_call(stmt, func)
        elif isinstance(stmt, ast.Assign):
            self._scan_assign(stmt, func)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    ref = _attr_of(target.value)
                    if ref is not None:
                        self._record("drains", ref[0], ref[1], func,
                                     stmt, "del")
        elif isinstance(stmt, ast.Compare):
            self._scan_compare(stmt, func)

    def _scan_call(self, call: ast.Call, func: FuncInfo) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        ref = _attr_of(call.func.value)
        if ref is None:
            return
        attr, is_self = ref
        if method in DRAIN_METHODS:
            self._record("drains", attr, is_self, func, call, method)
        elif method in GROWTH_METHODS:
            if method in UNAMBIGUOUS_GROWTH \
                    and (len(call.args) != 1 or call.keywords):
                # list.append/set.add take exactly one positional arg; a
                # different arity means a domain method that happens to
                # share the name (log.append(record_type, body)).
                return
            self._record("growth", attr, is_self, func, call, method,
                         implicit_ok=method in UNAMBIGUOUS_GROWTH)

    def _scan_assign(self, stmt: ast.Assign, func: FuncInfo) -> None:
        targets: list[ast.expr] = []
        for target in stmt.targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
            else:
                targets.append(target)
        for target in targets:
            if isinstance(target, ast.Subscript):
                ref = _attr_of(target.value)
                if ref is None:
                    continue
                attr, is_self = ref
                if _reads_attr(stmt.value, attr):
                    continue    # x[k] = x.get(k, ...) update idiom
                self._record("growth", attr, is_self, func, stmt, "store",
                             implicit_ok=True)
            elif isinstance(target, ast.Attribute):
                ref = _attr_of(target)
                if ref is None:
                    continue
                attr, is_self = ref
                if _reads_attr(stmt.value, attr):
                    # vb.queue = vb.queue[budget:] -- trimming rebind.
                    self._record("drains", attr, is_self, func, stmt,
                                 "rebind-trim")
                elif func.name != "__init__" \
                        and _ctor_kind(stmt.value) is not None:
                    # Re-binding to a fresh container resets it.
                    self._record("drains", attr, is_self, func, stmt,
                                 "reset")

    def _scan_compare(self, stmt: ast.Compare, func: FuncInfo) -> None:
        for operand in [stmt.left, *stmt.comparators]:
            if (isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "len" and operand.args):
                ref = _attr_of(operand.args[0])
                if ref is not None:
                    self._record("caps", ref[0], ref[1], func, stmt,
                                 "len-cap")

    # -- declarations --------------------------------------------------------------

    def _apply_declarations(self) -> None:
        for info in self.containers.values():
            if info.declared is not None:
                continue
            klass = self.project.classes.get(info.owner)
            if klass is not None and info.attr in class_bounds(klass):
                info.declared = ("declared", "__bounds__ (class)")
                continue
            module = self.project.modules.get(info.module)
            if module is not None:
                names = module_bounds(module)
                short = info.owner.rsplit(".", 1)[-1]
                if info.attr in names or f"{short}.{info.attr}" in names:
                    info.declared = ("declared", "__bounds__ (module)")

    # -- memoize detection ---------------------------------------------------------

    def mark_memo_sites(self) -> None:
        """A growth store into a dict the same function first *checked*
        (``x.get(k)`` / ``k in x``) is a cache fill, not queue growth:
        route it to cache-without-eviction instead."""
        checked: dict[tuple[str, str], set[str]] = {}
        for func in self.project.functions.values():
            body = getattr(func.node, "body", None)
            if body is None:
                continue
            for node in ast.walk(func.node):
                attr = None
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "get"):
                    ref = _attr_of(node.func.value)
                    attr = ref[0] if ref else None
                elif isinstance(node, ast.Compare) and any(
                        isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
                    for comparator in node.comparators:
                        ref = _attr_of(comparator)
                        if ref is not None:
                            attr = ref[0]
                if attr is not None:
                    checked.setdefault((func.fqn, attr), set()).add(attr)
        for info in self.containers.values():
            if info.kind not in ("dict", "unknown"):
                continue
            memo, plain = [], []
            for site in info.growth:
                if site.how == "store" \
                        and (site.func, info.attr) in checked:
                    memo.append(site)
                else:
                    plain.append(site)
            info.memo_sites = memo
            info.growth = plain

    # -- queries -------------------------------------------------------------------

    def growth_exempt(self, func: FuncInfo) -> tuple[str, str] | None:
        return declared_bound(func)
