"""The repro-bounds rule families over one scoped function set.

Container rules (**unbounded-buffer**, **cache-without-eviction**) run
off the :class:`~repro.bounds.containers.Inventory`; the lifecycle
rules (**retry-without-backoff**, **leak-on-error**) are per-function
AST scans in the style of :mod:`repro.hotpath.rules`.  Everything is
scoped to the bounds scope set (:mod:`repro.bounds.scope`): growth in
setup code is a one-shot, growth on a pump/RPC path is a leak.
"""

from __future__ import annotations

import ast

from ..flow.hotset import HotSet
from ..flow.project import ClassInfo, FuncInfo, Project
from .containers import Inventory
from .declarations import declared_bound
from .findings import BoundsFinding

#: The retryable-failure class the backoff rule keys on, plus anything
#: that resolves to a subclass of it.
TMPFAIL = "TemporaryFailureError"

#: Calls that relieve pressure between retries.  ``run_until_idle`` is
#: deliberately NOT here: quiescing the scheduler per retry was the
#: PR 6 spin bug this rule generalizes.
RELIEF_CALLS = frozenset({"backoff", "delay", "sleep", "sleep_until"})

#: RPC send surfaces a retry loop re-issues work through.
RPC_ATTRS = frozenset({"call", "call_fanout"})
RPC_RECEIVERS = frozenset({"network", "fabric"})
RPC_WRAPPERS = frozenset(
    {"_call", "_multi_call", "_routed_call", "_routed_multi_call"})

#: Primitives whose return value is a slot/permit that must be released.
ACQUIRE_ATTRS = frozenset(
    {"acquire", "admit_query", "fabric_filter", "try_enter"})
RELEASE_ATTRS = frozenset({"release", "exit", "close"})


def _last(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _finding(check: str, path: str, node: ast.AST, message: str,
             func: FuncInfo) -> BoundsFinding:
    return BoundsFinding(
        check=check, path=path,
        line=getattr(node, "lineno", func.line),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


# -- container rules ---------------------------------------------------------------


def check_buffers(project: Project, inventory: Inventory, scope: HotSet,
                  selected: frozenset[str]) -> list[BoundsFinding]:
    """unbounded-buffer and cache-without-eviction over the inventory.

    One finding per container per check, anchored at its first in-scope
    growth site: the fix is to bound the *container*, not one call."""
    findings: list[BoundsFinding] = []
    for key in sorted(inventory.containers):
        info = inventory.containers[key]
        if info.bounded:
            continue
        for check, sites in (("unbounded-buffer", info.growth),
                             ("cache-without-eviction", info.memo_sites)):
            if check not in selected:
                continue
            live = []
            for site in sites:
                func = project.functions.get(site.func)
                if func is None or site.func not in scope.members:
                    continue
                if declared_bound(func) is not None:
                    continue
                live.append((site, func))
            if not live:
                continue
            live.sort(key=lambda pair: (pair[0].line, pair[0].col))
            site, func = live[0]
            module = project.modules.get(func.module)
            if module is None:
                continue
            if check == "unbounded-buffer":
                message = (
                    f"{info.describe()} grows here ({site.how}; "
                    f"{scope.why(site.func)}) but nothing bounds it: no "
                    f"maxlen, no drain/eviction site, no len() cap, no "
                    f"@bounded declaration"
                )
            else:
                message = (
                    f"{info.describe()} is filled as a cache here "
                    f"({scope.why(site.func)}) but never evicts: add "
                    f"LRU/epoch invalidation or an @bounded justification"
                )
            findings.append(_finding(check, module.path, _site_node(site),
                                     message, func))
    return findings


class _SiteNode:
    """Minimal lineno/col carrier so findings can anchor on a Site."""

    def __init__(self, line: int, col: int):
        self.lineno = line
        self.col_offset = col - 1


def _site_node(site) -> _SiteNode:
    return _SiteNode(site.line, site.col)


# -- retry-without-backoff ---------------------------------------------------------


def _is_tmpfail_class(name: str, func: FuncInfo, project: Project,
                      _depth: int = 0) -> bool:
    if name == TMPFAIL:
        return True
    if _depth > 4:
        return False
    resolved = project.resolve_in_module(func.module, name)
    if isinstance(resolved, ClassInfo):
        return any(_is_tmpfail_class(base.rsplit(".", 1)[-1],
                                     func, project, _depth + 1)
                   for base in resolved.bases)
    return False


def _catches_tmpfail(handler: ast.ExceptHandler, func: FuncInfo,
                     project: Project) -> bool:
    node = handler.type
    if node is None:
        return True     # bare except retries everything, TMPFAIL included
    names: list[str] = []
    if isinstance(node, ast.Tuple):
        names = [n for n in map(_last, node.elts) if n]
    else:
        last = _last(node)
        if last:
            names = [last]
    expanded: list[str] = []
    module = project.modules.get(func.module)
    klass = project.classes.get(func.cls) if func.cls else None
    for name in names:
        alias = (klass.exc_aliases.get(name) if klass else None) \
            or (module.exc_aliases.get(name) if module else None)
        expanded.extend(alias if alias else (name,))
    return any(_is_tmpfail_class(name, func, project) for name in expanded)


def _handler_retries(handler: ast.ExceptHandler) -> bool:
    """Does control return to the loop after this handler?  A handler
    that re-raises or leaves the loop is not a retry."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Return, ast.Break)):
            return False
    return True


def _loop_reissues_rpc(loop: ast.AST) -> bool:
    for node in ast.walk(loop):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr in RPC_WRAPPERS:
            return True
        if attr in RPC_ATTRS and _last(node.func.value) in RPC_RECEIVERS:
            return True
    return False


def _loop_has_relief(loop: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call) and _last(node.func) in RELIEF_CALLS
        for node in ast.walk(loop)
    )


def check_retry(func: FuncInfo, path: str,
                project: Project) -> list[BoundsFinding]:
    """Flag TMPFAIL retry loops with no relief on the retry path.

    Loops are visited outermost-first: a relief call anywhere in a loop
    covers everything nested inside it (a per-node fan-out loop inside a
    backed-off retry round is fine), and a loop already flagged is not
    re-flagged through its children."""
    findings: list[BoundsFinding] = []

    def flag(loop: ast.AST) -> None:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _catches_tmpfail(handler, func, project) \
                        and _handler_retries(handler):
                    findings.append(_finding(
                        "retry-without-backoff", path, handler,
                        f"{func.name} retries the RPC after "
                        f"{TMPFAIL} with no backoff/delay call in the "
                        f"loop: under sustained overload this spins at "
                        f"full speed against a node that asked for "
                        f"relief", func,
                    ))

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.While)):
                if _loop_has_relief(child):
                    continue    # relief covers this loop and everything nested
                if _loop_reissues_rpc(child):
                    flag(child)
                    continue    # one finding per retry structure
            visit(child)

    visit(func.node)
    return findings


# -- leak-on-error -----------------------------------------------------------------


def _acquire_call(expr: ast.expr) -> ast.Call | None:
    """The acquire call in ``expr``, looking through the
    ``x.acquire(...) if x is not None else None`` conditional idiom."""
    if isinstance(expr, ast.IfExp):
        return _acquire_call(expr.body) or _acquire_call(expr.orelse)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in ACQUIRE_ATTRS:
        return expr
    return None


def _in_finally(target: ast.AST, func_node: ast.AST) -> bool:
    """Is ``target`` lexically inside some ``finally`` block?"""
    def visit(node: ast.AST, inside: bool) -> bool:
        if node is target:
            return inside
        if isinstance(node, ast.Try):
            for child in node.body + node.orelse:
                if visit(child, inside):
                    return True
            for handler in node.handlers:
                if visit(handler, inside):
                    return True
            for child in node.finalbody:
                if visit(child, True):
                    return True
            return False
        return any(visit(child, inside)
                   for child in ast.iter_child_nodes(node))
    return visit(func_node, False)


def check_leaks(func: FuncInfo, path: str) -> list[BoundsFinding]:
    findings: list[BoundsFinding] = []
    node = func.node
    body = getattr(node, "body", None)
    if not isinstance(body, list):
        return findings
    for stmt in ast.walk(node):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        acquire = _acquire_call(stmt.value)
        if acquire is None:
            continue
        name = stmt.targets[0].id
        primitive = acquire.func.attr
        handed_off = False
        releases: list[ast.AST] = []
        for use in ast.walk(node):
            if isinstance(use, ast.Return) and use.value is not None \
                    and any(isinstance(n, ast.Name) and n.id == name
                            for n in ast.walk(use.value)):
                handed_off = True
            elif isinstance(use, ast.Call):
                if isinstance(use.func, ast.Name) and use.func.id == name:
                    releases.append(use)
                elif isinstance(use.func, ast.Attribute) \
                        and use.func.attr in RELEASE_ATTRS \
                        and isinstance(use.func.value, ast.Name) \
                        and use.func.value.id == name:
                    releases.append(use)
                elif use is not acquire and any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in use.args):
                    handed_off = True   # passed along: callee owns it now
        if handed_off:
            continue
        if not releases:
            findings.append(_finding(
                "leak-on-error", path, stmt,
                f"{func.name} acquires via {primitive}() but never "
                f"releases {name!r}: the slot leaks on every call", func,
            ))
        elif not any(_in_finally(release, node) for release in releases):
            findings.append(_finding(
                "leak-on-error", path, stmt,
                f"{func.name} releases {name!r} only on the success "
                f"path: an exception between {primitive}() and the "
                f"release leaks the slot -- release in a finally block",
                func,
            ))
    return findings


def scan_function(func: FuncInfo, path: str, project: Project,
                  selected: frozenset[str]) -> list[BoundsFinding]:
    """The per-function lifecycle rules for one scope member."""
    findings: list[BoundsFinding] = []
    if "retry-without-backoff" in selected:
        findings.extend(check_retry(func, path, project))
    if "leak-on-error" in selected:
        findings.extend(check_leaks(func, path))
    return findings
