"""N1QL recursive-descent parser.

Covers the language surface of section 3.2: SELECT (with USE KEYS, JOIN
... ON KEYS, NEST, UNNEST, LET, GROUP BY/HAVING, ORDER/LIMIT/OFFSET,
DISTINCT, RAW), the DML statements (INSERT/UPSERT/UPDATE/DELETE), index
DDL (CREATE [PRIMARY] INDEX ... USING VIEW|GSI WITH {...}, DROP INDEX,
BUILD INDEX), and EXPLAIN.

The paper's join restriction (section 3.2.4) is enforced syntactically:
``JOIN ... ON`` must be ``ON KEYS`` -- a general ON predicate is a parse
error with a pointed message, exactly the "not supported linguistically"
stance the paper takes.
"""

from __future__ import annotations


from ..common.errors import N1qlSyntaxError
from .lexer import Token, tokenize
from .syntax import (
    ArrayComprehension,
    ArrayLiteral,
    Between,
    Binary,
    BuildIndexStatement,
    CaseExpr,
    CollectionPredicate,
    CreateIndexStatement,
    CreatePrimaryIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ElementAccess,
    ExplainStatement,
    Expr,
    FieldAccess,
    FunctionCall,
    Identifier,
    InList,
    InsertStatement,
    IsPredicate,
    JoinClause,
    KeyspaceTerm,
    Literal,
    MissingLiteral,
    NestClause,
    OrderTerm,
    Parameter,
    Projection,
    SelectStatement,
    Unary,
    UnnestClause,
    UpdateSet,
    UpdateStatement,
)


def parse(text: str):
    """Parse one statement; raises :class:`N1qlSyntaxError` on failure."""
    return Parser(text).parse_statement()


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self._positional = 0

    # -- token plumbing ----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def error(self, message: str) -> N1qlSyntaxError:
        token = self.current
        return N1qlSyntaxError(message, token.line, token.column)

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            raise self.error(f"expected {name}, found {self.current.value!r}")

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}, found {self.current.value!r}")

    def expect_ident(self) -> str:
        token = self.current
        if token.kind == "ident":
            self.advance()
            return str(token.value)
        # Unreserved-ish words used as identifiers: allow keywords that
        # commonly appear as field names.
        if token.kind == "keyword" and token.value in ("KEY", "VALUE", "INDEX"):
            self.advance()
            return str(token.value).lower()
        raise self.error(f"expected identifier, found {token.value!r}")

    # -- statements -----------------------------------------------------------------

    def parse_statement(self):
        statement = self._statement()
        self.accept_op(";")
        if self.current.kind != "eof":
            raise self.error(
                f"unexpected trailing input: {self.current.value!r}"
            )
        return statement

    def _statement(self):
        if self.accept_keyword("EXPLAIN"):
            return ExplainStatement(self._statement())
        if self.current.is_keyword("SELECT"):
            return self.parse_select()
        if self.current.is_keyword("INSERT"):
            return self.parse_insert(upsert=False)
        if self.current.is_keyword("UPSERT"):
            return self.parse_insert(upsert=True)
        if self.current.is_keyword("UPDATE"):
            return self.parse_update()
        if self.current.is_keyword("DELETE"):
            return self.parse_delete()
        if self.current.is_keyword("CREATE"):
            return self.parse_create()
        if self.current.is_keyword("DROP"):
            return self.parse_drop_index()
        if self.current.is_keyword("BUILD"):
            return self.parse_build_index()
        if self.accept_keyword("PREPARE"):
            from .syntax import PrepareStatement
            name = None
            if self.current.kind == "ident" and self.peek().is_keyword("FROM"):
                name = self.expect_ident()
                self.expect_keyword("FROM")
            return PrepareStatement(name, self._statement())
        if self.accept_keyword("EXECUTE"):
            from .syntax import ExecuteStatement
            return ExecuteStatement(self.expect_ident())
        raise self.error(f"expected a statement, found {self.current.value!r}")

    # -- SELECT -----------------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        raw = self.accept_keyword("RAW")

        projections = [self.parse_projection(raw)]
        while self.accept_op(","):
            if raw:
                raise self.error("SELECT RAW takes a single expression")
            projections.append(self.parse_projection(raw))

        statement = SelectStatement(
            projections=projections, distinct=distinct, raw=raw
        )

        if self.accept_keyword("FROM"):
            statement.from_term = self.parse_keyspace_term()
            while True:
                clause = self.parse_join_like()
                if clause is None:
                    break
                statement.joins.append(clause)

        if self.accept_keyword("LET"):
            while True:
                name = self.expect_ident()
                self.expect_op("=")
                statement.let_bindings.append((name, self.parse_expr()))
                if not self.accept_op(","):
                    break

        if self.accept_keyword("WHERE"):
            statement.where = self.parse_expr()

        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            statement.group_by.append(self.parse_expr())
            while self.accept_op(","):
                statement.group_by.append(self.parse_expr())
            if self.accept_keyword("HAVING"):
                statement.having = self.parse_expr()

        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                term = OrderTerm(self.parse_expr())
                if self.accept_keyword("DESC"):
                    term.descending = True
                else:
                    self.accept_keyword("ASC")
                statement.order_by.append(term)
                if not self.accept_op(","):
                    break

        if self.accept_keyword("LIMIT"):
            statement.limit = self.parse_expr()
        if self.accept_keyword("OFFSET"):
            statement.offset = self.parse_expr()
        return statement

    def parse_projection(self, raw: bool) -> Projection:
        if self.accept_op("*"):
            return Projection(expr=None, alias=None)
        expr = self.parse_expr()
        # alias.* projection parses as FieldAccess(base, "*")? The lexer
        # treats "*" as an op, so catch "ident.*" here.
        if (
            isinstance(expr, Identifier)
            and self.current.is_op(".")
            and self.peek().is_op("*")
        ):
            self.advance()
            self.advance()
            return Projection(expr=None, alias=None, star_of=expr.name)
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident" and not raw:
            alias = self.expect_ident()
        return Projection(expr=expr, alias=alias)

    def parse_keyspace_term(self) -> KeyspaceTerm:
        keyspace = self.expect_ident()
        if keyspace == "system" and self.accept_op(":"):
            keyspace = f"system:{self.expect_ident()}"
        alias = keyspace.split(":")[-1]
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.expect_ident()
        use_keys = None
        if self.accept_keyword("USE"):
            self.expect_keyword("KEYS")
            use_keys = self.parse_expr()
        return KeyspaceTerm(keyspace=keyspace, alias=alias, use_keys=use_keys)

    def parse_join_like(self):
        outer = False
        checkpoint = self.position
        if self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            outer = True
        elif self.accept_keyword("INNER"):
            pass
        if self.accept_keyword("JOIN"):
            keyspace = self.expect_ident()
            alias = keyspace
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            elif self.current.kind == "ident":
                alias = self.expect_ident()
            self.expect_keyword("ON")
            if not self.accept_keyword("KEYS"):
                raise self.error(
                    "N1QL joins require ON KEYS -- general join predicates "
                    "between secondary attributes are not supported "
                    "(section 3.2.4 of the paper)"
                )
            return JoinClause(keyspace, alias, self.parse_expr(), outer)
        if self.accept_keyword("NEST"):
            keyspace = self.expect_ident()
            alias = keyspace
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            elif self.current.kind == "ident":
                alias = self.expect_ident()
            self.expect_keyword("ON")
            if not self.accept_keyword("KEYS"):
                raise self.error("NEST requires ON KEYS")
            return NestClause(keyspace, alias, self.parse_expr(), outer)
        if self.accept_keyword("UNNEST"):
            expr = self.parse_expr()
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            elif self.current.kind == "ident":
                alias = self.expect_ident()
            if alias is None:
                if isinstance(expr, FieldAccess):
                    alias = expr.field
                elif isinstance(expr, Identifier):
                    alias = expr.name
                else:
                    raise self.error("UNNEST of an expression needs an alias")
            return UnnestClause(expr, alias, outer)
        self.position = checkpoint
        return None

    # -- DML ---------------------------------------------------------------------------

    def parse_insert(self, upsert: bool) -> InsertStatement:
        self.advance()  # INSERT or UPSERT
        self.expect_keyword("INTO")
        keyspace = self.expect_ident()
        self.expect_op("(")
        self.expect_keyword("KEY")
        self.accept_op(",")
        self.expect_keyword("VALUE")
        self.expect_op(")")
        self.expect_keyword("VALUES")
        values = [self.parse_key_value_pair()]
        while self.accept_op(","):
            self.expect_keyword("VALUES") if self.current.is_keyword("VALUES") else None
            values.append(self.parse_key_value_pair())
        returning = self.parse_returning()
        return InsertStatement(keyspace=keyspace, values=values,
                               upsert=upsert, returning=returning)

    def parse_key_value_pair(self) -> tuple[Expr, Expr]:
        self.expect_op("(")
        key = self.parse_expr()
        self.expect_op(",")
        value = self.parse_expr()
        self.expect_op(")")
        return key, value

    def parse_returning(self) -> list[Projection]:
        if not self.accept_keyword("RETURNING"):
            return []
        projections = [self.parse_projection(raw=False)]
        while self.accept_op(","):
            projections.append(self.parse_projection(raw=False))
        return projections

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        keyspace = self.expect_ident()
        alias = keyspace
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.expect_ident()
        use_keys = None
        if self.accept_keyword("USE"):
            self.expect_keyword("KEYS")
            use_keys = self.parse_expr()
        sets: list[UpdateSet] = []
        unsets: list[Expr] = []
        if self.accept_keyword("SET"):
            while True:
                path = self.parse_path_expr()
                self.expect_op("=")
                sets.append(UpdateSet(path, self.parse_expr()))
                if not self.accept_op(","):
                    break
        if self.accept_keyword("UNSET"):
            while True:
                unsets.append(self.parse_path_expr())
                if not self.accept_op(","):
                    break
        if not sets and not unsets:
            raise self.error("UPDATE requires SET and/or UNSET")
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        limit = self.parse_expr() if self.accept_keyword("LIMIT") else None
        returning = self.parse_returning()
        return UpdateStatement(keyspace, alias, use_keys, sets, unsets,
                               where, limit, returning)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        keyspace = self.expect_ident()
        alias = keyspace
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.expect_ident()
        use_keys = None
        if self.accept_keyword("USE"):
            self.expect_keyword("KEYS")
            use_keys = self.parse_expr()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        limit = self.parse_expr() if self.accept_keyword("LIMIT") else None
        returning = self.parse_returning()
        return DeleteStatement(keyspace, alias, use_keys, where, limit,
                               returning)

    def parse_path_expr(self) -> Expr:
        """A dotted path (possibly with [n] steps) used by SET/UNSET."""
        expr: Expr = Identifier(self.expect_ident())
        while True:
            if self.accept_op("."):
                expr = FieldAccess(expr, self.expect_ident())
            elif self.accept_op("["):
                index = self.parse_expr()
                self.expect_op("]")
                expr = ElementAccess(expr, index)
            else:
                return expr

    # -- DDL ----------------------------------------------------------------------------

    def parse_create(self):
        self.expect_keyword("CREATE")
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("INDEX")
            name = None
            if self.current.kind == "ident":
                name = self.expect_ident()
            self.expect_keyword("ON")
            keyspace = self.expect_ident()
            using = self.parse_using()
            options = self.parse_with_options()
            return CreatePrimaryIndexStatement(name, keyspace, using, options)
        self.expect_keyword("INDEX")
        name = self.expect_ident()
        self.expect_keyword("ON")
        keyspace = self.expect_ident()
        self.expect_op("(")
        keys = []
        sources = []
        while True:
            start = self.position
            keys.append(self.parse_expr())
            sources.append(self._source_between(start, self.position))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        where = None
        where_source = None
        if self.accept_keyword("WHERE"):
            start = self.position
            where = self.parse_expr()
            where_source = self._source_between(start, self.position)
        using = self.parse_using()
        options = self.parse_with_options()
        return CreateIndexStatement(
            name=name, keyspace=keyspace, keys=keys, where=where,
            using=using, with_options=options, key_sources=sources,
            where_source=where_source,
        )

    def parse_using(self) -> str:
        if self.accept_keyword("USING"):
            token = self.current
            if token.kind == "ident" and token.value.upper() in ("GSI", "VIEW"):
                self.advance()
                return str(token.value).lower()
            raise self.error("USING must name GSI or VIEW")
        return "gsi"

    def parse_with_options(self) -> dict:
        if not self.accept_keyword("WITH"):
            return {}
        expr = self.parse_expr()
        options = _literal_object(expr)
        if options is None:
            raise self.error("WITH requires a literal JSON object")
        return options

    def parse_drop_index(self) -> DropIndexStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("INDEX")
        first = self.expect_ident()
        if self.accept_op("."):
            return DropIndexStatement(first, self.expect_ident())
        return DropIndexStatement("", first)

    def parse_build_index(self) -> BuildIndexStatement:
        self.expect_keyword("BUILD")
        self.expect_keyword("INDEX")
        self.expect_keyword("ON")
        keyspace = self.expect_ident()
        self.expect_op("(")
        names = [self.expect_ident()]
        while self.accept_op(","):
            names.append(self.expect_ident())
        self.expect_op(")")
        return BuildIndexStatement(keyspace, names)

    def _source_between(self, start: int, end: int) -> str:
        return " ".join(
            str(token.value) for token in self.tokens[start:end]
        )

    # -- expressions ---------------------------------------------------------------------
    # Precedence (loosest to tightest): OR, AND, NOT, comparison/IS/IN/
    # BETWEEN/LIKE, ||, + -, * / %, unary -, postfix (.field, [index]).

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = Binary("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = Binary("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Unary("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_concat()
        while True:
            if self.current.is_op("=", "==", "!=", "<>", "<", "<=", ">", ">="):
                op = str(self.advance().value)
                if op == "==":
                    op = "="
                if op == "<>":
                    op = "!="
                left = Binary(op, left, self.parse_concat())
                continue
            negated = False
            checkpoint = self.position
            if self.accept_keyword("NOT"):
                negated = True
            if self.accept_keyword("LIKE"):
                left = Binary("NOT LIKE" if negated else "LIKE",
                              left, self.parse_concat())
                continue
            if self.accept_keyword("BETWEEN"):
                low = self.parse_concat()
                self.expect_keyword("AND")
                high = self.parse_concat()
                left = Between(left, low, high, negated)
                continue
            if self.accept_keyword("IN"):
                left = InList(left, self.parse_concat(), negated)
                continue
            if negated:
                self.position = checkpoint
            if self.accept_keyword("IS"):
                is_negated = self.accept_keyword("NOT")
                if self.accept_keyword("NULL"):
                    what = "NULL"
                elif self.accept_keyword("MISSING"):
                    what = "MISSING"
                elif self.current.kind == "ident" and str(
                    self.current.value
                ).upper() == "VALUED":
                    self.advance()
                    what = "VALUED"
                else:
                    raise self.error("IS must be followed by NULL, MISSING, "
                                     "or VALUED")
                left = IsPredicate(left, what, is_negated)
                continue
            return left

    def parse_concat(self) -> Expr:
        left = self.parse_additive()
        while self.accept_op("||"):
            left = Binary("||", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.is_op("+", "-"):
            op = str(self.advance().value)
            left = Binary(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.current.is_op("*", "/", "%"):
            op = str(self.advance().value)
            left = Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.accept_op("-"):
            return Unary("-", self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.current.is_op(".") and not self.peek().is_op("*"):
                self.advance()
                expr = FieldAccess(expr, self.expect_ident())
            elif self.accept_op("["):
                index = self.parse_expr()
                self.expect_op("]")
                expr = ElementAccess(expr, index)
            else:
                return expr

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return Literal(token.value)
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "param":
            self.advance()
            name = str(token.value)
            if name == "?":
                self._positional += 1
                name = f"?{self._positional}"
            return Parameter(name)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("MISSING"):
            self.advance()
            return MissingLiteral()
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("ANY", "EVERY"):
            return self.parse_collection_predicate()
        if token.is_keyword("ARRAY"):
            return self.parse_array_comprehension()
        if token.is_keyword("DISTINCT") and self.peek().is_keyword("ARRAY"):
            # DISTINCT ARRAY ... FOR ... END (array-index syntax, §6.1.2).
            self.advance()
            comprehension = self.parse_array_comprehension()
            comprehension.distinct = True
            return comprehension
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if self.accept_op("["):
            items = []
            if not self.current.is_op("]"):
                items.append(self.parse_expr())
                while self.accept_op(","):
                    items.append(self.parse_expr())
            self.expect_op("]")
            return ArrayLiteral(items)
        if self.accept_op("{"):
            pairs: list[tuple[str, Expr]] = []
            if not self.current.is_op("}"):
                while True:
                    key_token = self.advance()
                    if key_token.kind not in ("string", "ident"):
                        raise self.error("object keys must be strings")
                    self.expect_op(":")
                    pairs.append((str(key_token.value), self.parse_expr()))
                    if not self.accept_op(","):
                        break
            self.expect_op("}")
            return ObjectLiteral(pairs)
        if token.kind == "ident" or token.kind == "keyword" and token.value in (
            "KEY", "VALUE", "LEFT",
        ):
            name = str(token.value)
            self.advance()
            if self.accept_op("("):
                return self.parse_function_tail(name)
            return Identifier(name)
        raise self.error(f"unexpected token {token.value!r} in expression")

    def parse_function_tail(self, name: str) -> FunctionCall:
        upper = name.upper()
        if self.accept_op(")"):
            return FunctionCall(upper, [])
        if self.accept_op("*"):
            self.expect_op(")")
            return FunctionCall(upper, [], star=True)
        distinct = self.accept_keyword("DISTINCT")
        args = [self.parse_expr()]
        while self.accept_op(","):
            args.append(self.parse_expr())
        self.expect_op(")")
        return FunctionCall(upper, args, distinct=distinct)

    def parse_case(self) -> CaseExpr:
        self.expect_keyword("CASE")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return CaseExpr(whens, else_result)

    def parse_collection_predicate(self) -> CollectionPredicate:
        quantifier = str(self.advance().value)  # ANY / EVERY
        variable = self.expect_ident()
        self.expect_keyword("IN")
        collection = self.parse_expr()
        self.expect_keyword("SATISFIES")
        condition = self.parse_expr()
        self.expect_keyword("END")
        return CollectionPredicate(quantifier, variable, collection, condition)

    def parse_array_comprehension(self) -> ArrayComprehension:
        self.expect_keyword("ARRAY")
        distinct = self.accept_keyword("DISTINCT")
        output = self.parse_expr()
        self.expect_keyword("FOR")
        variable = self.expect_ident()
        self.expect_keyword("IN")
        collection = self.parse_expr()
        condition = None
        if self.accept_keyword("WHEN"):
            condition = self.parse_expr()
        self.expect_keyword("END")
        return ArrayComprehension(output, variable, collection, condition,
                                  distinct)


def _literal_object(expr: Expr) -> dict | None:
    """Fold a literal ObjectLiteral into a plain dict (WITH options)."""
    from .syntax import ObjectLiteral as OL
    if not isinstance(expr, OL):
        return None
    out = {}
    for key, value in expr.pairs:
        if isinstance(value, Literal):
            out[key] = value.value
        elif isinstance(value, ArrayLiteral) and all(
            isinstance(i, Literal) for i in value.items
        ):
            out[key] = [i.value for i in value.items]
        else:
            return None
    return out


# Re-import guard for ObjectLiteral used above.
from .syntax import ObjectLiteral  # noqa: E402
