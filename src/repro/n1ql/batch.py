"""Batch-vectorized operator pipeline.

Compiling the expression hot path (see :mod:`repro.n1ql.compile`) left
the pipeline's per-row *plumbing* -- one generator hop per operator per
:class:`Env` -- as the dominant interpreter cost.  This module applies
section 4.5.3's pipelined execution at batch granularity: every operator
consumes and produces lists of up to :data:`BATCH_SIZE` row
environments, so the generator machinery runs once per batch and the
compiled closures run in tight per-batch loops.

Executors mirror :mod:`repro.n1ql.operators` one for one -- same row
order, same drop/copy semantics, same ``n1ql.*`` metrics -- and the
row-at-a-time pipeline is preserved behind :data:`BATCH_ENABLED`
(mirroring ``COMPILE_ENABLED``) for ablation.  The only observable
difference is RPC granularity: the batch Fetch drains whatever each
batch holds, so bulk-get chunk boundaries may fall differently.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from ..common.costmodel import cost, hot_path
from ..common.errors import N1qlRuntimeError
from .collation import MISSING
from .compile import compile_expr, compile_sort_key
from .expressions import Env
from .functions import _COUNT_STAR, Accumulator
from .operators import (
    ExecutionContext,
    FetchState,
    _compiled,
    _cover_doc,
    _evaluate_span,
    _group_compiled,
    _jsonable,
    _on_keys_list,
    _project_compiled,
    _pushed_limit,
    _run_view_index_scan,
    meta_dict,
    run_index_aggregate,
    run_primary_scan,
    run_system_scan,
)
from .plan import (
    DistinctOp,
    Fetch,
    Filter,
    FinalProject,
    GroupOp,
    IndexScan,
    InitialProject,
    JoinOp,
    KeyScan,
    LetOp,
    LimitOp,
    NestOp,
    OffsetOp,
    OrderOp,
    PrimaryScan,
    UnnestOp,
)

#: Ablation flag: False reverts execute_plan to the row-at-a-time
#: pipeline (mirrors COMPILE_ENABLED in repro.n1ql.compile).
BATCH_ENABLED = True

#: Rows per batch.  Small enough that LIMIT overshoots by at most one
#: batch and memory stays bounded, large enough to amortize the
#: per-batch dispatch to noise.
BATCH_SIZE = 64

Batches = Iterator[list[Env]]


def _batched(rows: Iterator[Env]) -> Batches:
    """Chunk a row stream into batches (adapter for the rare executors
    that stay row-at-a-time underneath: view scans, system scans)."""
    batch: list[Env] = []
    for env in rows:
        batch.append(env)
        if len(batch) >= BATCH_SIZE:
            yield batch
            batch = []
    if batch:
        yield batch


def _chunks(rows: list) -> Batches:
    for start in range(0, len(rows), BATCH_SIZE):
        yield rows[start:start + BATCH_SIZE]


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_key_scan_batch(op: KeyScan, ctx: ExecutionContext) -> Batches:
    keys = _compiled(op, "_compiled_keys", op.keys, ctx)(Env(), ctx.evaluator)
    if isinstance(keys, str):
        keys = [keys]
    if not isinstance(keys, list):
        return
    ctx.count("n1ql.keyscan")
    batch: list[Env] = []
    for key in keys:
        if not isinstance(key, str):
            continue
        env = Env()
        env.bind(op.alias, {"__pending_fetch__": key}, {"id": key})
        batch.append(env)
        if len(batch) >= BATCH_SIZE:
            yield batch
            batch = []
    if batch:
        yield batch


@hot_path
@cost("O(n)")
def run_index_scan_batch(op: IndexScan, ctx: ExecutionContext) -> Batches:
    if op.using == "view":
        yield from _batched(_run_view_index_scan(op, ctx))
        return
    low, high, inclusive_low, inclusive_high = _evaluate_span(op.span, ctx)
    rows = ctx.cluster.gsi.scan(
        op.index_name, low, high,
        inclusive_low=inclusive_low, inclusive_high=inclusive_high,
        limit=_pushed_limit(op, ctx),
        scan_consistency=ctx.scan_consistency,
        mutation_tokens=ctx.scan_tokens,
    )
    ctx.count("n1ql.indexscan")
    cover_parts = getattr(op, "_cover_parts", None)
    if cover_parts is None and op.covered:
        cover_parts = [path.split(".") for path in op.cover_paths]
        op._cover_parts = cover_parts
    covered, alias = op.covered, op.alias
    for start in range(0, len(rows), BATCH_SIZE):
        batch = []
        for key_values, doc_id in rows[start:start + BATCH_SIZE]:
            env = Env()
            if covered:
                env.bind(alias, _cover_doc(cover_parts, key_values),
                         {"id": doc_id})
            else:
                env.bind(alias, {"__pending_fetch__": doc_id},
                         {"id": doc_id})
            batch.append(env)
        yield batch


@hot_path
@cost("O(n)")
def run_primary_scan_batch(op: PrimaryScan, ctx: ExecutionContext) -> Batches:
    if op.using != "gsi":
        yield from _batched(run_primary_scan(op, ctx))
        return
    ctx.count("n1ql.primaryscan")
    rows = ctx.cluster.gsi.scan(op.index_name,
                                limit=_pushed_limit(op, ctx),
                                scan_consistency=ctx.scan_consistency,
                                mutation_tokens=ctx.scan_tokens)
    covered, alias = getattr(op, "covered", False), op.alias
    for start in range(0, len(rows), BATCH_SIZE):
        batch = []
        for _key_values, doc_id in rows[start:start + BATCH_SIZE]:
            env = Env()
            if covered:
                env.bind(alias, {}, {"id": doc_id})
            else:
                env.bind(alias, {"__pending_fetch__": doc_id},
                         {"id": doc_id})
            batch.append(env)
        yield batch


@hot_path
@cost("O(n)")
def run_system_scan_batch(op, ctx: ExecutionContext) -> Batches:
    yield from _batched(run_system_scan(op, ctx))


@hot_path
@cost("O(n)")
def run_index_aggregate_batch(op, ctx: ExecutionContext) -> Batches:
    # Merged groups are few; chunking the row executor is enough.
    yield from _batched(run_index_aggregate(op, ctx))


# ---------------------------------------------------------------------------
# Fetch / Filter / Let
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_fetch_batch(op: Fetch, ctx: ExecutionContext,
                    batches: Batches) -> Batches:
    state = FetchState(op, ctx)
    for batch in batches:
        buffered = []
        for env in batch:
            found, _value = env.lookup(op.alias)
            if found:
                buffered.append(env)
        if not buffered:
            continue
        out = state.drain(buffered)
        if out:
            yield out


@hot_path
@cost("O(n)")
def run_filter_batch(op: Filter, ctx: ExecutionContext,
                     batches: Batches) -> Batches:
    condition = _compiled(op, "_compiled_condition", op.condition, ctx)
    ev = ctx.evaluator
    for batch in batches:
        kept = [env for env in batch if condition(env, ev) is True]
        if kept:
            yield kept


@hot_path
@cost("O(n)")
def run_let_batch(op: LetOp, ctx: ExecutionContext,
                  batches: Batches) -> Batches:
    compiled = getattr(op, "_compiled_bindings", None)
    if compiled is None:
        alias = ctx.evaluator.default_alias
        compiled = [(name, compile_expr(expr, alias))
                    for name, expr in op.bindings]
        op._compiled_bindings = compiled
        ctx.count("n1ql.compile.count", len(compiled))
    ev = ctx.evaluator
    for batch in batches:
        out = []
        for env in batch:
            child = env.child()
            for name, fn in compiled:
                child.bind(name, fn(child, ev))
            out.append(child)
        yield out


# ---------------------------------------------------------------------------
# Join family (output batches re-chunked: joins multiply rows)
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_join_batch(op: JoinOp, ctx: ExecutionContext,
                   batches: Batches) -> Batches:
    on_keys = _compiled(op, "_compiled_on_keys", op.on_keys, ctx)
    out: list[Env] = []
    for batch in batches:
        for env in batch:
            keys = _on_keys_list(on_keys, ctx, env)
            matched = False
            for key in keys:
                doc = ctx.fetch_doc(op.keyspace, key)
                if doc is None:
                    continue
                matched = True
                child = env.child()
                child.bind(op.alias, doc.value, meta_dict(doc))
                out.append(child)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
            if not matched and op.outer:
                child = env.child()
                child.bind(op.alias, MISSING)
                out.append(child)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
    if out:
        yield out


@hot_path
@cost("O(n)")
def run_nest_batch(op: NestOp, ctx: ExecutionContext,
                   batches: Batches) -> Batches:
    on_keys = _compiled(op, "_compiled_on_keys", op.on_keys, ctx)
    for batch in batches:
        out = []
        for env in batch:
            keys = _on_keys_list(on_keys, ctx, env)
            collected = []
            for key in keys:
                doc = ctx.fetch_doc(op.keyspace, key)
                if doc is not None:
                    collected.append(doc.value)
            if collected:
                child = env.child()
                child.bind(op.alias, collected)
                out.append(child)
            elif op.outer:
                child = env.child()
                child.bind(op.alias, MISSING)
                out.append(child)
        if out:
            yield out


@hot_path
@cost("O(n)")
def run_unnest_batch(op: UnnestOp, ctx: ExecutionContext,
                     batches: Batches) -> Batches:
    unnest_fn = _compiled(op, "_compiled_expr", op.expr, ctx)
    ev = ctx.evaluator
    out: list[Env] = []
    for batch in batches:
        for env in batch:
            value = unnest_fn(env, ev)
            if isinstance(value, list) and value:
                for item in value:
                    child = env.child()
                    child.bind(op.alias, item)
                    out.append(child)
                    if len(out) >= BATCH_SIZE:
                        yield out
                        out = []
            elif op.outer:
                child = env.child()
                child.bind(op.alias, MISSING)
                out.append(child)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
    if out:
        yield out


# ---------------------------------------------------------------------------
# Grouping / ordering / pagination
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_group_batch(op: GroupOp, ctx: ExecutionContext,
                    batches: Batches) -> Batches:
    group_fns, agg_entries = _group_compiled(op, ctx)
    ev = ctx.evaluator
    groups: dict[str, tuple[Env, list[Accumulator]]] = {}
    order: list[str] = []
    for batch in batches:
        for env in batch:
            values = [fn(env, ev) for fn in group_fns]
            token = json.dumps(
                [None if v is MISSING else ["$", _jsonable(v)]
                 for v in values],
                sort_keys=True,
            )
            entry = groups.get(token)
            if entry is None:
                entry = (env, [
                    Accumulator(name, distinct)
                    for _key, name, distinct, _star, _fn in agg_entries
                ])
                groups[token] = entry
                order.append(token)
            for spec, accumulator in zip(agg_entries, entry[1]):
                _key, _name, _distinct, star, arg_fn = spec
                accumulator.add(_COUNT_STAR if star else arg_fn(env, ev))

    if not groups and not group_fns and agg_entries:
        env = Env()
        for key, name, distinct, _star, _fn in agg_entries:
            env.bind(key, Accumulator(name, distinct).result())
        yield [env]
        return

    batch = []
    for token in order:
        representative, accumulators = groups[token]
        out = representative.child()
        for spec, accumulator in zip(agg_entries, accumulators):
            out.bind(spec[0], accumulator.result())
        batch.append(out)
        if len(batch) >= BATCH_SIZE:
            yield batch
            batch = []
    if batch:
        yield batch


@hot_path
@cost("O(n)")
def run_order_batch(op: OrderOp, ctx: ExecutionContext,
                    batches: Batches) -> Batches:
    key_of = getattr(op, "_compiled_key", None)
    if key_of is None:
        key_of = compile_sort_key(op.terms, ctx.evaluator.default_alias)
        op._compiled_key = key_of
        ctx.count("n1ql.compile.count", len(op.terms))
    ev = ctx.evaluator
    materialized = [env for batch in batches for env in batch]
    materialized.sort(key=lambda env: key_of(env, ev))
    ctx.count("n1ql.sorted_rows", len(materialized))
    yield from _chunks(materialized)


@hot_path
@cost("O(n)")
def run_offset_batch(op: OffsetOp, ctx: ExecutionContext,
                     batches: Batches) -> Batches:
    count = _compiled(op, "_compiled_count", op.count, ctx)(Env(),
                                                            ctx.evaluator)
    if not isinstance(count, (int, float)):
        raise N1qlRuntimeError("OFFSET requires a number")
    skip = int(count)
    for batch in batches:
        if skip:
            if skip >= len(batch):
                skip -= len(batch)
                continue
            batch = batch[skip:]
            skip = 0
        yield batch


@hot_path
@cost("O(n)")
def run_limit_batch(op: LimitOp, ctx: ExecutionContext,
                    batches: Batches) -> Batches:
    count = _compiled(op, "_compiled_count", op.count, ctx)(Env(),
                                                            ctx.evaluator)
    if not isinstance(count, (int, float)):
        raise N1qlRuntimeError("LIMIT requires a number")
    remaining = int(count)
    if remaining <= 0:
        return
    for batch in batches:
        if len(batch) >= remaining:
            yield batch[:remaining]
            return
        remaining -= len(batch)
        yield batch


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_initial_project_batch(op: InitialProject, ctx: ExecutionContext,
                              batches: Batches) -> Batches:
    entries = _project_compiled(op, ctx)
    ev = ctx.evaluator
    raw_fn = entries[0][0] if op.raw else None
    for batch in batches:
        out_batch = []
        for env in batch:
            if op.raw:
                value = raw_fn(env, ev)
                result: Any = None if value is MISSING else value
            else:
                result = {}
                unnamed = 0
                for fn, name, star_of in entries:
                    if fn is None:
                        if star_of is not None:
                            found, value = env.lookup(star_of)
                            if found and isinstance(value, dict):
                                result.update(value)
                            continue
                        for alias in reversed(env.aliases()):
                            found, value = env.lookup(alias)
                            if found and value is not MISSING:
                                result[alias] = value
                        continue
                    value = fn(env, ev)
                    if value is MISSING:
                        continue
                    if name is None:
                        unnamed += 1
                        key = f"${unnamed}"
                    else:
                        key = name
                    result[key] = value
            out = env.child()
            out.bind("$result", result)
            out_batch.append(out)
        yield out_batch


@hot_path
@cost("O(n)")
def run_distinct_batch(op: DistinctOp, ctx: ExecutionContext,
                       batches: Batches) -> Batches:
    seen: set[str] = set()
    for batch in batches:
        kept = []
        for env in batch:
            _found, result = env.lookup("$result")
            token = json.dumps(result, sort_keys=True, default=str)
            if token in seen:
                continue
            seen.add(token)
            kept.append(env)
        if kept:
            yield kept


@hot_path
@cost("O(n)")
def run_final_project_batch(op: FinalProject, ctx: ExecutionContext,
                            batches: Batches) -> Iterator[list[Any]]:
    for batch in batches:
        yield [env.lookup("$result")[1] for env in batch]
