"""N1QL abstract syntax trees.

Dataclasses for expressions and statements.  The shapes follow section
3.2: SELECT with USE KEYS / JOIN ON KEYS / NEST / UNNEST, DML
(INSERT/UPSERT/UPDATE/DELETE), and index DDL.  Every node carries enough
source text (via ``source``) for EXPLAIN output and planner diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: Any  # JSON value


@dataclass
class MissingLiteral(Expr):
    pass


@dataclass
class Parameter(Expr):
    #: "1" / "name" for $-params, "?" for positional question marks; the
    #: parser numbers bare "?" left to right as "?1", "?2", ...
    name: str


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class FieldAccess(Expr):
    base: Expr
    field: str


@dataclass
class ElementAccess(Expr):
    base: Expr
    index: Expr


@dataclass
class Unary(Expr):
    op: str  # "-", "NOT"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, AND, OR, ||, LIKE, ...
    left: Expr
    right: Expr


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: Expr  # an expression evaluating to an array
    negated: bool = False


@dataclass
class IsPredicate(Expr):
    operand: Expr
    what: str  # "NULL" | "MISSING" | "VALUED"
    negated: bool = False


@dataclass
class FunctionCall(Expr):
    name: str  # uppercased
    args: list[Expr]
    distinct: bool = False  # COUNT(DISTINCT x)
    star: bool = False      # COUNT(*)


@dataclass
class CaseExpr(Expr):
    #: Searched CASE: list of (condition, result).
    whens: list[tuple[Expr, Expr]]
    else_result: Expr | None


@dataclass
class ArrayLiteral(Expr):
    items: list[Expr]


@dataclass
class ObjectLiteral(Expr):
    #: (key expression must be a string literal in this subset, value expr)
    pairs: list[tuple[str, Expr]]


@dataclass
class CollectionPredicate(Expr):
    """ANY / EVERY variable IN collection SATISFIES condition END."""

    quantifier: str  # "ANY" | "EVERY"
    variable: str
    collection: Expr
    condition: Expr


@dataclass
class ArrayComprehension(Expr):
    """ARRAY output FOR variable IN collection [WHEN condition] END --
    the construct in the paper's NEST example (section 3.2.3)."""

    output: Expr
    variable: str
    collection: Expr
    condition: Expr | None = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class Projection:
    expr: Expr | None  # None for '*'
    alias: str | None
    star_of: str | None = None  # alias.* projections


@dataclass
class KeyspaceTerm:
    """FROM bucket [AS alias] [USE KEYS expr]."""

    keyspace: str
    alias: str
    use_keys: Expr | None = None


@dataclass
class JoinClause:
    """[INNER|LEFT OUTER] JOIN bucket [AS alias] ON KEYS expr.

    N1QL restricts joins to key-based lookups (section 3.2.4); the ON
    KEYS expression is evaluated against the left-hand row and the
    right-hand document(s) are fetched by primary key."""

    keyspace: str
    alias: str
    on_keys: Expr
    outer: bool = False  # LEFT OUTER


@dataclass
class NestClause:
    keyspace: str
    alias: str
    on_keys: Expr
    outer: bool = False


@dataclass
class UnnestClause:
    expr: Expr
    alias: str
    outer: bool = False


@dataclass
class OrderTerm:
    expr: Expr
    descending: bool = False


@dataclass
class SelectStatement:
    projections: list[Projection]
    distinct: bool = False
    raw: bool = False
    from_term: KeyspaceTerm | None = None
    joins: list = field(default_factory=list)  # Join/Nest/Unnest in order
    let_bindings: list[tuple[str, Expr]] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderTerm] = field(default_factory=list)
    limit: Expr | None = None
    offset: Expr | None = None


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class InsertStatement:
    keyspace: str
    #: (key expression, value expression) pairs from VALUES.
    values: list[tuple[Expr, Expr]]
    upsert: bool = False
    returning: list[Projection] = field(default_factory=list)


@dataclass
class UpdateSet:
    path: Expr  # Identifier / FieldAccess chain relative to the document
    value: Expr


@dataclass
class UpdateStatement:
    keyspace: str
    alias: str
    use_keys: Expr | None
    sets: list[UpdateSet]
    unsets: list[Expr]
    where: Expr | None
    limit: Expr | None
    returning: list[Projection] = field(default_factory=list)


@dataclass
class DeleteStatement:
    keyspace: str
    alias: str
    use_keys: Expr | None
    where: Expr | None
    limit: Expr | None
    returning: list[Projection] = field(default_factory=list)


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class CreateIndexStatement:
    name: str
    keyspace: str
    #: Key expressions; an ArrayComprehension marks an array index.
    keys: list[Expr]
    where: Expr | None = None
    using: str = "gsi"  # "gsi" | "view"
    with_options: dict = field(default_factory=dict)
    key_sources: list[str] = field(default_factory=list)
    where_source: str | None = None


@dataclass
class CreatePrimaryIndexStatement:
    name: str | None
    keyspace: str
    using: str = "gsi"
    with_options: dict = field(default_factory=dict)


@dataclass
class DropIndexStatement:
    keyspace: str
    name: str


@dataclass
class BuildIndexStatement:
    keyspace: str
    names: list[str]


@dataclass
class ExplainStatement:
    statement: Any


@dataclass
class PrepareStatement:
    name: str | None
    statement: Any


@dataclass
class ExecuteStatement:
    name: str


Statement = (
    SelectStatement | InsertStatement | UpdateStatement | DeleteStatement
    | CreateIndexStatement | CreatePrimaryIndexStatement | DropIndexStatement
    | BuildIndexStatement | ExplainStatement
)
