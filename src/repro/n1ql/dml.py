"""N1QL DML execution: INSERT, UPSERT, UPDATE, DELETE.

Section 3.2.2: "N1QL provides support for INSERT, DELETE, UPDATE, and
UPSERT statements to create, delete, and modify data stored as JSON
documents.  These statements also support sub-document level lookups
and updates."

UPDATE/DELETE reuse the SELECT access-path machinery to locate target
documents (USE KEYS, an index scan, or a primary scan), then apply the
mutation through the key-value API with a CAS retry loop so concurrent
writers are handled the way section 3.1.1 prescribes.
"""

from __future__ import annotations

from typing import Any

from ..common.errors import (
    CasMismatchError,
    KeyExistsError,
    KeyNotFoundError,
    N1qlRuntimeError,
)
from ..common.jsonval import deep_copy
from .collation import MISSING
from .expressions import Env
from .operators import ExecutionContext, meta_dict
from .plan import Filter, LimitOp, QueryPlan
from .pipeline import execute_plan
from .planner import Planner
from .syntax import (
    DeleteStatement,
    ElementAccess,
    FieldAccess,
    Identifier,
    InsertStatement,
    Projection,
    SelectStatement,
    UpdateStatement,
)

_CAS_RETRIES = 8


def _returning(projections: list[Projection], ctx: ExecutionContext,
               env: Env) -> Any:
    out = {}
    unnamed = 0
    for projection in projections:
        if projection.expr is None:
            for alias in reversed(env.aliases()):
                found, value = env.lookup(alias)
                if found:
                    out[alias] = value
            continue
        value = ctx.evaluator.evaluate(projection.expr, env)
        if value is MISSING:
            continue
        name = projection.alias
        if name is None:
            from .operators import _implicit_name
            name = _implicit_name(projection.expr)
        if name is None:
            unnamed += 1
            name = f"${unnamed}"
        out[name] = value
    return out


def execute_insert(statement: InsertStatement, ctx: ExecutionContext) -> dict:
    client = ctx.client
    empty = Env()
    count = 0
    returned = []
    for key_expr, value_expr in statement.values:
        key = ctx.evaluator.evaluate(key_expr, empty)
        value = ctx.evaluator.evaluate(value_expr, empty)
        if not isinstance(key, str):
            raise N1qlRuntimeError("INSERT key must evaluate to a string")
        if value is MISSING:
            raise N1qlRuntimeError("INSERT value must not be MISSING")
        if statement.upsert:
            client.upsert(statement.keyspace, key, value)
        else:
            try:
                client.insert(statement.keyspace, key, value)
            except KeyExistsError:
                raise N1qlRuntimeError(
                    f"duplicate key {key!r} in INSERT (use UPSERT to "
                    f"overwrite)"
                ) from None
        count += 1
        if statement.returning:
            env = Env()
            env.bind(statement.keyspace, value, {"id": key})
            returned.append(_returning(statement.returning, ctx, env))
    return {"mutationCount": count, "returning": returned}


def _target_rows(keyspace: str, alias: str, use_keys, where, limit,
                 planner: Planner, ctx: ExecutionContext):
    """Locate target documents by piggybacking on SELECT planning."""
    pseudo = SelectStatement(
        projections=[Projection(expr=None, alias=None)],
        from_term=None,
    )
    from .syntax import KeyspaceTerm
    pseudo.from_term = KeyspaceTerm(keyspace, alias, use_keys)
    pseudo.where = where
    pseudo.limit = limit
    operators = planner._plan_access_path(pseudo, pseudo.from_term)
    if where is not None:
        operators.append(Filter(where))
    if limit is not None:
        operators.append(LimitOp(limit))
    plan = QueryPlan(operators, alias, "DML-TARGET")
    return execute_plan(plan, ctx)


def _doc_path_steps(expr, alias: str, ctx: ExecutionContext,
                    env: Env) -> list:
    """Convert a SET/UNSET path AST into concrete steps relative to the
    document (stripping the keyspace alias if present)."""
    steps: list = []
    node = expr
    while True:
        if isinstance(node, Identifier):
            if node.name != alias:
                steps.append(node.name)
            break
        if isinstance(node, FieldAccess):
            steps.append(node.field)
            node = node.base
            continue
        if isinstance(node, ElementAccess):
            index = ctx.evaluator.evaluate(node.index, env)
            if not isinstance(index, (int, float)) or isinstance(index, bool):
                raise N1qlRuntimeError("array index in path must be a number")
            steps.append(int(index))
            node = node.base
            continue
        raise N1qlRuntimeError("unsupported path expression in SET/UNSET")
    steps.reverse()
    return steps


def _apply_path_set(doc, steps: list, value) -> None:
    current = doc
    for step in steps[:-1]:
        if isinstance(step, int):
            current = current[step]
        else:
            if not isinstance(current, dict):
                raise N1qlRuntimeError("cannot traverse non-object in SET")
            current = current.setdefault(step, {})
    last = steps[-1]
    if isinstance(last, int):
        current[last] = value
    else:
        if not isinstance(current, dict):
            raise N1qlRuntimeError("cannot set field on non-object")
        current[last] = value


def _apply_path_unset(doc, steps: list) -> None:
    current = doc
    for step in steps[:-1]:
        try:
            current = current[step]
        except (KeyError, IndexError, TypeError):
            return
    last = steps[-1]
    try:
        del current[last]
    except (KeyError, IndexError, TypeError):
        return


def execute_update(statement: UpdateStatement, planner: Planner,
                   ctx: ExecutionContext) -> dict:
    client = ctx.client
    count = 0
    returned = []
    rows = _target_rows(
        statement.keyspace, statement.alias, statement.use_keys,
        statement.where, statement.limit, planner, ctx,
    )
    for env in rows:
        meta = env.lookup_meta(statement.alias)
        if meta is None:
            continue
        key = meta["id"]
        for _attempt in range(_CAS_RETRIES):
            try:
                current = client.get(statement.keyspace, key)
            except KeyNotFoundError:
                break
            # Re-check WHERE against the current version (the row may
            # have changed since the scan).
            check_env = Env()
            check_env.bind(statement.alias, current.value, meta_dict(current))
            if statement.where is not None and not ctx.evaluator.truthy(
                statement.where, check_env
            ):
                break
            updated = deep_copy(current.value)
            mutate_env = Env()
            mutate_env.bind(statement.alias, updated, meta_dict(current))
            for update_set in statement.sets:
                steps = _doc_path_steps(update_set.path, statement.alias,
                                        ctx, mutate_env)
                value = ctx.evaluator.evaluate(update_set.value, mutate_env)
                if value is MISSING:
                    continue
                _apply_path_set(updated, steps, value)
            for unset_expr in statement.unsets:
                steps = _doc_path_steps(unset_expr, statement.alias, ctx,
                                        mutate_env)
                _apply_path_unset(updated, steps)
            try:
                client.replace(statement.keyspace, key, updated,
                               cas=current.meta.cas)
            # CAS retry loop: re-read and re-apply on concurrent write.
            # repro-flow: disable-next=swallowed-exception
            except CasMismatchError:
                continue  # concurrent writer -- re-read and retry
            count += 1
            if statement.returning:
                result_env = Env()
                result_env.bind(statement.alias, updated, meta_dict(current))
                returned.append(_returning(statement.returning, ctx,
                                           result_env))
            break
    return {"mutationCount": count, "returning": returned}


def execute_delete(statement: DeleteStatement, planner: Planner,
                   ctx: ExecutionContext) -> dict:
    client = ctx.client
    count = 0
    returned = []
    rows = _target_rows(
        statement.keyspace, statement.alias, statement.use_keys,
        statement.where, statement.limit, planner, ctx,
    )
    for env in rows:
        meta = env.lookup_meta(statement.alias)
        if meta is None:
            continue
        key = meta["id"]
        found, value = env.lookup(statement.alias)
        try:
            client.remove(statement.keyspace, key)
        # DELETE of an already-deleted doc is a no-op, not an error.
        # repro-flow: disable-next=swallowed-exception
        except KeyNotFoundError:
            continue
        count += 1
        if statement.returning:
            result_env = Env()
            result_env.bind(statement.alias, value, {"id": key})
            returned.append(_returning(statement.returning, ctx, result_env))
    return {"mutationCount": count, "returning": returned}
