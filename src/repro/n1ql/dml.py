"""N1QL DML execution: INSERT, UPSERT, UPDATE, DELETE.

Section 3.2.2: "N1QL provides support for INSERT, DELETE, UPDATE, and
UPSERT statements to create, delete, and modify data stored as JSON
documents.  These statements also support sub-document level lookups
and updates."

UPDATE/DELETE reuse the SELECT access-path machinery to locate target
documents (USE KEYS, an index scan, or a primary scan), then apply the
mutation through the key-value API with a CAS retry loop so concurrent
writers are handled the way section 3.1.1 prescribes.

Expression work is compiled **once per statement** and memoized on the
statement object (the DML mirror of the operators' per-plan
``_compiled`` slots): RETURNING projections, the WHERE re-check,
SET/UNSET paths and SET values all lower to closures on first use, so
the per-row cost is direct calls -- the ``n1ql.compile.count`` metric
stays flat as the row count grows.  INSERT values and DELETE targets
ship as one batched ``multi_*`` RPC per statement instead of one RPC
per row.
"""

from __future__ import annotations

from typing import Any

from ..common.costmodel import cost, hot_path
from ..common.errors import (
    CasMismatchError,
    KeyExistsError,
    KeyNotFoundError,
    N1qlRuntimeError,
)
from ..common.jsonval import deep_copy
from .collation import MISSING
from .compile import compile_expr
from .expressions import Env
from .operators import ExecutionContext, meta_dict
from .plan import Filter, LimitOp, QueryPlan
from .pipeline import execute_plan
from .planner import Planner
from .syntax import (
    DeleteStatement,
    ElementAccess,
    FieldAccess,
    Identifier,
    InsertStatement,
    Projection,
    SelectStatement,
    UpdateStatement,
)

_CAS_RETRIES = 8


def _stmt_compiled(statement, slot: str, expr, ctx: ExecutionContext):
    """Per-statement memoized compile: the first execution lowers
    ``expr`` to a closure cached on the statement, so every row of this
    execution -- and every re-execution of a prepared statement --
    shares one lowering."""
    fn = getattr(statement, slot, None)
    if fn is None:
        fn = compile_expr(expr, ctx.evaluator.default_alias)
        setattr(statement, slot, fn)
        ctx.count("n1ql.compile.count")
    return fn


def _returning_compiled(statement, ctx: ExecutionContext) -> list:
    """Compile the RETURNING clause once per statement: a list of
    ``(name, fn)`` pairs; a bare ``*`` projection compiles to
    ``(None, None)`` and is expanded per row."""
    compiled = getattr(statement, "_compiled_returning", None)
    if compiled is None:
        compiled = []
        fresh = 0
        unnamed = 0
        for projection in statement.returning:
            if projection.expr is None:
                compiled.append((None, None))
                continue
            name = projection.alias
            if name is None:
                from .operators import _implicit_name
                name = _implicit_name(projection.expr)
            if name is None:
                unnamed += 1
                name = f"${unnamed}"
            compiled.append((name, compile_expr(
                projection.expr, ctx.evaluator.default_alias)))
            fresh += 1
        statement._compiled_returning = compiled
        if fresh:
            ctx.count("n1ql.compile.count", fresh)
    return compiled


def _returning(statement, ctx: ExecutionContext, env: Env) -> Any:
    out = {}
    ev = ctx.evaluator
    for name, fn in _returning_compiled(statement, ctx):
        if fn is None:
            for alias in reversed(env.aliases()):
                found, value = env.lookup(alias)
                if found:
                    out[alias] = value
            continue
        value = fn(env, ev)
        if value is MISSING:
            continue
        out[name] = value
    return out


@hot_path
@cost("O(n)")
def execute_insert(statement: InsertStatement, ctx: ExecutionContext) -> dict:
    client = ctx.client
    empty = Env()
    compiled = getattr(statement, "_compiled_values", None)
    if compiled is None:
        alias = ctx.evaluator.default_alias
        compiled = [
            (compile_expr(key_expr, alias), compile_expr(value_expr, alias))
            for key_expr, value_expr in statement.values
        ]
        statement._compiled_values = compiled
        if compiled:
            ctx.count("n1ql.compile.count", 2 * len(compiled))
    ev = ctx.evaluator
    entries: list[tuple[str, Any]] = []
    seen: set[str] = set()
    for key_fn, value_fn in compiled:
        key = key_fn(empty, ev)
        value = value_fn(empty, ev)
        if not isinstance(key, str):
            raise N1qlRuntimeError("INSERT key must evaluate to a string")
        if value is MISSING:
            raise N1qlRuntimeError("INSERT value must not be MISSING")
        if not statement.upsert and key in seen:
            raise N1qlRuntimeError(
                f"duplicate key {key!r} in INSERT (use UPSERT to overwrite)"
            )
        seen.add(key)
        entries.append((key, value))
    if not entries:
        return {"mutationCount": 0, "returning": []}
    payload = dict(entries)
    if statement.upsert:
        batch = client.multi_upsert(statement.keyspace, payload)
    else:
        batch = client.multi_insert(statement.keyspace, payload)
    for key, _value in entries:
        error = batch.errors.get(key)
        if error is None:
            continue
        if isinstance(error, KeyExistsError):
            raise N1qlRuntimeError(
                f"duplicate key {key!r} in INSERT (use UPSERT to overwrite)"
            ) from None
        raise error
    count = 0
    returned = []
    for key, value in entries:
        if key not in batch.results:
            continue
        count += 1
        if statement.returning:
            env = Env()
            env.bind(statement.keyspace, value, {"id": key})
            returned.append(_returning(statement, ctx, env))
    return {"mutationCount": count, "returning": returned}


def _target_rows(keyspace: str, alias: str, use_keys, where, limit,
                 planner: Planner, ctx: ExecutionContext):
    """Locate target documents by piggybacking on SELECT planning."""
    pseudo = SelectStatement(
        projections=[Projection(expr=None, alias=None)],
        from_term=None,
    )
    from .syntax import KeyspaceTerm
    pseudo.from_term = KeyspaceTerm(keyspace, alias, use_keys)
    pseudo.where = where
    pseudo.limit = limit
    operators = planner._plan_access_path(pseudo, pseudo.from_term)
    if where is not None:
        operators.append(Filter(where))
    if limit is not None:
        operators.append(LimitOp(limit))
    plan = QueryPlan(operators, alias, "DML-TARGET")
    return execute_plan(plan, ctx)


def _compile_path(expr, alias: str, default_alias: str | None) -> list:
    """Lower a SET/UNSET path AST into steps relative to the document
    (stripping the keyspace alias).  Static segments become plain
    str/int steps; dynamic array indexes compile to closures resolved
    per row by :func:`_resolve_path`."""
    steps: list = []
    node = expr
    while True:
        if isinstance(node, Identifier):
            if node.name != alias:
                steps.append(node.name)
            break
        if isinstance(node, FieldAccess):
            steps.append(node.field)
            node = node.base
            continue
        if isinstance(node, ElementAccess):
            steps.append(compile_expr(node.index, default_alias))
            node = node.base
            continue
        raise N1qlRuntimeError("unsupported path expression in SET/UNSET")
    steps.reverse()
    return steps


def _resolve_path(steps: list, env: Env, ev) -> list:
    """Materialize one row's concrete path: pass static steps through,
    evaluate compiled index closures."""
    resolved: list = []
    for step in steps:
        if callable(step):
            index = step(env, ev)
            if not isinstance(index, (int, float)) or isinstance(index, bool):
                raise N1qlRuntimeError("array index in path must be a number")
            resolved.append(int(index))
        else:
            resolved.append(step)
    return resolved


def _update_mutations_compiled(statement: UpdateStatement,
                               ctx: ExecutionContext) -> tuple[list, list]:
    """Compile SET paths/values and UNSET paths once per statement."""
    compiled = getattr(statement, "_compiled_mutations", None)
    if compiled is None:
        default_alias = ctx.evaluator.default_alias
        sets = []
        fresh = 0
        for update_set in statement.sets:
            steps = _compile_path(update_set.path, statement.alias,
                                  default_alias)
            value_fn = compile_expr(update_set.value, default_alias)
            fresh += 1 + sum(1 for step in steps if callable(step))
            sets.append((steps, value_fn))
        unsets = []
        for unset_expr in statement.unsets:
            steps = _compile_path(unset_expr, statement.alias, default_alias)
            fresh += sum(1 for step in steps if callable(step))
            unsets.append(steps)
        compiled = (sets, unsets)
        statement._compiled_mutations = compiled
        if fresh:
            ctx.count("n1ql.compile.count", fresh)
    return compiled


def _apply_path_set(doc, steps: list, value) -> None:
    current = doc
    for step in steps[:-1]:
        if isinstance(step, int):
            current = current[step]
        else:
            if not isinstance(current, dict):
                raise N1qlRuntimeError("cannot traverse non-object in SET")
            current = current.setdefault(step, {})
    last = steps[-1]
    if isinstance(last, int):
        current[last] = value
    else:
        if not isinstance(current, dict):
            raise N1qlRuntimeError("cannot set field on non-object")
        current[last] = value


def _apply_path_unset(doc, steps: list) -> None:
    current = doc
    for step in steps[:-1]:
        try:
            current = current[step]
        except (KeyError, IndexError, TypeError):
            return
    last = steps[-1]
    try:
        del current[last]
    except (KeyError, IndexError, TypeError):
        return


@hot_path
@cost("O(n)")
def execute_update(statement: UpdateStatement, planner: Planner,
                   ctx: ExecutionContext) -> dict:
    client = ctx.client
    ev = ctx.evaluator
    count = 0
    returned = []
    rows = _target_rows(
        statement.keyspace, statement.alias, statement.use_keys,
        statement.where, statement.limit, planner, ctx,
    )
    where_fn = (None if statement.where is None else
                _stmt_compiled(statement, "_compiled_where",
                               statement.where, ctx))
    compiled_sets, compiled_unsets = _update_mutations_compiled(statement, ctx)
    for env in rows:
        meta = env.lookup_meta(statement.alias)
        if meta is None:
            continue
        key = meta["id"]
        for _attempt in range(_CAS_RETRIES):
            try:
                # Read-modify-write with CAS is inherently per-document:
                # the re-read, the WHERE re-check and the conditional
                # replace form one atomicity unit per key.
                # repro-hotpath: disable-next=n-plus-one-rpc
                current = client.get(statement.keyspace, key)
            except KeyNotFoundError:
                break
            # Re-check WHERE against the current version (the row may
            # have changed since the scan).
            check_env = Env()
            check_env.bind(statement.alias, current.value, meta_dict(current))
            if where_fn is not None and where_fn(check_env, ev) is not True:
                break
            updated = deep_copy(current.value)
            mutate_env = Env()
            mutate_env.bind(statement.alias, updated, meta_dict(current))
            for steps, value_fn in compiled_sets:
                resolved = _resolve_path(steps, mutate_env, ev)
                value = value_fn(mutate_env, ev)
                if value is MISSING:
                    continue
                _apply_path_set(updated, resolved, value)
            for steps in compiled_unsets:
                _apply_path_unset(
                    updated, _resolve_path(steps, mutate_env, ev))
            try:
                # Same CAS unit as the get above.
                # repro-hotpath: disable-next=n-plus-one-rpc
                client.replace(statement.keyspace, key, updated,
                               cas=current.meta.cas)
            # CAS retry loop: re-read and re-apply on concurrent write.
            # repro-flow: disable-next=swallowed-exception
            except CasMismatchError:
                continue  # concurrent writer -- re-read and retry
            count += 1
            if statement.returning:
                result_env = Env()
                result_env.bind(statement.alias, updated, meta_dict(current))
                returned.append(_returning(statement, ctx, result_env))
            break
    return {"mutationCount": count, "returning": returned}


@hot_path
@cost("O(n)")
def execute_delete(statement: DeleteStatement, planner: Planner,
                   ctx: ExecutionContext) -> dict:
    client = ctx.client
    rows = _target_rows(
        statement.keyspace, statement.alias, statement.use_keys,
        statement.where, statement.limit, planner, ctx,
    )
    targets: list[tuple[str, Any]] = []
    for env in rows:
        meta = env.lookup_meta(statement.alias)
        if meta is None:
            continue
        _found, value = env.lookup(statement.alias)
        targets.append((meta["id"], value))
    if not targets:
        return {"mutationCount": 0, "returning": []}
    batch = client.multi_remove(statement.keyspace,
                                [key for key, _value in targets])
    for key, _value in targets:
        error = batch.errors.get(key)
        # DELETE of an already-deleted doc is a no-op, not an error.
        if error is not None and not isinstance(error, KeyNotFoundError):
            raise error
    count = 0
    returned = []
    for key, value in targets:
        if key not in batch.results:
            continue
        count += 1
        if statement.returning:
            result_env = Env()
            result_env.bind(statement.alias, value, {"id": key})
            returned.append(_returning(statement, ctx, result_env))
    return {"mutationCount": count, "returning": returned}
