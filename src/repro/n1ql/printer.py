"""Canonical printing of N1QL ASTs.

Used for EXPLAIN output, for matching aggregate expressions between the
grouping operator and the projection, and for the planner's sargability
bookkeeping (an index on ``age`` matches the WHERE conjunct whose
canonical path prints as ``age``).
"""

from __future__ import annotations

import json

from .syntax import (
    ArrayComprehension,
    ArrayLiteral,
    Between,
    Binary,
    CaseExpr,
    CollectionPredicate,
    ElementAccess,
    Expr,
    FieldAccess,
    FunctionCall,
    Identifier,
    InList,
    IsPredicate,
    Literal,
    MissingLiteral,
    ObjectLiteral,
    Parameter,
    Unary,
)


def print_expr(expr: Expr) -> str:
    """Canonical textual form of an expression AST."""
    if isinstance(expr, Literal):
        return json.dumps(expr.value)
    if isinstance(expr, MissingLiteral):
        return "MISSING"
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, FieldAccess):
        return f"{print_expr(expr.base)}.{expr.field}"
    if isinstance(expr, ElementAccess):
        return f"{print_expr(expr.base)}[{print_expr(expr.index)}]"
    if isinstance(expr, Unary):
        if expr.op == "NOT":
            return f"NOT ({print_expr(expr.operand)})"
        return f"{expr.op}({print_expr(expr.operand)})"
    if isinstance(expr, Binary):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({print_expr(expr.operand)} {word} "
                f"{print_expr(expr.low)} AND {print_expr(expr.high)})")
    if isinstance(expr, InList):
        word = "NOT IN" if expr.negated else "IN"
        return f"({print_expr(expr.operand)} {word} {print_expr(expr.items)})"
    if isinstance(expr, IsPredicate):
        word = f"IS {'NOT ' if expr.negated else ''}{expr.what}"
        return f"({print_expr(expr.operand)} {word})"
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(print_expr(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(f"WHEN {print_expr(condition)} THEN {print_expr(result)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {print_expr(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ArrayLiteral):
        return "[" + ", ".join(print_expr(i) for i in expr.items) + "]"
    if isinstance(expr, ObjectLiteral):
        inner = ", ".join(
            f"{json.dumps(k)}: {print_expr(v)}" for k, v in expr.pairs
        )
        return "{" + inner + "}"
    if isinstance(expr, CollectionPredicate):
        return (f"{expr.quantifier} {expr.variable} IN "
                f"{print_expr(expr.collection)} SATISFIES "
                f"{print_expr(expr.condition)} END")
    if isinstance(expr, ArrayComprehension):
        distinct = "DISTINCT " if expr.distinct else ""
        when = (f" WHEN {print_expr(expr.condition)}"
                if expr.condition is not None else "")
        return (f"ARRAY {distinct}{print_expr(expr.output)} FOR "
                f"{expr.variable} IN {print_expr(expr.collection)}{when} END")
    raise TypeError(f"cannot print {type(expr).__name__}")


def path_of(expr: Expr, strip_alias: str | None = None) -> str | None:
    """If ``expr`` is a pure attribute path (identifier / dotted fields),
    return its dotted form, optionally stripping a leading keyspace
    alias.  Returns None for anything else.  This is what the planner
    uses to match WHERE conjuncts to index keys."""
    parts: list[str] = []
    node = expr
    while isinstance(node, FieldAccess):
        parts.append(node.field)
        node = node.base
    if isinstance(node, Identifier):
        parts.append(node.name)
    elif (isinstance(node, FunctionCall) and node.name == "META"
          and (not node.args
               or (strip_alias is not None and len(node.args) == 1
                   and isinstance(node.args[0], Identifier)
                   and node.args[0].name == strip_alias))
          and parts and parts[-1] == "id"):
        # meta().id is an indexable "path" too (primary indexes).
        parts.append("meta().id")
        dotted = list(reversed(parts))
        # dotted looks like ["meta().id", "id", ...]; normalize below.
        if dotted[:2] == ["meta().id", "id"]:
            rest = dotted[2:]
            return ".".join(["meta().id"] + rest) if rest else "meta().id"
        return None
    else:
        return None
    dotted = list(reversed(parts))
    if strip_alias is not None and dotted and dotted[0] == strip_alias:
        dotted = dotted[1:]
    if not dotted:
        return None
    return ".".join(dotted)
