"""N1QL built-in functions.

The scalar library (string, numeric, array, object, type, and
conditional functions) plus the aggregate registry the grouping operator
consults.  Scalar functions follow N1QL's MISSING/NULL discipline: a
MISSING argument generally yields MISSING, a NULL argument yields NULL,
and a wrongly-typed argument yields NULL.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..common.errors import N1qlRuntimeError
from .collation import MISSING, compare

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "ARRAY_AGG"}


def is_aggregate(name: str) -> bool:
    return name in AGGREGATES


def _propagate(*args: Any):
    """Standard argument discipline: MISSING dominates, then NULL."""
    for arg in args:
        if arg is MISSING:
            return MISSING
    for arg in args:
        if arg is None:
            return None
    return _OK


_OK = object()


def _number(value: Any) -> float | int | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


def _string(value: Any) -> str | None:
    return value if isinstance(value, str) else None


# -- scalar implementations ---------------------------------------------------

def fn_lower(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    return text.lower() if text is not None else None


def fn_upper(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    return text.upper() if text is not None else None


def fn_length(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    return len(text) if text is not None else None


def fn_substr(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    start = _number(args[1])
    if text is None or start is None:
        return None
    start = int(start)
    if len(args) >= 3:
        length = _number(args[2])
        if length is None:
            return None
        return text[start:start + int(length)]
    return text[start:]

def fn_trim(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    return text.strip() if text is not None else None


def fn_contains(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text, needle = _string(args[0]), _string(args[1])
    if text is None or needle is None:
        return None
    return needle in text


def fn_split(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    text = _string(args[0])
    if text is None:
        return None
    if len(args) >= 2:
        sep = _string(args[1])
        if sep is None:
            return None
        return text.split(sep)
    return text.split()


def fn_abs(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    number = _number(args[0])
    return abs(number) if number is not None else None


def fn_round(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    number = _number(args[0])
    if number is None:
        return None
    digits = 0
    if len(args) >= 2:
        d = _number(args[1])
        if d is None:
            return None
        digits = int(d)
    return round(number, digits)


def fn_floor(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    number = _number(args[0])
    return math.floor(number) if number is not None else None


def fn_ceil(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    number = _number(args[0])
    return math.ceil(number) if number is not None else None


def fn_sqrt(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    number = _number(args[0])
    if number is None or number < 0:
        return None
    return math.sqrt(number)


def fn_power(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    base, exponent = _number(args[0]), _number(args[1])
    if base is None or exponent is None:
        return None
    return base ** exponent


def fn_array_length(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    return len(args[0]) if isinstance(args[0], list) else None


def fn_array_contains(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    if not isinstance(args[0], list):
        return None
    return any(compare(item, args[1]) == 0 for item in args[0])


def fn_array_append(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    if not isinstance(args[0], list):
        return None
    return list(args[0]) + [args[1]]


def fn_array_distinct(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    if not isinstance(args[0], list):
        return None
    out = []
    for item in args[0]:
        if not any(compare(item, existing) == 0 for existing in out):
            out.append(item)
    return out


def fn_object_names(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    return sorted(args[0]) if isinstance(args[0], dict) else None


def fn_object_values(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    if not isinstance(args[0], dict):
        return None
    return [args[0][key] for key in sorted(args[0])]


def fn_type(args):
    value = args[0]
    if value is MISSING:
        return "missing"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    return "object"


def fn_ifmissing(args):
    for arg in args:
        if arg is not MISSING:
            return arg
    return MISSING


def fn_ifnull(args):
    for arg in args:
        if arg is not None and arg is not MISSING:
            return arg
    return None


def fn_ifmissingornull(args):
    for arg in args:
        if arg is not MISSING and arg is not None:
            return arg
    return None


def fn_tostring(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    value = args[0]
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        import json
        return json.dumps(value)
    return None


def fn_tonumber(args):
    check = _propagate(*args)
    if check is not _OK:
        return check
    value = args[0]
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def fn_least(args):
    present = [a for a in args if a is not MISSING and a is not None]
    if not present:
        return None
    best = present[0]
    for value in present[1:]:
        if compare(value, best) < 0:
            best = value
    return best


def fn_greatest(args):
    present = [a for a in args if a is not MISSING and a is not None]
    if not present:
        return None
    best = present[0]
    for value in present[1:]:
        if compare(value, best) > 0:
            best = value
    return best


SCALARS: dict[str, Callable[[list], Any]] = {
    "LOWER": fn_lower,
    "UPPER": fn_upper,
    "LENGTH": fn_length,
    "SUBSTR": fn_substr,
    "TRIM": fn_trim,
    "CONTAINS": fn_contains,
    "SPLIT": fn_split,
    "ABS": fn_abs,
    "ROUND": fn_round,
    "FLOOR": fn_floor,
    "CEIL": fn_ceil,
    "SQRT": fn_sqrt,
    "POWER": fn_power,
    "ARRAY_LENGTH": fn_array_length,
    "ARRAY_CONTAINS": fn_array_contains,
    "ARRAY_APPEND": fn_array_append,
    "ARRAY_DISTINCT": fn_array_distinct,
    "OBJECT_NAMES": fn_object_names,
    "OBJECT_VALUES": fn_object_values,
    "TYPE": fn_type,
    "IFMISSING": fn_ifmissing,
    "IFNULL": fn_ifnull,
    "IFMISSINGORNULL": fn_ifmissingornull,
    "TOSTRING": fn_tostring,
    "TONUMBER": fn_tonumber,
    "LEAST": fn_least,
    "GREATEST": fn_greatest,
}


# -- aggregate accumulators ------------------------------------------------------


class Accumulator:
    """Streaming aggregate state for one (group, aggregate expr)."""

    def __init__(self, name: str, distinct: bool):
        self.name = name
        self.distinct = distinct
        self.count = 0
        self.total = 0
        self.best: Any = MISSING
        self.items: list = []
        self._seen: list = []

    def add(self, value: Any) -> None:
        if self.name == "COUNT" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is MISSING or value is None:
            return  # aggregates ignore MISSING and NULL inputs
        if self.distinct:
            if any(compare(value, seen) == 0 for seen in self._seen):
                return
            self._seen.append(value)
        self.count += 1
        if self.name in ("SUM", "AVG") and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            self.total += value
        if self.name == "MIN":
            if self.best is MISSING or compare(value, self.best) < 0:
                self.best = value
        if self.name == "MAX":
            if self.best is MISSING or compare(value, self.best) > 0:
                self.best = value
        if self.name == "ARRAY_AGG":
            self.items.append(value)

    def result(self) -> Any:
        if self.name == "COUNT":
            return self.count
        if self.name == "SUM":
            return self.total if self.count else None
        if self.name == "AVG":
            return self.total / self.count if self.count else None
        if self.name in ("MIN", "MAX"):
            return None if self.best is MISSING else self.best
        if self.name == "ARRAY_AGG":
            return self.items if self.items else None
        raise N1qlRuntimeError(f"unknown aggregate {self.name}")


#: Marker fed to COUNT(*) accumulators: counts rows, not values.
_COUNT_STAR = object()
