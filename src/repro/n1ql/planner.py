"""The N1QL planner.

Section 4.5.3: "the N1QL query planner analyzes the query and available
access path options for each keyspace ... The planner needs to first
select the access path for each bucket, determine the join order, and
then determine the type of the join operation."

Access-path selection, in preference order:

1. **KeyScan** when USE KEYS is present -- the key-value bridge.
2. **IndexScan** over the best qualifying secondary index: the WHERE
   clause is split into conjuncts, each conjunct of the form
   ``<path> <cmp> <constant>`` contributes a bound, and the index whose
   leading keys absorb the most bounds wins.  A **covering** index (all
   referenced fields among the index keys, section 5.1.2) skips the
   Fetch operator.  Partial indexes qualify only when the WHERE clause
   provably implies the index condition.
3. **IndexScan on the primary index** when the predicate ranges over
   ``meta().id`` (the YCSB workload-E shape).
4. **PrimaryScan** -- the full-keyspace fallback the paper warns about
   (section 5.1.1).

Join order is the textual order (N1QL 4.x behaviour); every join is the
nested-loop key-lookup join of section 4.5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import NoSuitableIndexError, N1qlSemanticError
from .catalog import Catalog
from .collation import MISSING
from .expressions import collect_aggregates
from .functions import is_aggregate
from .plan import (
    DistinctOp,
    Fetch,
    Filter,
    FinalProject,
    GroupOp,
    IndexAggregateScan,
    IndexScan,
    InitialProject,
    JoinOp,
    KeyScan,
    LetOp,
    LimitOp,
    NestOp,
    OffsetOp,
    OrderOp,
    PrimaryScan,
    QueryPlan,
    ScanSpan,
    UnnestOp,
)
from .printer import path_of, print_expr
from .syntax import (
    Between,
    Binary,
    Expr,
    FieldAccess,
    FunctionCall,
    Identifier,
    JoinClause,
    Literal,
    NestClause,
    Parameter,
    SelectStatement,
    UnnestClause,
)


@dataclass
class Bounds:
    """Accumulated restrictions on one attribute path."""

    eq: Expr | None = None
    low: Expr | None = None
    low_inclusive: bool = True
    high: Expr | None = None
    high_inclusive: bool = True
    #: WHERE conjuncts *fully absorbed* into these bounds: every row the
    #: bounds admit satisfies the conjunct.  LIKE-prefix ranges are not
    #: recorded (the range is a superset of the matches).  Used for the
    #: LIMIT-pushdown subsumption check.  At most one entry per WHERE
    #: conjunct of the statement being planned.
    __bounds__ = ("sources",)

    sources: list = field(default_factory=list)

    @property
    def restricted(self) -> bool:
        return self.eq is not None or self.low is not None or self.high is not None


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def is_constant(expr: Expr) -> bool:
    """No free identifiers: literals, parameters, and operators/functions
    over them.  Such expressions can become index scan bounds."""
    if isinstance(expr, (Literal, Parameter)):
        return True
    if isinstance(expr, Identifier):
        return False
    if isinstance(expr, FieldAccess):
        return False
    if isinstance(expr, Binary):
        return is_constant(expr.left) and is_constant(expr.right)
    if isinstance(expr, FunctionCall):
        return bool(expr.args) and all(is_constant(a) for a in expr.args) \
            and expr.name != "META"
    from .syntax import Unary, ArrayLiteral
    if isinstance(expr, Unary):
        return is_constant(expr.operand)
    if isinstance(expr, ArrayLiteral):
        return all(is_constant(i) for i in expr.items)
    return False


def extract_bounds(where: Expr | None, alias: str) -> dict[str, Bounds]:
    """Map attribute paths (alias-stripped) to their sargable bounds."""
    bounds: dict[str, Bounds] = {}

    def bound_for(path: str) -> Bounds:
        return bounds.setdefault(path, Bounds())

    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, Binary) and conjunct.op in (
            "=", "<", "<=", ">", ">=",
        ):
            for left, right, op in (
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, _flip(conjunct.op)),
            ):
                path = path_of(left, strip_alias=alias)
                if path is None or not is_constant(right):
                    continue
                b = bound_for(path)
                if op == "=":
                    b.eq = right
                    b.sources.append(conjunct)
                elif op in (">", ">="):
                    if b.low is None:
                        b.low = right
                        b.low_inclusive = op == ">="
                        b.sources.append(conjunct)
                elif op in ("<", "<="):
                    if b.high is None:
                        b.high = right
                        b.high_inclusive = op == "<="
                        b.sources.append(conjunct)
                break
        elif isinstance(conjunct, Between) and not conjunct.negated:
            path = path_of(conjunct.operand, strip_alias=alias)
            if path is not None and is_constant(conjunct.low) \
                    and is_constant(conjunct.high):
                b = bound_for(path)
                if b.low is None and b.high is None:
                    b.sources.append(conjunct)
                if b.low is None:
                    b.low = conjunct.low
                if b.high is None:
                    b.high = conjunct.high
        elif isinstance(conjunct, Binary) and conjunct.op == "LIKE":
            path = path_of(conjunct.left, strip_alias=alias)
            if path is not None and isinstance(conjunct.right, Literal) \
                    and isinstance(conjunct.right.value, str):
                pattern = conjunct.right.value
                prefix = _like_prefix(pattern)
                if prefix:
                    b = bound_for(path)
                    if b.low is None:
                        b.low = Literal(prefix)
                        b.high = Literal(prefix + "￿")
    return bounds


def _flip(op: str) -> str:
    return {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _like_prefix(pattern: str) -> str:
    prefix = []
    for char in pattern:
        if char in ("%", "_"):
            break
        prefix.append(char)
    return "".join(prefix)


def _span_absorbs_where(where: Expr | None, used_bounds: list[Bounds]) -> bool:
    """True when every WHERE conjunct was fully absorbed into a bound the
    scan span actually uses -- i.e. the scan returns only rows the Filter
    would keep anyway.  That is the precondition for pushing LIMIT into
    the scan: stopping the scan early must not starve the filter."""
    absorbed: set[int] = set()
    for b in used_bounds:
        absorbed.update(id(conjunct) for conjunct in b.sources)
    return all(id(conjunct) in absorbed for conjunct in split_conjuncts(where))


def referenced_paths(statement: SelectStatement, alias: str) -> set[str] | None:
    """Dotted paths of ``alias`` referenced anywhere in the statement.

    Returns None when coverage analysis is impossible (``*`` projections
    or whole-document references)."""
    paths: set[str] = set()
    impossible = [False]

    def walk(node):
        if node is None or isinstance(node, (Literal, Parameter, str, bool,
                                             int, float)):
            return
        if isinstance(node, Identifier):
            if node.name == alias:
                impossible[0] = True
            else:
                paths.add(node.name)
            return
        if isinstance(node, FieldAccess):
            path = path_of(node, strip_alias=alias)
            if path is not None:
                paths.add(path)
                return
            walk(node.base)
            return
        if isinstance(node, FunctionCall):
            if node.name == "META":
                paths.add("meta().id")
                return
            for arg in node.args:
                walk(arg)
            return
        for attr in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, attr)
            if isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, tuple):
                        for part in item:
                            walk(part) if not isinstance(part, str) else None
                    else:
                        walk(item)
            elif not isinstance(value, (str, bool, int, float, type(None))):
                walk(value)

    for projection in statement.projections:
        if projection.expr is None:
            return None  # '*' projection: not coverable
        walk(projection.expr)
    walk(statement.where)
    for expr in statement.group_by:
        walk(expr)
    walk(statement.having)
    for term in statement.order_by:
        walk(term.expr)
    for _name, expr in statement.let_bindings:
        walk(expr)
    if statement.joins:
        return None  # joins reference whole documents; keep it simple
    if impossible[0]:
        return None
    return paths


def implies(bounds: dict[str, Bounds], condition: Expr, alias: str) -> bool:
    """Conservatively check that the query's WHERE implies a partial
    index's condition.  Handles conjunctions of single-attribute
    comparisons against literals (the paper's ``WHERE age > 21`` shape);
    anything it cannot prove is treated as not implied."""
    for conjunct in split_conjuncts(condition):
        if not _implies_one(bounds, conjunct, alias):
            return False
    return True


def _implies_one(bounds: dict[str, Bounds], conjunct: Expr, alias: str) -> bool:
    if not isinstance(conjunct, Binary) or conjunct.op not in (
        "=", "<", "<=", ">", ">=",
    ):
        return False
    path = path_of(conjunct.left, strip_alias=alias)
    target = conjunct.right
    op = conjunct.op
    if path is None:
        path = path_of(conjunct.right, strip_alias=alias)
        target = conjunct.left
        op = _flip(op)
    if path is None or not isinstance(target, Literal):
        return False
    b = bounds.get(path)
    if b is None:
        return False
    threshold = target.value

    def literal_value(expr):
        return expr.value if isinstance(expr, Literal) else MISSING

    from .collation import compare
    if b.eq is not None:
        value = literal_value(b.eq)
        if value is MISSING:
            return False
        return {
            "=": compare(value, threshold) == 0,
            ">": compare(value, threshold) > 0,
            ">=": compare(value, threshold) >= 0,
            "<": compare(value, threshold) < 0,
            "<=": compare(value, threshold) <= 0,
        }[op]
    if op in (">", ">=") and b.low is not None:
        value = literal_value(b.low)
        if value is MISSING:
            return False
        order = compare(value, threshold)
        if op == ">":
            return order > 0 or (order == 0 and not b.low_inclusive)
        return order >= 0
    if op in ("<", "<=") and b.high is not None:
        value = literal_value(b.high)
        if value is MISSING:
            return False
        order = compare(value, threshold)
        if op == "<":
            return order < 0 or (order == 0 and not b.high_inclusive)
        return order <= 0
    return False


class Planner:
    """Access-path selection and pipeline assembly (section 4.5.3)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- SELECT ---------------------------------------------------------------------

    def plan_select(self, statement: SelectStatement) -> QueryPlan:
        operators = []
        default_alias = None
        if statement.from_term is not None:
            term = statement.from_term
            if not term.keyspace.startswith("system:"):
                self.catalog.require_keyspace(term.keyspace)
            default_alias = term.alias
            operators.extend(self._plan_access_path(statement, term))
            for clause in statement.joins:
                if isinstance(clause, JoinClause):
                    self.catalog.require_keyspace(clause.keyspace)
                    operators.append(JoinOp(clause.alias, clause.keyspace,
                                            clause.on_keys, clause.outer))
                elif isinstance(clause, NestClause):
                    self.catalog.require_keyspace(clause.keyspace)
                    operators.append(NestOp(clause.alias, clause.keyspace,
                                            clause.on_keys, clause.outer))
                elif isinstance(clause, UnnestClause):
                    operators.append(UnnestOp(clause.alias, clause.expr,
                                              clause.outer))
        if statement.let_bindings:
            operators.append(LetOp(statement.let_bindings))
        if statement.where is not None:
            operators.append(Filter(statement.where))

        aggregate_sources = (
            [p.expr for p in statement.projections if p.expr is not None]
            + ([statement.having] if statement.having is not None else [])
            + [t.expr for t in statement.order_by]
        )
        aggregates = collect_aggregates(aggregate_sources)
        if statement.group_by or aggregates:
            pushed = self._push_group_to_index(statement, operators,
                                               aggregates)
            if pushed is not None:
                operators = pushed
            else:
                operators.append(GroupOp(statement.group_by, aggregates))
        if statement.having is not None:
            operators.append(Filter(statement.having))

        order_terms = self._resolve_order_aliases(statement)
        if order_terms and self._index_provides_order(statement, operators,
                                                      order_terms):
            order_terms = []  # the scan already yields index order
        if order_terms:
            operators.append(OrderOp(order_terms))
        if not order_terms:
            self._push_limit(statement, operators, aggregates)
        if statement.offset is not None:
            operators.append(OffsetOp(statement.offset))
        if statement.limit is not None:
            operators.append(LimitOp(statement.limit))
        operators.append(InitialProject(statement.projections, statement.raw))
        if statement.distinct:
            operators.append(DistinctOp())
        operators.append(FinalProject())
        return QueryPlan(operators, default_alias, "SELECT")

    def _push_limit(self, statement, operators, aggregates) -> None:
        """LIMIT pushdown: when nothing between the scan and the LIMIT
        can drop, multiply, or reorder rows, the scan itself can stop
        after LIMIT (+ OFFSET) entries -- the indexer stops walking the
        tree instead of materializing the whole range (the dominant cost
        of the YCSB-E scan shape)."""
        if statement.limit is None or statement.group_by or aggregates \
                or statement.having is not None or statement.distinct \
                or statement.joins or statement.let_bindings:
            return
        scan = operators[0] if operators else None
        if not isinstance(scan, (IndexScan, PrimaryScan)) \
                or scan.using != "gsi":
            return
        if not getattr(scan, "_filter_subsumed", False):
            return
        limit = statement.limit
        if statement.offset is not None:
            limit = Binary("+", limit, statement.offset)
        scan.limit = limit

    def _push_group_to_index(self, statement, operators,
                             aggregates) -> list | None:
        """Partial-aggregate pushdown (section 5.1): replace a covering
        IndexScan (+ fully subsumed Filter) + Group prefix with an
        IndexAggregateScan, so each index partition groups and partially
        aggregates its own rows and only group summaries cross the
        fabric.  Returns the replacement operator list, or None when the
        rewrite cannot be proven safe.

        Requirements, all planner-proven:

        * the pipeline head is exactly a covering GSI scan, optionally
          followed by the WHERE Filter the scan span already subsumes
          (so dropping it loses nothing);
        * every grouping expression is a *leading prefix* of the index
          keys, in clause order -- that makes the coordinator's merged
          (collation) order identical to the row pipeline's first-seen
          order, since a covering scan sees rows in key order;
        * every aggregate is a non-DISTINCT COUNT/SUM/AVG/MIN/MAX whose
          argument is an index key or meta().id, so the node can fold it
          into a mergeable [count, total, best] partial;
        * everything else the statement references (projections, HAVING,
          ORDER BY) only touches grouping keys, which the scan
          reconstructs into a covered document per group.
        """
        if statement.joins or statement.let_bindings:
            return None
        scan = operators[0] if operators else None
        if isinstance(scan, IndexScan):
            if scan.using != "gsi" or not scan.covered:
                return None
        elif isinstance(scan, PrimaryScan):
            if scan.using != "gsi" or not scan.covered:
                return None
        else:
            return None
        if not getattr(scan, "_filter_subsumed", False):
            return None
        rest = operators[1:]
        if rest and not (len(rest) == 1 and isinstance(rest[0], Filter)):
            return None
        meta = self.catalog.cluster.manager.index_registry.get(scan.index_name)
        if meta is None or meta.definition.array_component is not None:
            return None
        key_sources = meta.definition.key_sources
        alias = statement.from_term.alias
        analysis = self._aggregate_pushdown_analysis(
            statement, alias, key_sources, aggregates)
        if analysis is None:
            return None
        group_paths, group_positions, agg_entries = analysis
        span = (scan.span if isinstance(scan, IndexScan)
                else ScanSpan(low=None, high=None))
        return [IndexAggregateScan(alias, scan.keyspace, scan.index_name,
                                   span, group_paths, group_positions,
                                   agg_entries)]

    def _aggregate_pushdown_analysis(self, statement, alias, key_sources,
                                     aggregates):
        """Prove the GROUP BY / aggregate list is computable from index
        keys alone; returns (group_paths, group_positions, agg_entries)
        or None."""
        group_paths: list[str] = []
        group_positions: list[int] = []
        for expr in statement.group_by:
            path = path_of(expr, strip_alias=alias)
            if path is None or path == "meta().id" \
                    or path not in key_sources:
                return None
            group_paths.append(path)
            group_positions.append(key_sources.index(path))
        # Prefix-in-order: merged collation order == row first-seen order.
        if group_positions != list(range(len(group_positions))):
            return None
        agg_entries: list[tuple[str, str, int | None]] = []
        for aggregate in aggregates:
            if aggregate.distinct \
                    or aggregate.name not in ("COUNT", "SUM", "AVG",
                                              "MIN", "MAX"):
                return None
            if aggregate.star:
                position: int | None = None
            else:
                path = path_of(aggregate.args[0], strip_alias=alias)
                if path == "meta().id":
                    position = -1
                elif path in key_sources:
                    position = key_sources.index(path)
                else:
                    return None
            agg_entries.append(("$agg:" + print_expr(aggregate),
                                aggregate.name, position))
        plain = self._non_aggregate_paths(statement, alias)
        if plain is None or not plain <= set(group_paths):
            return None
        return group_paths, group_positions, agg_entries

    def _non_aggregate_paths(self, statement, alias) -> set[str] | None:
        """Paths referenced outside aggregate arguments in the parts of
        the statement that run *after* grouping (projections, HAVING,
        ORDER BY).  The row pipeline evaluates these against each
        group's representative row; the pushed plan only reconstructs
        the grouping keys, so anything beyond them blocks the rewrite.
        None means analysis is impossible (whole-document reference)."""
        paths: set[str] = set()
        impossible = [False]

        def walk(node):
            if node is None or isinstance(node, (Literal, Parameter)):
                return
            if isinstance(node, Identifier):
                if node.name == alias:
                    impossible[0] = True
                else:
                    paths.add(node.name)
                return
            if isinstance(node, FieldAccess):
                path = path_of(node, strip_alias=alias)
                if path is not None:
                    paths.add(path)
                    return
                walk(node.base)
                return
            if isinstance(node, FunctionCall):
                if is_aggregate(node.name):
                    return  # argument is folded on the index nodes
                if node.name == "META":
                    paths.add("meta().id")
                    return
                for arg in node.args:
                    walk(arg)
                return
            for attr in getattr(node, "__dataclass_fields__", {}):
                value = getattr(node, attr)
                if isinstance(value, (list, tuple)):
                    for item in value:
                        if not isinstance(item, (str, bool, int, float)):
                            walk(item)
                elif not isinstance(value, (str, bool, int, float,
                                            type(None))):
                    walk(value)

        for projection in statement.projections:
            if projection.expr is None:
                return None  # '*' needs the whole document
            walk(projection.expr)
        walk(statement.having)
        for term in self._resolve_order_aliases(statement):
            walk(term.expr)
        if impossible[0]:
            return None
        return paths

    def _index_provides_order(self, statement, operators,
                              order_terms) -> bool:
        """Sort elimination: a single ascending ORDER BY on the scan's
        leading index key is already satisfied by the index scan (GSI
        scans return entries in key order, and the coordinator merges
        partitions ordered)."""
        if statement.group_by or statement.distinct or statement.joins:
            return False
        if len(order_terms) != 1 or order_terms[0].descending:
            return False
        scan = operators[0] if operators else None
        if not isinstance(scan, IndexScan) or scan.using != "gsi":
            return False
        meta = self.catalog.cluster.manager.index_registry.get(scan.index_name)
        if meta is None:
            return False
        leading = meta.definition.key_sources[0]
        alias = statement.from_term.alias
        order_path = path_of(order_terms[0].expr, strip_alias=alias)
        return order_path == leading

    def _resolve_order_aliases(self, statement: SelectStatement):
        """ORDER BY may name projection aliases; rewrite those to the
        projected expressions."""
        alias_map = {
            p.alias: p.expr
            for p in statement.projections
            if p.alias and p.expr is not None
        }
        terms = []
        from .syntax import OrderTerm
        for term in statement.order_by:
            expr = term.expr
            if isinstance(expr, Identifier) and expr.name in alias_map:
                expr = alias_map[expr.name]
            terms.append(OrderTerm(expr, term.descending))
        return terms

    # -- access paths ---------------------------------------------------------------------

    def _plan_access_path(self, statement: SelectStatement, term) -> list:
        if term.keyspace.startswith("system:"):
            from .plan import SystemScan
            what = term.keyspace.split(":", 1)[1]
            if what not in ("indexes", "keyspaces", "nodes"):
                raise N1qlSemanticError(
                    f"unknown system keyspace {term.keyspace!r}"
                )
            return [SystemScan(term.alias, what)]
        if term.use_keys is not None:
            return [KeyScan(term.alias, term.keyspace, term.use_keys),
                    Fetch(term.alias, term.keyspace)]

        bounds = extract_bounds(statement.where, term.alias)
        choice = self._choose_index(statement, term, bounds)
        if choice is not None:
            return choice

        # Fall back to a primary scan (section 5.1.1 warns about these).
        primary = self.catalog.gsi_primary(term.keyspace)
        if primary is not None:
            # The primary index yields meta().id itself: queries that
            # reference nothing else (the YCSB-E scan shape) skip the
            # Fetch entirely, just like a covering secondary index.
            referenced = referenced_paths(statement, term.alias)
            covered = referenced is not None and referenced <= {"meta().id"}
            id_bounds = bounds.get("meta().id")
            span = _span_from_bounds([id_bounds] if id_bounds else [])
            if id_bounds is not None and id_bounds.restricted:
                scan = IndexScan(term.alias, term.keyspace,
                                 primary.definition.name, span, using="gsi",
                                 covered=covered, cover_paths=[])
                scan._filter_subsumed = _span_absorbs_where(
                    statement.where, [id_bounds])
                if covered:
                    return [scan]
                return [scan, Fetch(term.alias, term.keyspace)]
            scan = PrimaryScan(term.alias, term.keyspace,
                               primary.definition.name, "gsi",
                               covered=covered)
            scan._filter_subsumed = statement.where is None
            if covered:
                return [scan]
            return [scan, Fetch(term.alias, term.keyspace)]
        view_primary = self.catalog.view_primary(term.keyspace)
        if view_primary is not None:
            return [
                PrimaryScan(term.alias, term.keyspace, view_primary.name,
                            "view"),
                Fetch(term.alias, term.keyspace),
            ]
        raise NoSuitableIndexError(term.keyspace)

    def _choose_index(self, statement, term, bounds) -> list | None:
        candidates = []
        for meta in self.catalog.gsi_indexes(term.keyspace):
            definition = meta.definition
            if definition.is_primary:
                continue
            if definition.condition is not None:
                condition_expr = getattr(definition, "condition_expr", None)
                if condition_expr is None or not implies(
                    bounds, condition_expr, term.alias
                ):
                    continue
            sargable = self._sargable_prefix(definition, bounds)
            if sargable == 0:
                continue
            covered, cover_paths = self._coverage(statement, term, definition)
            candidates.append((sargable, covered, definition, cover_paths))
        for info in self.catalog.view_indexes_on(term.keyspace):
            if info.is_primary:
                continue
            b = bounds.get(info.attribute)
            if b is not None and b.restricted:
                candidates.append((1, False, info, []))
        if not candidates:
            return None
        candidates.sort(
            key=lambda c: (c[0], c[1], getattr(c[2], "name", "")), reverse=True
        )
        sargable, covered, chosen, cover_paths = candidates[0]
        if hasattr(chosen, "extractors"):  # a GSI IndexDefinition
            span, used = self._build_span(chosen, bounds)
            scan = IndexScan(term.alias, term.keyspace, chosen.name, span,
                             using="gsi", covered=covered,
                             cover_paths=cover_paths)
            # Array indexes can emit a doc per element, so an early stop
            # could under-count; plain indexes qualify for LIMIT pushdown
            # when the span subsumes the whole WHERE clause.
            scan._filter_subsumed = (
                chosen.array_component is None
                and _span_absorbs_where(statement.where, used)
            )
            if covered:
                return [scan]
            return [scan, Fetch(term.alias, term.keyspace)]
        # View-backed index.
        b = bounds[chosen.attribute]
        span = _span_from_bounds([b])
        scan = IndexScan(term.alias, term.keyspace, chosen.name, span,
                         using="view")
        scan.view_design = chosen.design
        scan.view_name = chosen.view
        return [scan, Fetch(term.alias, term.keyspace)]

    def _sargable_prefix(self, definition, bounds) -> int:
        """How many leading index keys the WHERE clause constrains
        (equalities extend the prefix; the first range ends it)."""
        count = 0
        for path in definition.key_sources:
            b = bounds.get(path)
            if definition.array_component is not None:
                # Array index: sargable when the element path is bounded.
                source = definition.key_sources[0]
                element = source.replace("distinct array ", "")
                b = bounds.get(element)
                return 1 if (b is not None and b.restricted) else 0
            if b is None or not b.restricted:
                break
            count += 1
            if b.eq is None:
                break  # range ends the usable prefix
        return count

    def _coverage(self, statement, term, definition) -> tuple[bool, list[str]]:
        if definition.array_component is not None:
            return False, []
        referenced = referenced_paths(statement, term.alias)
        if referenced is None:
            return False, []
        available = set(definition.key_sources) | {"meta().id"}
        if definition.condition_source:
            pass  # condition attrs need not be fetched; WHERE implied it
        covered = referenced <= available
        return covered, list(definition.key_sources)

    def _build_span(self, definition, bounds) -> tuple[ScanSpan, list[Bounds]]:
        lows: list[Expr] = []
        highs: list[Expr] = []
        inclusive_low = inclusive_high = True
        used: list[Bounds] = []
        for path in definition.key_sources:
            if definition.array_component is not None:
                element = path.replace("distinct array ", "")
                b = bounds.get(element)
            else:
                b = bounds.get(path)
            if b is None or not b.restricted:
                break
            used.append(b)
            if b.eq is not None:
                lows.append(b.eq)
                highs.append(b.eq)
                continue
            if b.low is not None:
                lows.append(b.low)
                inclusive_low = b.low_inclusive
            if b.high is not None:
                highs.append(b.high)
                inclusive_high = b.high_inclusive
            break
        span = ScanSpan(
            low=lows or None,
            high=highs or None,
            inclusive_low=inclusive_low,
            inclusive_high=inclusive_high,
        )
        return span, used


def _span_from_bounds(bound_list) -> ScanSpan:
    if not bound_list or bound_list[0] is None:
        return ScanSpan(low=None, high=None)
    b = bound_list[0]
    if b.eq is not None:
        return ScanSpan(low=[b.eq], high=[b.eq])
    return ScanSpan(
        low=[b.low] if b.low is not None else None,
        high=[b.high] if b.high is not None else None,
        inclusive_low=b.low_inclusive,
        inclusive_high=b.high_inclusive,
    )
