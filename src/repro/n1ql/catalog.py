"""The query catalog.

Section 4.3.5: "This Query Service component provides catalog support
for the Query Service", covering keyspaces and index metadata.  The
planner asks it which access paths exist for a keyspace: GSI indexes
(from the cluster-wide index registry) and view-backed indexes (from
the design-document registry entries that CREATE INDEX ... USING VIEW
produced).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import N1qlSemanticError


@dataclass
class ViewIndexInfo:
    """Metadata for a CREATE INDEX ... USING VIEW index."""

    name: str
    bucket: str
    attribute: str      # dotted path the view emits
    design: str
    view: str
    is_primary: bool = False


class Catalog:
    """Planner-facing metadata access."""

    #: Design doc that holds the N1QL-created views.
    N1QL_DESIGN = "_n1ql"

    def __init__(self, cluster):
        self.cluster = cluster
        #: name -> ViewIndexInfo for USING VIEW indexes.
        self.view_indexes: dict[str, ViewIndexInfo] = {}
        #: Bumped on view-index DDL; folded into :meth:`current_epoch`.
        self._view_epoch = 0

    # -- keyspaces ---------------------------------------------------------------

    def require_keyspace(self, name: str) -> None:
        if name not in self.cluster.manager.bucket_configs:
            raise N1qlSemanticError(f"keyspace {name!r} does not exist")

    # -- DDL epoch ---------------------------------------------------------------

    def current_epoch(self) -> tuple:
        """Composite DDL epoch: moves whenever anything the planner could
        have consulted changes — GSI index set (create/drop/build),
        keyspaces (create/drop bucket), or view indexes.  Cached and
        prepared plans carry the epoch they were built under; a mismatch
        at lookup/EXECUTE time forces a re-plan."""
        manager = self.cluster.manager
        return (
            manager.index_registry.epoch,
            getattr(manager, "ddl_epoch", 0),
            self._view_epoch,
        )

    # -- GSI metadata -------------------------------------------------------------

    def gsi_indexes(self, bucket: str) -> list:
        registry = self.cluster.manager.index_registry
        return [
            meta for meta in registry.indexes_on(bucket)
            if meta.state == "ready"
        ]

    def gsi_primary(self, bucket: str):
        for meta in self.gsi_indexes(bucket):
            if meta.definition.is_primary:
                return meta
        return None

    # -- view indexes ---------------------------------------------------------------

    def add_view_index(self, info: ViewIndexInfo) -> None:
        if info.name in self.view_indexes:
            from ..common.errors import IndexExistsError
            raise IndexExistsError(info.name)
        self.view_indexes[info.name] = info
        self._view_epoch += 1

    def drop_view_index(self, name: str) -> ViewIndexInfo:
        from ..common.errors import IndexNotFoundError
        if name not in self.view_indexes:
            raise IndexNotFoundError(name)
        info = self.view_indexes.pop(name)
        self._view_epoch += 1
        return info

    def view_indexes_on(self, bucket: str) -> list[ViewIndexInfo]:
        return [
            info for info in self.view_indexes.values()
            if info.bucket == bucket
        ]

    def view_primary(self, bucket: str) -> ViewIndexInfo | None:
        for info in self.view_indexes_on(bucket):
            if info.is_primary:
                return info
        return None
