"""N1QL lexer.

Tokenizes the SQL-inspired surface of section 3.2: keywords, plain and
backtick-quoted identifiers, single/double-quoted strings, numbers,
operators, and the positional (``$1``/``?``) and named (``$name``)
parameters the YCSB workload-E query uses
(``SELECT meta().id FROM bucket WHERE meta().id >= $1 LIMIT $2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import N1qlSyntaxError

KEYWORDS = {
    "ALL", "AND", "ANY", "ARRAY", "AS", "ASC", "BETWEEN", "BUILD", "BY",
    "CASE", "CREATE", "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "END",
    "EVERY", "EXISTS", "EXPLAIN", "FALSE", "FOR", "FROM", "GROUP", "HAVING",
    "IN", "INDEX", "INNER", "INSERT", "INTO", "IS", "JOIN", "KEY", "KEYS",
    "EXECUTE", "LEFT", "LET", "LIKE", "LIMIT", "MISSING", "NEST", "NOT",
    "NULL", "ON", "OFFSET", "OR", "ORDER", "OUTER", "PREPARE", "PRIMARY",
    "RAW", "RETURNING",
    "SATISFIES", "SELECT", "SET", "THEN", "TRUE", "UNNEST", "UNSET",
    "UPDATE", "UPSERT", "USE", "USING", "VALUE", "VALUES", "WHEN", "WHERE",
    "WITH",
}

#: Multi-character operators first so maximal munch works.
OPERATORS = [
    "||", "<=", ">=", "==", "!=", "<>", "=", "<", ">", "+", "-", "*", "/",
    "%", "(", ")", "[", "]", "{", "}", ",", ".", ":", ";",
]


@dataclass
class Token:
    kind: str  # "keyword" | "ident" | "string" | "number" | "op" | "param" | "eof"
    value: str | int | float
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.value in ops


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return position - line_start + 1

    def error(message: str):
        return N1qlSyntaxError(message, line, column())

    while position < length:
        char = text[position]
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char.isspace():
            position += 1
            continue
        if text.startswith("--", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise error("unterminated block comment")
            for i in range(position, end):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
            position = end + 2
            continue

        start_line, start_col = line, column()

        # Strings (single or double quoted; doubled quote escapes).
        if char in ("'", '"'):
            quote = char
            position += 1
            parts: list[str] = []
            while True:
                if position >= length:
                    raise error("unterminated string literal")
                current = text[position]
                if current == quote:
                    if position + 1 < length and text[position + 1] == quote:
                        parts.append(quote)
                        position += 2
                        continue
                    position += 1
                    break
                if current == "\\" and position + 1 < length:
                    escape = text[position + 1]
                    mapping = {"n": "\n", "t": "\t", "\\": "\\",
                               "'": "'", '"': '"'}
                    parts.append(mapping.get(escape, escape))
                    position += 2
                    continue
                parts.append(current)
                position += 1
            tokens.append(Token("string", "".join(parts), start_line, start_col))
            continue

        # Backtick-quoted identifiers (`Profile`).
        if char == "`":
            end = text.find("`", position + 1)
            if end == -1:
                raise error("unterminated backtick identifier")
            tokens.append(Token("ident", text[position + 1:end],
                                start_line, start_col))
            position = end + 1
            continue

        # Numbers.
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            end = position
            seen_dot = False
            seen_exp = False
            while end < length:
                current = text[end]
                if current.isdigit():
                    end += 1
                elif current == "." and not seen_dot and not seen_exp:
                    # Don't swallow "1.x" where x is not a digit (that is
                    # field access on a number literal -- invalid anyway).
                    if end + 1 < length and text[end + 1].isdigit():
                        seen_dot = True
                        end += 1
                    else:
                        break
                elif current in "eE" and not seen_exp and end + 1 < length and (
                    text[end + 1].isdigit()
                    or (text[end + 1] in "+-" and end + 2 < length
                        and text[end + 2].isdigit())
                ):
                    seen_exp = True
                    end += 2 if text[end + 1] in "+-" else 1
                else:
                    break
            raw = text[position:end]
            value: int | float = float(raw) if ("." in raw or "e" in raw.lower()) else int(raw)
            tokens.append(Token("number", value, start_line, start_col))
            position = end
            continue

        # Parameters: $1, $name, ?.
        if char == "$":
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == position + 1:
                raise error("bare '$' is not a valid parameter")
            tokens.append(Token("param", text[position + 1:end],
                                start_line, start_col))
            position = end
            continue
        if char == "?":
            tokens.append(Token("param", "?", start_line, start_col))
            position += 1
            continue

        # Identifiers / keywords.
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start_line, start_col))
            else:
                tokens.append(Token("ident", word, start_line, start_col))
            position = end
            continue

        # Operators.
        for op in OPERATORS:
            if text.startswith(op, position):
                tokens.append(Token("op", op, start_line, start_col))
                position += len(op)
                break
        else:
            raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column()))
    return tokens
