"""N1QL expression evaluation.

Evaluates AST expressions against a row environment, honoring the
non-first-normal-form value discipline (section 3.2.1):

* A reference to an absent field yields **MISSING** (not an error).
* Comparisons involving MISSING yield MISSING; involving NULL yield
  NULL.  WHERE keeps a row only when the predicate is exactly TRUE.
* Arithmetic on non-numbers yields NULL.

Rows are :class:`Env` chains: alias -> document value, with document
metadata in a parallel namespace for ``META()``.  LET bindings,
UNNEST/comprehension variables, and group aggregates extend the chain.
"""

from __future__ import annotations

import re
from typing import Any

from ..common.errors import N1qlRuntimeError, N1qlSemanticError
from .collation import MISSING, compare
from .functions import SCALARS, is_aggregate
from .printer import print_expr
from .syntax import (
    ArrayComprehension,
    ArrayLiteral,
    Between,
    Binary,
    CaseExpr,
    CollectionPredicate,
    ElementAccess,
    Expr,
    FieldAccess,
    FunctionCall,
    Identifier,
    InList,
    IsPredicate,
    Literal,
    MissingLiteral,
    ObjectLiteral,
    Parameter,
    Unary,
)


class Env:
    """A chained environment: name -> value, plus per-alias metadata."""

    __slots__ = ("values", "metas", "parent")

    #: One frame holds at most one binding per alias/LET name of the
    #: query; frames live for one row of one operator.
    __bounds__ = ("values", "metas")

    def __init__(self, parent: "Env | None" = None):
        self.values: dict[str, Any] = {}
        self.metas: dict[str, dict] = {}
        self.parent = parent

    def bind(self, name: str, value: Any, meta: dict | None = None) -> None:
        self.values[name] = value
        if meta is not None:
            self.metas[name] = meta

    def lookup(self, name: str) -> tuple[bool, Any]:
        env: Env | None = self
        while env is not None:
            if name in env.values:
                return True, env.values[name]
            env = env.parent
        return False, MISSING

    def lookup_meta(self, name: str) -> dict | None:
        env: Env | None = self
        while env is not None:
            if name in env.metas:
                return env.metas[name]
            env = env.parent
        return None

    def child(self) -> "Env":
        return Env(self)

    def aliases(self) -> list[str]:
        names: list[str] = []
        env: Env | None = self
        while env is not None:
            names.extend(env.metas.keys())
            env = env.parent
        return names


class Evaluator:
    """Expression evaluator bound to query parameters and an (optional)
    default keyspace alias for unqualified field references."""

    def __init__(self, params: dict[str, Any] | None = None,
                 default_alias: str | None = None):
        self.params = params if params is not None else {}
        self.default_alias = default_alias
        #: Canonical-source -> value map for pre-computed aggregates,
        #: installed by the grouping operator before final projection.
        self.aggregate_values: dict[str, Any] = {}

    # -- entry points -----------------------------------------------------------------

    def evaluate(self, expr: Expr, env: Env) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise N1qlRuntimeError(
                f"no evaluator for {type(expr).__name__}"
            )
        return method(expr, env)

    def truthy(self, expr: Expr, env: Env) -> bool:
        """WHERE/HAVING semantics: keep the row only on exact TRUE."""
        return self.evaluate(expr, env) is True

    # -- leaves ------------------------------------------------------------------------

    def _eval_Literal(self, expr: Literal, env: Env) -> Any:
        return expr.value

    def _eval_MissingLiteral(self, expr: MissingLiteral, env: Env) -> Any:
        return MISSING

    def _eval_Parameter(self, expr: Parameter, env: Env) -> Any:
        if expr.name not in self.params:
            raise N1qlSemanticError(f"no value supplied for parameter ${expr.name}")
        return self.params[expr.name]

    def _eval_Identifier(self, expr: Identifier, env: Env) -> Any:
        found, value = env.lookup(expr.name)
        if found:
            return value
        if self.default_alias is not None:
            found, doc = env.lookup(self.default_alias)
            if found and isinstance(doc, dict):
                return doc.get(expr.name, MISSING)
        return MISSING

    # -- structure access ---------------------------------------------------------------

    def _eval_FieldAccess(self, expr: FieldAccess, env: Env) -> Any:
        base = self.evaluate(expr.base, env)
        if isinstance(base, dict):
            return base.get(expr.field, MISSING)
        return MISSING

    def _eval_ElementAccess(self, expr: ElementAccess, env: Env) -> Any:
        base = self.evaluate(expr.base, env)
        index = self.evaluate(expr.index, env)
        if isinstance(base, list) and isinstance(index, (int, float)) \
                and not isinstance(index, bool):
            i = int(index)
            if -len(base) <= i < len(base):
                return base[i]
            return MISSING
        if isinstance(base, dict) and isinstance(index, str):
            return base.get(index, MISSING)
        return MISSING

    # -- operators ------------------------------------------------------------------------

    def _eval_Unary(self, expr: Unary, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        if expr.op == "NOT":
            if value is MISSING:
                return MISSING
            if value is None:
                return None
            if isinstance(value, bool):
                return not value
            return None
        if expr.op == "-":
            if value is MISSING:
                return MISSING
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return -value
            return None
        raise N1qlRuntimeError(f"unknown unary operator {expr.op}")

    def _eval_Binary(self, expr: Binary, env: Env) -> Any:
        op = expr.op
        if op == "AND":
            left = self.evaluate(expr.left, env)
            if left is False:
                return False
            right = self.evaluate(expr.right, env)
            if right is False:
                return False
            if left is True and right is True:
                return True
            if left is MISSING or right is MISSING:
                return MISSING
            return None
        if op == "OR":
            left = self.evaluate(expr.left, env)
            if left is True:
                return True
            right = self.evaluate(expr.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            if left is MISSING or right is MISSING:
                return MISSING
            return False
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            if left is MISSING or right is MISSING:
                return MISSING
            if left is None or right is None:
                return None
            order = compare(left, right)
            return {
                "=": order == 0,
                "!=": order != 0,
                "<": order < 0,
                "<=": order <= 0,
                ">": order > 0,
                ">=": order >= 0,
            }[op]
        if op in ("LIKE", "NOT LIKE"):
            if left is MISSING or right is MISSING:
                return MISSING
            if not isinstance(left, str) or not isinstance(right, str):
                return None
            matched = _like_match(right, left)
            return (not matched) if op == "NOT LIKE" else matched
        if op == "||":
            if left is MISSING or right is MISSING:
                return MISSING
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return None
        if op in ("+", "-", "*", "/", "%"):
            if left is MISSING or right is MISSING:
                return MISSING
            if not _is_number(left) or not _is_number(right):
                return None
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right if right != 0 else None
            return left % right if right != 0 else None
        raise N1qlRuntimeError(f"unknown binary operator {op}")

    def _eval_Between(self, expr: Between, env: Env) -> Any:
        operand = self.evaluate(expr.operand, env)
        low = self.evaluate(expr.low, env)
        high = self.evaluate(expr.high, env)
        if MISSING in (operand, low, high):
            return MISSING
        if None in (operand, low, high):
            return None
        inside = compare(operand, low) >= 0 and compare(operand, high) <= 0
        return (not inside) if expr.negated else inside

    def _eval_InList(self, expr: InList, env: Env) -> Any:
        operand = self.evaluate(expr.operand, env)
        items = self.evaluate(expr.items, env)
        if operand is MISSING or items is MISSING:
            return MISSING
        if not isinstance(items, list):
            return None
        found = any(compare(operand, item) == 0 for item in items)
        return (not found) if expr.negated else found

    def _eval_IsPredicate(self, expr: IsPredicate, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        if expr.what == "NULL":
            if value is MISSING:
                return MISSING
            answer = value is None
        elif expr.what == "MISSING":
            answer = value is MISSING
        else:  # VALUED
            answer = value is not MISSING and value is not None
        return (not answer) if expr.negated else answer

    # -- composites -----------------------------------------------------------------------

    def _eval_ArrayLiteral(self, expr: ArrayLiteral, env: Env) -> Any:
        out = []
        for item in expr.items:
            value = self.evaluate(item, env)
            out.append(None if value is MISSING else value)
        return out

    def _eval_ObjectLiteral(self, expr: ObjectLiteral, env: Env) -> Any:
        out = {}
        for key, value_expr in expr.pairs:
            value = self.evaluate(value_expr, env)
            if value is not MISSING:
                out[key] = value
        return out

    def _eval_CaseExpr(self, expr: CaseExpr, env: Env) -> Any:
        for condition, result in expr.whens:
            if self.evaluate(condition, env) is True:
                return self.evaluate(result, env)
        if expr.else_result is not None:
            return self.evaluate(expr.else_result, env)
        return None

    def _eval_CollectionPredicate(self, expr: CollectionPredicate,
                                  env: Env) -> Any:
        collection = self.evaluate(expr.collection, env)
        if collection is MISSING:
            return MISSING
        if not isinstance(collection, list):
            return None
        child = env.child()
        if expr.quantifier == "ANY":
            for item in collection:
                child.values[expr.variable] = item
                if self.evaluate(expr.condition, child) is True:
                    return True
            return False
        for item in collection:
            child.values[expr.variable] = item
            if self.evaluate(expr.condition, child) is not True:
                return False
        return len(collection) > 0

    def _eval_ArrayComprehension(self, expr: ArrayComprehension,
                                 env: Env) -> Any:
        collection = self.evaluate(expr.collection, env)
        if collection is MISSING:
            return MISSING
        if not isinstance(collection, list):
            return None
        child = env.child()
        out: list = []
        for item in collection:
            child.values[expr.variable] = item
            if expr.condition is not None and \
                    self.evaluate(expr.condition, child) is not True:
                continue
            value = self.evaluate(expr.output, child)
            if value is MISSING:
                continue
            if expr.distinct and any(compare(value, v) == 0 for v in out):
                continue
            out.append(value)
        return out

    # -- functions -----------------------------------------------------------------------

    def _eval_FunctionCall(self, expr: FunctionCall, env: Env) -> Any:
        name = expr.name
        if name == "META":
            return self._eval_meta(expr, env)
        if is_aggregate(name):
            canonical = "$agg:" + print_expr(expr)
            found, value = env.lookup(canonical)
            if found:
                return value
            if canonical[5:] in self.aggregate_values:
                return self.aggregate_values[canonical[5:]]
            raise N1qlSemanticError(
                f"aggregate {name} used outside GROUP BY context"
            )
        fn = SCALARS.get(name)
        if fn is None:
            raise N1qlSemanticError(f"unknown function {name}()")
        args = [self.evaluate(a, env) for a in expr.args]
        return fn(args)

    def _eval_meta(self, expr: FunctionCall, env: Env) -> Any:
        if expr.args:
            if not isinstance(expr.args[0], Identifier):
                raise N1qlSemanticError("META() takes a keyspace alias")
            alias = expr.args[0].name
        elif self.default_alias is not None:
            alias = self.default_alias
        else:
            aliases = env.aliases()
            if len(aliases) != 1:
                raise N1qlSemanticError(
                    "META() without an alias is ambiguous here"
                )
            alias = aliases[0]
        meta = env.lookup_meta(alias)
        if meta is not None:
            return meta
        bound, _value = env.lookup(alias)
        if not bound and (self.default_alias is None
                          or alias != self.default_alias):
            raise N1qlSemanticError(f"META(): unknown keyspace alias {alias!r}")
        return MISSING


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _like_match(pattern: str, text: str) -> bool:
    """SQL LIKE: % = any run, _ = any single character."""
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, text, flags=re.DOTALL) is not None


def collect_aggregates(exprs: list[Expr]) -> list[FunctionCall]:
    """Find every aggregate call in a list of expressions (deduplicated
    by canonical print)."""
    seen: dict[str, FunctionCall] = {}

    def walk(node):
        if isinstance(node, FunctionCall):
            if is_aggregate(node.name):
                seen.setdefault(print_expr(node), node)
                return  # nested aggregates are invalid; don't recurse
            for arg in node.args:
                walk(arg)
            return
        for attr in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, attr)
            if isinstance(value, Expr):
                walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Expr):
                        walk(item)
                    elif isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, Expr):
                                walk(part)

    for expr in exprs:
        if expr is not None:
            walk(expr)
    return list(seen.values())
