"""Plan execution: wires operators into a generator pipeline.

Section 4.5.2: "Once a query plan has been constructed ... the query
service coordinates first with the index service and then with the data
service.  The query results are streamed to the client as they become
available."  The generator chain here is exactly that streaming shape.

Two executor tables implement the same operator vocabulary: the
row-at-a-time pipeline (one generator hop per Env) and the
batch-vectorized pipeline of :mod:`repro.n1ql.batch` (one hop per
:data:`~repro.n1ql.batch.BATCH_SIZE` rows).  ``batch.BATCH_ENABLED``
selects between them per query; both yield the identical result stream.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from ..common.errors import N1qlRuntimeError
from . import batch
from .expressions import Env
from .operators import (
    ExecutionContext,
    run_distinct,
    run_fetch,
    run_filter,
    run_final_project,
    run_group,
    run_index_aggregate,
    run_index_scan,
    run_initial_project,
    run_join,
    run_key_scan,
    run_let,
    run_limit,
    run_nest,
    run_offset,
    run_order,
    run_primary_scan,
    run_system_scan,
    run_unnest,
)
from .plan import (
    DistinctOp,
    Fetch,
    Filter,
    FinalProject,
    GroupOp,
    IndexAggregateScan,
    IndexScan,
    InitialProject,
    JoinOp,
    KeyScan,
    LetOp,
    LimitOp,
    NestOp,
    OffsetOp,
    OrderOp,
    PrimaryScan,
    QueryPlan,
    SystemScan,
    UnnestOp,
)

_SOURCES = {
    KeyScan: run_key_scan,
    IndexScan: run_index_scan,
    PrimaryScan: run_primary_scan,
    SystemScan: run_system_scan,
    IndexAggregateScan: run_index_aggregate,
}

_TRANSFORMS = {
    Fetch: run_fetch,
    Filter: run_filter,
    LetOp: run_let,
    JoinOp: run_join,
    NestOp: run_nest,
    UnnestOp: run_unnest,
    GroupOp: run_group,
    OrderOp: run_order,
    OffsetOp: run_offset,
    LimitOp: run_limit,
    InitialProject: run_initial_project,
    DistinctOp: run_distinct,
    FinalProject: run_final_project,
}

_BATCH_SOURCES = {
    KeyScan: batch.run_key_scan_batch,
    IndexScan: batch.run_index_scan_batch,
    PrimaryScan: batch.run_primary_scan_batch,
    SystemScan: batch.run_system_scan_batch,
    IndexAggregateScan: batch.run_index_aggregate_batch,
}

_BATCH_TRANSFORMS = {
    Fetch: batch.run_fetch_batch,
    Filter: batch.run_filter_batch,
    LetOp: batch.run_let_batch,
    JoinOp: batch.run_join_batch,
    NestOp: batch.run_nest_batch,
    UnnestOp: batch.run_unnest_batch,
    GroupOp: batch.run_group_batch,
    OrderOp: batch.run_order_batch,
    OffsetOp: batch.run_offset_batch,
    LimitOp: batch.run_limit_batch,
    InitialProject: batch.run_initial_project_batch,
    DistinctOp: batch.run_distinct_batch,
    FinalProject: batch.run_final_project_batch,
}


def _wire(plan: QueryPlan, ctx: ExecutionContext, sources: dict,
          transforms: dict, empty_stream: Iterator) -> Iterator:
    operators = plan.operators
    stream: Iterator = empty_stream
    start = 0
    first = operators[0]
    source = sources.get(type(first))
    if source is not None:
        stream = source(first, ctx)
        start = 1
    for op in operators[start:]:
        transform = transforms.get(type(op))
        if transform is None:
            raise N1qlRuntimeError(
                f"no executor for plan operator {type(op).__name__}"
            )
        stream = transform(op, ctx, stream)
    return stream


def execute_plan(plan: QueryPlan, ctx: ExecutionContext) -> Iterator[Any]:
    """Run the pipeline; yields final result values."""
    if not plan.operators:
        return iter(())
    if batch.BATCH_ENABLED:
        # No FROM clause: a single empty row flows through the pipeline
        # (SELECT 1+1 style).
        batches = _wire(plan, ctx, _BATCH_SOURCES, _BATCH_TRANSFORMS,
                        iter([[Env()]]))
        return itertools.chain.from_iterable(batches)
    return _wire(plan, ctx, _SOURCES, _TRANSFORMS, iter([Env()]))
