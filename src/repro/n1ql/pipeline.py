"""Plan execution: wires operators into a generator pipeline.

Section 4.5.2: "Once a query plan has been constructed ... the query
service coordinates first with the index service and then with the data
service.  The query results are streamed to the client as they become
available."  The generator chain here is exactly that streaming shape.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.errors import N1qlRuntimeError
from .expressions import Env
from .operators import (
    ExecutionContext,
    run_distinct,
    run_fetch,
    run_filter,
    run_final_project,
    run_group,
    run_index_scan,
    run_initial_project,
    run_join,
    run_key_scan,
    run_let,
    run_limit,
    run_nest,
    run_offset,
    run_order,
    run_primary_scan,
    run_system_scan,
    run_unnest,
)
from .plan import (
    DistinctOp,
    Fetch,
    Filter,
    FinalProject,
    GroupOp,
    IndexScan,
    InitialProject,
    JoinOp,
    KeyScan,
    LetOp,
    LimitOp,
    NestOp,
    OffsetOp,
    OrderOp,
    PrimaryScan,
    QueryPlan,
    UnnestOp,
)

from .plan import SystemScan

_SOURCES = {
    KeyScan: run_key_scan,
    IndexScan: run_index_scan,
    PrimaryScan: run_primary_scan,
    SystemScan: run_system_scan,
}

_TRANSFORMS = {
    Fetch: run_fetch,
    Filter: run_filter,
    LetOp: run_let,
    JoinOp: run_join,
    NestOp: run_nest,
    UnnestOp: run_unnest,
    GroupOp: run_group,
    OrderOp: run_order,
    OffsetOp: run_offset,
    LimitOp: run_limit,
    InitialProject: run_initial_project,
    DistinctOp: run_distinct,
    FinalProject: run_final_project,
}


def execute_plan(plan: QueryPlan, ctx: ExecutionContext) -> Iterator[Any]:
    """Run the pipeline; yields final result values."""
    operators = plan.operators
    if not operators:
        return iter(())
    stream: Iterator = None  # type: ignore[assignment]
    start = 0
    first = operators[0]
    source = _SOURCES.get(type(first))
    if source is not None:
        stream = source(first, ctx)
        start = 1
    else:
        # No FROM clause: a single empty row flows through the pipeline
        # (SELECT 1+1 style).
        stream = iter([Env()])
    for op in operators[start:]:
        transform = _TRANSFORMS.get(type(op))
        if transform is None:
            raise N1qlRuntimeError(
                f"no executor for plan operator {type(op).__name__}"
            )
        stream = transform(op, ctx, stream)
    return stream
