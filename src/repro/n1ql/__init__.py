"""N1QL: the SQL-for-JSON query language of section 3.2 -- lexer,
parser, expression evaluation with MISSING semantics, JSON collation,
access-path planner (KeyScan / IndexScan / PrimaryScan, covering
indexes, key-based joins), streaming operator pipeline, DML, and the
per-node query service.

Submodules are imported lazily: the GSI layer depends on
:mod:`repro.n1ql.collation`, and eagerly importing the query service
here would close an import cycle back into GSI.
"""

from .collation import MISSING, compare, sort_key

__all__ = [
    "Catalog",
    "Env",
    "Evaluator",
    "MISSING",
    "Planner",
    "QueryResult",
    "QueryService",
    "ViewIndexInfo",
    "compare",
    "parse",
    "print_expr",
    "sort_key",
]

_LAZY = {
    "Catalog": ("catalog", "Catalog"),
    "ViewIndexInfo": ("catalog", "ViewIndexInfo"),
    "Env": ("expressions", "Env"),
    "Evaluator": ("expressions", "Evaluator"),
    "parse": ("parser", "parse"),
    "Planner": ("planner", "Planner"),
    "print_expr": ("printer", "print_expr"),
    "QueryResult": ("service", "QueryResult"),
    "QueryService": ("service", "QueryService"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib
        module_name, attr = _LAZY[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
