"""Query execution operators.

Each plan node has an executor that transforms a stream of row
environments (section 4.5.3's pipeline).  Scans produce rows; Fetch
reaches into the data service by key ("an index only contains document
IDs, so the fetch operator is needed whenever a query includes
additional projections that cannot be answered from the index alone",
section 4.5.3); the join family performs nested-loop key lookups; and
the two projection phases shape the final JSON.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterator

from ..common.boundsmodel import bounded
from ..common.costmodel import cost, hot_path
from ..common.errors import KeyNotFoundError, N1qlRuntimeError
from .collation import MISSING
from .compile import compile_expr, compile_sort_key
from .expressions import Env, Evaluator
from .functions import _COUNT_STAR, Accumulator
from .plan import (
    DistinctOp,
    Fetch,
    Filter,
    FinalProject,
    GroupOp,
    IndexAggregateScan,
    IndexScan,
    InitialProject,
    JoinOp,
    KeyScan,
    LetOp,
    LimitOp,
    NestOp,
    OffsetOp,
    OrderOp,
    PrimaryScan,
    UnnestOp,
)
from .printer import print_expr

if TYPE_CHECKING:
    from ..client.smart_client import SmartClient
    from ..server import Cluster

Rows = Iterator[Env]


class ExecutionContext:
    """Everything operators need: the cluster, parameters, consistency."""

    def __init__(self, cluster: "Cluster", evaluator: Evaluator,
                 scan_consistency: str = "not_bounded",
                 metrics=None, scan_tokens=None,
                 client: "SmartClient | None" = None):
        self.cluster = cluster
        self.evaluator = evaluator
        self.scan_consistency = scan_consistency
        #: MutationResult tokens for at_plus consistency.
        self.scan_tokens = scan_tokens or []
        self.metrics = metrics
        #: The data-service client.  The QueryService passes its own
        #: long-lived SmartClient here so the cluster-map cache and the
        #: node-grouped batch path survive across queries; a fresh
        #: connection per query threw both away (section 4.5.1's SDK is
        #: likewise one long-lived handle).
        self._client = client

    @property
    def client(self) -> "SmartClient":
        if self._client is None:
            self._client = self.cluster.connect()
        return self._client

    def fetch_doc(self, bucket: str, key: str):
        """Point lookup via the data service; None when absent."""
        try:
            doc = self.client.get(bucket, key)
        except KeyNotFoundError:
            return None
        return doc

    def fetch_docs(self, bucket: str, keys: list[str]) -> dict:
        """Bulk lookup through the smart client's node-grouped batch
        path: one ``kv_multi_get`` RPC per involved node instead of one
        round trip per key.  Absent keys are omitted."""
        if not keys:
            return {}
        return self.client.multi_get(bucket, keys)

    def count(self, name: str, amount: int = 1) -> None:
        """Forwarding shim over the registry; every caller passes a
        literal metric name, which the linter checks at the call sites."""
        if self.metrics is not None:
            self.metrics.inc(name, amount)  # repro-lint: disable=metrics-naming


def _compiled(op, slot: str, expr, ctx: "ExecutionContext"):
    """Per-plan memoized compile: the first execution lowers ``expr`` to
    a closure and caches it on the plan operator, so cached/prepared
    plans never re-walk the AST (see :mod:`repro.n1ql.compile`)."""
    fn = getattr(op, slot, None)
    if fn is None:
        fn = compile_expr(expr, ctx.evaluator.default_alias)
        setattr(op, slot, fn)
        ctx.count("n1ql.compile.count")
    return fn


def meta_dict(doc) -> dict:
    return {
        "id": doc.meta.key,
        "cas": doc.meta.cas,
        "seqno": doc.meta.seqno,
        "rev": doc.meta.rev,
        "expiration": doc.meta.expiry,
        "flags": doc.meta.flags,
    }


def _cover_doc(cover_parts: list[list[str]], key_values: list) -> dict:
    """Reconstruct a partial document from covered index key values so
    downstream expressions evaluate without a fetch."""
    doc: dict = {}
    for parts, value in zip(cover_parts, key_values):
        if value is MISSING:
            continue
        current = doc
        for part in parts[:-1]:
            current = current.setdefault(part, {})
        current[parts[-1]] = value
    return doc


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_key_scan(op: KeyScan, ctx: ExecutionContext) -> Rows:
    keys = _compiled(op, "_compiled_keys", op.keys, ctx)(Env(), ctx.evaluator)
    if isinstance(keys, str):
        keys = [keys]
    if not isinstance(keys, list):
        return
    ctx.count("n1ql.keyscan")
    for key in keys:
        if not isinstance(key, str):
            continue
        env = Env()
        env.bind(op.alias, {"__pending_fetch__": key},
                 {"id": key})
        yield env


def _evaluate_span(span, ctx: ExecutionContext):
    compiled = getattr(span, "_compiled_bounds", None)
    if compiled is None:
        alias = ctx.evaluator.default_alias
        compiled = (
            [compile_expr(e, alias) for e in span.low] if span.low else None,
            [compile_expr(e, alias) for e in span.high] if span.high else None,
        )
        span._compiled_bounds = compiled
        ctx.count("n1ql.compile.count")
    low_fns, high_fns = compiled
    empty = Env()
    ev = ctx.evaluator

    def bound(fns):
        if fns is None:
            return None
        return [fn(empty, ev) for fn in fns]

    return (bound(low_fns), bound(high_fns),
            span.inclusive_low, span.inclusive_high)


def _pushed_limit(op, ctx: ExecutionContext) -> int | None:
    """Evaluate a planner-pushed LIMIT; None (no early stop) unless it
    comes out a usable non-negative integer."""
    if getattr(op, "limit", None) is None:
        return None
    value = _compiled(op, "_compiled_scan_limit", op.limit, ctx)(
        Env(), ctx.evaluator)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        return None
    return value


@hot_path
@cost("O(n)")
def run_index_scan(op: IndexScan, ctx: ExecutionContext) -> Rows:
    if op.using == "view":
        yield from _run_view_index_scan(op, ctx)
        return
    low, high, inclusive_low, inclusive_high = _evaluate_span(op.span, ctx)
    rows = ctx.cluster.gsi.scan(
        op.index_name, low, high,
        inclusive_low=inclusive_low, inclusive_high=inclusive_high,
        limit=_pushed_limit(op, ctx),
        scan_consistency=ctx.scan_consistency,
        mutation_tokens=ctx.scan_tokens,
    )
    ctx.count("n1ql.indexscan")
    cover_parts = getattr(op, "_cover_parts", None)
    if cover_parts is None and op.covered:
        cover_parts = [path.split(".") for path in op.cover_paths]
        op._cover_parts = cover_parts
    for key_values, doc_id in rows:
        env = Env()
        if op.covered:
            env.bind(op.alias, _cover_doc(cover_parts, key_values),
                     {"id": doc_id})
        else:
            env.bind(op.alias, {"__pending_fetch__": doc_id}, {"id": doc_id})
        yield env


def _run_view_index_scan(op: IndexScan, ctx: ExecutionContext) -> Rows:
    from ..views.viewindex import ViewQueryParams
    low, high, inclusive_low, inclusive_high = _evaluate_span(op.span, ctx)
    # at_plus has no token-level mapping onto a view index, so it takes
    # the conservative stale="false" path -- at least as fresh as the
    # mutation tokens demand.  Degrading it to "ok" would silently serve
    # stale rows under the strongest consistency mode.
    stale = ("false"
             if ctx.scan_consistency in ("request_plus", "at_plus")
             else "ok")
    params = ViewQueryParams(
        startkey=low[0] if low else None,
        endkey=high[0] if high else None,
        inclusive_end=inclusive_high,
        stale=stale,
        reduce=False,
    )
    result = ctx.cluster.views.query(
        op.keyspace, op.view_design, op.view_name, params
    )
    ctx.count("n1ql.viewscan")
    for row in result.rows:
        if low and not inclusive_low and row["key"] == low[0]:
            continue
        env = Env()
        env.bind(op.alias, {"__pending_fetch__": row["id"]}, {"id": row["id"]})
        yield env


@hot_path
@cost("O(n)")
def run_primary_scan(op: PrimaryScan, ctx: ExecutionContext) -> Rows:
    ctx.count("n1ql.primaryscan")
    if op.using == "gsi":
        rows = ctx.cluster.gsi.scan(op.index_name,
                                    limit=_pushed_limit(op, ctx),
                                    scan_consistency=ctx.scan_consistency,
                                    mutation_tokens=ctx.scan_tokens)
        covered = getattr(op, "covered", False)
        for _key_values, doc_id in rows:
            env = Env()
            if covered:
                env.bind(op.alias, {}, {"id": doc_id})
            else:
                env.bind(op.alias, {"__pending_fetch__": doc_id},
                         {"id": doc_id})
            yield env
        return
    from ..views.viewindex import ViewQueryParams
    # Same as _run_view_index_scan: at_plus on a view-backed path must
    # not degrade below stale="false".
    stale = ("false"
             if ctx.scan_consistency in ("request_plus", "at_plus")
             else "ok")
    result = ctx.cluster.views.query(
        op.keyspace, "_n1ql", op.index_name,
        ViewQueryParams(stale=stale, reduce=False),
    )
    for row in result.rows:
        env = Env()
        env.bind(op.alias, {"__pending_fetch__": row["id"]}, {"id": row["id"]})
        yield env


def _finalize_partial(name: str, partial: list) -> Any:
    """Turn a merged ``[count, total, best]`` partial state into the
    aggregate's result, mirroring ``Accumulator.result()``."""
    count, total, best = partial
    if name == "COUNT":
        return count
    if name == "SUM":
        return total if count else None
    if name == "AVG":
        return total / count if count else None
    return None if best is MISSING else best  # MIN / MAX


@hot_path
@cost("O(n)")
def run_index_aggregate(op: IndexAggregateScan,
                        ctx: ExecutionContext) -> Rows:
    """Covered GROUP BY served by the index nodes (section 5.1): each
    partition pre-aggregates its rows, the GSI coordinator merges the
    partial states, and this operator shapes each merged group into the
    same env :func:`run_group` emits -- the alias bound to a document
    reconstructed from the group keys plus the ``$agg:`` bindings."""
    low, high, inclusive_low, inclusive_high = _evaluate_span(op.span, ctx)
    groups = ctx.cluster.gsi.scan_aggregate(
        op.index_name, low, high,
        inclusive_low=inclusive_low, inclusive_high=inclusive_high,
        group_positions=op.group_positions,
        agg_specs=[(name, position)
                   for _key, name, position in op.agg_entries],
        scan_consistency=ctx.scan_consistency,
        mutation_tokens=ctx.scan_tokens,
    )
    ctx.count("n1ql.aggscan")
    cover_parts = getattr(op, "_group_cover_parts", None)
    if cover_parts is None:
        cover_parts = [path.split(".") for path in op.group_paths]
        op._group_cover_parts = cover_parts
    if not groups and not op.group_positions and op.agg_entries:
        # Aggregates over an empty input still produce one row
        # (COUNT(*) = 0, SUM = NULL, ...), exactly like run_group.
        env = Env()
        for key, name, _position in op.agg_entries:
            env.bind(key, _finalize_partial(name, [0, 0, MISSING]))
        yield env
        return
    for group_values, partials in groups:
        env = Env()
        env.bind(op.alias, _cover_doc(cover_parts, group_values),
                 {"id": None})
        for (key, name, _position), partial in zip(op.agg_entries, partials):
            env.bind(key, _finalize_partial(name, partial))
        yield env


@hot_path
@cost("O(n)")
def run_system_scan(op, ctx: ExecutionContext) -> Rows:
    """Rows of a system catalog keyspace."""
    cluster = ctx.cluster
    rows: list[dict] = []
    if op.what == "indexes":
        registry = cluster.manager.index_registry
        for name in registry.names():
            rows.append(registry.require(name).describe())
        catalog = getattr(cluster, "query_catalog", None)
        if catalog is not None:
            for info in catalog.view_indexes.values():
                rows.append({
                    "name": info.name, "bucket": info.bucket,
                    "keys": [info.attribute], "condition": None,
                    "storage": "view", "is_primary": info.is_primary,
                    "partitions": 1, "nodes": [], "state": "ready",
                })
    elif op.what == "keyspaces":
        for name, config in sorted(cluster.manager.bucket_configs.items()):
            rows.append({
                "name": name,
                "replicas": config.num_replicas,
                "eviction_policy": config.eviction_policy,
            })
    elif op.what == "nodes":
        for name in sorted(cluster.manager.nodes):
            node = cluster.manager.nodes[name]
            rows.append({
                "name": name,
                "services": sorted(s.value for s in node.services),
                "ejected": name in cluster.manager.ejected,
                "down": cluster.network.is_down(name),
            })
    for index, row in enumerate(rows):
        env = Env()
        env.bind(op.alias, row, {"id": f"{op.what}:{index}"})
        yield env


# ---------------------------------------------------------------------------
# Fetch / Filter / Let
# ---------------------------------------------------------------------------


#: Rows buffered per bulk fetch.  Small enough to keep the pipeline
#: streaming (LIMIT stops after at most one extra chunk), large enough
#: that a chunk spanning the whole cluster amortizes to ~1 RPC per node.
FETCH_BATCH = 64


class FetchState:
    """Whole-operator fetch state, shared by the row and batch fetch
    executors.

    Fetched documents are cached for the life of the operator, so a key
    appearing again -- in the same chunk or a later one -- reuses the
    first fetch's snapshot instead of re-fetching (a re-fetch could
    observe a concurrent mutation, making two rows for the same key
    disagree mid-query), and every occurrence after the first gets a
    fresh copy so duplicate rows never share mutable state.  The old
    per-chunk bookkeeping applied copy-on-duplicate only within one
    chunk; a duplicate landing in a later chunk was re-fetched."""

    __slots__ = ("op", "ctx", "docs", "bound")

    def __init__(self, op: Fetch, ctx: ExecutionContext):
        self.op = op
        self.ctx = ctx
        #: key -> Document, or None once known absent.
        self.docs: dict[str, Any] = {}
        #: Keys already bound to at least one emitted row.
        self.bound: set[str] = set()

    @bounded("maxlen", "docs/bound hold at most one entry per distinct "
                       "key of one query's rows; the state dies with "
                       "the operator")
    def drain(self, buffered: list[Env]) -> list[Env]:
        op, ctx, docs = self.op, self.ctx, self.docs
        fresh: list[str] = []
        for env in buffered:
            _found, value = env.lookup(op.alias)
            if isinstance(value, dict) and "__pending_fetch__" in value:
                key = value["__pending_fetch__"]
                if key not in docs:
                    docs[key] = None
                    fresh.append(key)
        if fresh:
            found = ctx.fetch_docs(op.keyspace, fresh)
            for key in fresh:
                docs[key] = found.get(key)
        out: list[Env] = []
        for env in buffered:
            _found, value = env.lookup(op.alias)
            if isinstance(value, dict) and "__pending_fetch__" in value:
                key = value["__pending_fetch__"]
                doc = docs.get(key)
                if doc is None:
                    continue  # deleted between scan and fetch
                if key in self.bound:
                    doc = doc.copy()  # duplicate keys must not share state
                self.bound.add(key)
                env.bind(op.alias, doc.value, meta_dict(doc))
                ctx.count("n1ql.fetch")
            out.append(env)
        return out


@hot_path
@cost("O(n)")
def run_fetch(op: Fetch, ctx: ExecutionContext, rows: Rows) -> Rows:
    """Resolve pending document fetches in node-grouped batches: the
    operator buffers up to :data:`FETCH_BATCH` rows, issues one bulk
    lookup for their keys (one RPC per node holding any of them), and
    re-emits the rows in order.  Rows whose document vanished between
    scan and fetch are dropped, as before."""
    state = FetchState(op, ctx)
    chunk: list[Env] = []
    for env in rows:
        found, value = env.lookup(op.alias)
        if not found:
            continue
        chunk.append(env)
        if len(chunk) >= FETCH_BATCH:
            yield from state.drain(chunk)
            chunk = []
    if chunk:
        yield from state.drain(chunk)


@hot_path
@cost("O(n)")
def run_filter(op: Filter, ctx: ExecutionContext, rows: Rows) -> Rows:
    condition = _compiled(op, "_compiled_condition", op.condition, ctx)
    ev = ctx.evaluator
    for env in rows:
        if condition(env, ev) is True:
            yield env


@hot_path
@cost("O(n)")
def run_let(op: LetOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    compiled = getattr(op, "_compiled_bindings", None)
    if compiled is None:
        alias = ctx.evaluator.default_alias
        compiled = [(name, compile_expr(expr, alias))
                    for name, expr in op.bindings]
        op._compiled_bindings = compiled
        ctx.count("n1ql.compile.count", len(compiled))
    ev = ctx.evaluator
    for env in rows:
        child = env.child()
        for name, fn in compiled:
            child.bind(name, fn(child, ev))
        yield child


# ---------------------------------------------------------------------------
# Join family (nested-loop, key-based -- section 4.5.3)
# ---------------------------------------------------------------------------


def _on_keys_list(fn, ctx: ExecutionContext, env: Env) -> list[str]:
    value = fn(env, ctx.evaluator)
    if isinstance(value, str):
        return [value]
    if isinstance(value, list):
        return [k for k in value if isinstance(k, str)]
    return []


@hot_path
@cost("O(n)")
def run_join(op: JoinOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    on_keys = _compiled(op, "_compiled_on_keys", op.on_keys, ctx)
    for env in rows:
        keys = _on_keys_list(on_keys, ctx, env)
        matched = False
        for key in keys:
            doc = ctx.fetch_doc(op.keyspace, key)
            if doc is None:
                continue
            matched = True
            child = env.child()
            child.bind(op.alias, doc.value, meta_dict(doc))
            yield child
        if not matched and op.outer:
            child = env.child()
            child.bind(op.alias, MISSING)
            yield child


@hot_path
@cost("O(n)")
def run_nest(op: NestOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    """NEST: one output row per left row, with the fetched inner
    documents collected into an array (section 3.2.3)."""
    on_keys = _compiled(op, "_compiled_on_keys", op.on_keys, ctx)
    for env in rows:
        keys = _on_keys_list(on_keys, ctx, env)
        collected = []
        for key in keys:
            doc = ctx.fetch_doc(op.keyspace, key)
            if doc is not None:
                collected.append(doc.value)
        if collected:
            child = env.child()
            child.bind(op.alias, collected)
            yield child
        elif op.outer:
            child = env.child()
            child.bind(op.alias, MISSING)
            yield child


@hot_path
@cost("O(n)")
def run_unnest(op: UnnestOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    """UNNEST: the parent is repeated for each element of the nested
    array (section 4.5.3)."""
    unnest_fn = _compiled(op, "_compiled_expr", op.expr, ctx)
    ev = ctx.evaluator
    for env in rows:
        value = unnest_fn(env, ev)
        if isinstance(value, list) and value:
            for item in value:
                child = env.child()
                child.bind(op.alias, item)
                yield child
        elif op.outer:
            child = env.child()
            child.bind(op.alias, MISSING)
            yield child


# ---------------------------------------------------------------------------
# Grouping and aggregation
# ---------------------------------------------------------------------------


def _group_compiled(op: GroupOp, ctx: ExecutionContext):
    """Compiled grouping machinery: group-key closures plus, per
    aggregate, its pre-printed ``$agg:`` binding key and argument
    closure (the interpreter re-printed each aggregate AST per group)."""
    compiled = getattr(op, "_compiled_group", None)
    if compiled is None:
        alias = ctx.evaluator.default_alias
        group_fns = [compile_expr(e, alias) for e in op.group_exprs]
        agg_entries = []
        for aggregate in op.aggregates:
            agg_entries.append((
                "$agg:" + print_expr(aggregate),
                aggregate.name,
                aggregate.distinct,
                aggregate.star,
                None if aggregate.star else compile_expr(aggregate.args[0],
                                                         alias),
            ))
        compiled = (group_fns, agg_entries)
        op._compiled_group = compiled
        ctx.count("n1ql.compile.count", len(group_fns) + len(agg_entries))
    return compiled


@hot_path
@cost("O(n)")
def run_group(op: GroupOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    group_fns, agg_entries = _group_compiled(op, ctx)
    ev = ctx.evaluator
    groups: dict[str, tuple[Env, list[Accumulator]]] = {}
    order: list[str] = []

    def group_token(env: Env) -> str:
        values = [fn(env, ev) for fn in group_fns]
        return json.dumps(
            [None if v is MISSING else ["$", _jsonable(v)] for v in values],
            sort_keys=True,
        )

    for env in rows:
        token = group_token(env)
        if token not in groups:
            accumulators = [
                Accumulator(name, distinct)
                for _key, name, distinct, _star, _fn in agg_entries
            ]
            groups[token] = (env, accumulators)
            order.append(token)
        _env, accumulators = groups[token]
        for entry, accumulator in zip(agg_entries, accumulators):
            _key, _name, _distinct, star, arg_fn = entry
            if star:
                accumulator.add(_COUNT_STAR)
            else:
                accumulator.add(arg_fn(env, ev))

    if not groups and not group_fns and agg_entries:
        # Aggregates over an empty input still produce one row
        # (COUNT(*) = 0, SUM = NULL, ...).
        env = Env()
        for key, name, distinct, _star, _fn in agg_entries:
            accumulator = Accumulator(name, distinct)
            env.bind(key, accumulator.result())
        yield env
        return

    for token in order:
        representative, accumulators = groups[token]
        out = representative.child()
        for entry, accumulator in zip(agg_entries, accumulators):
            out.bind(entry[0], accumulator.result())
        yield out


def _jsonable(value):
    if value is MISSING:
        return None
    return value


# ---------------------------------------------------------------------------
# Order / pagination
# ---------------------------------------------------------------------------


@hot_path
@cost("O(n)")
def run_order(op: OrderOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    key_of = getattr(op, "_compiled_key", None)
    if key_of is None:
        key_of = compile_sort_key(op.terms, ctx.evaluator.default_alias)
        op._compiled_key = key_of
        ctx.count("n1ql.compile.count", len(op.terms))
    ev = ctx.evaluator
    materialized = list(rows)
    materialized.sort(key=lambda env: key_of(env, ev))
    ctx.count("n1ql.sorted_rows", len(materialized))
    yield from materialized


@hot_path
@cost("O(n)")
def run_offset(op: OffsetOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    count = _compiled(op, "_compiled_count", op.count, ctx)(Env(),
                                                            ctx.evaluator)
    if not isinstance(count, (int, float)):
        raise N1qlRuntimeError("OFFSET requires a number")
    skip = int(count)
    for index, env in enumerate(rows):
        if index >= skip:
            yield env


@hot_path
@cost("O(n)")
def run_limit(op: LimitOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    count = _compiled(op, "_compiled_count", op.count, ctx)(Env(),
                                                            ctx.evaluator)
    if not isinstance(count, (int, float)):
        raise N1qlRuntimeError("LIMIT requires a number")
    remaining = int(count)
    if remaining <= 0:
        return
    for env in rows:
        yield env
        remaining -= 1
        if remaining <= 0:
            return


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------


def _project_compiled(op: InitialProject, ctx: ExecutionContext):
    """Compiled projection list: each entry is ``(fn, name, star_of)``
    with the output name (explicit alias or implicit field name)
    resolved once instead of per row.  ``fn`` is None for star
    projections."""
    entries = getattr(op, "_compiled_projections", None)
    if entries is None:
        alias = ctx.evaluator.default_alias
        entries = []
        count = 0
        for projection in op.projections:
            if projection.expr is None:
                entries.append((None, None, projection.star_of))
            else:
                entries.append((compile_expr(projection.expr, alias),
                                projection.alias
                                or _implicit_name(projection.expr),
                                None))
                count += 1
        op._compiled_projections = entries
        ctx.count("n1ql.compile.count", count)
    return entries


@hot_path
@cost("O(n)")
def run_initial_project(op: InitialProject, ctx: ExecutionContext,
                        rows: Rows) -> Rows:
    """Evaluate the projection list; emits envs carrying '$result'."""
    entries = _project_compiled(op, ctx)
    ev = ctx.evaluator
    raw_fn = entries[0][0] if op.raw else None
    for env in rows:
        if op.raw:
            value = raw_fn(env, ev)
            result: Any = None if value is MISSING else value
        else:
            result = {}
            unnamed = 0
            for fn, name, star_of in entries:
                if fn is None:
                    # '*' or alias.*: splice document(s) in.
                    if star_of is not None:
                        found, value = env.lookup(star_of)
                        if found and isinstance(value, dict):
                            result.update(value)
                        continue
                    # Bare '*': N1QL wraps each keyspace's document under
                    # its alias (SELECT * FROM b -> [{"b": {...}}]).
                    for alias in reversed(env.aliases()):
                        found, value = env.lookup(alias)
                        if found and value is not MISSING:
                            result[alias] = value
                    continue
                value = fn(env, ev)
                if value is MISSING:
                    continue
                if name is None:
                    unnamed += 1
                    key = f"${unnamed}"
                else:
                    key = name
                result[key] = value
        out = env.child()
        out.bind("$result", result)
        yield out


def _implicit_name(expr) -> str | None:
    from .syntax import FieldAccess, Identifier, FunctionCall
    if isinstance(expr, FieldAccess):
        return expr.field
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, FunctionCall) and expr.name == "META":
        return None
    return None


@hot_path
@cost("O(n)")
def run_distinct(op: DistinctOp, ctx: ExecutionContext, rows: Rows) -> Rows:
    seen: set[str] = set()
    for env in rows:
        found, result = env.lookup("$result")
        token = json.dumps(result, sort_keys=True, default=str)
        if token in seen:
            continue
        seen.add(token)
        yield env


@hot_path
@cost("O(n)")
def run_final_project(op: FinalProject, ctx: ExecutionContext,
                      rows: Rows) -> Iterator[Any]:
    for env in rows:
        _found, result = env.lookup("$result")
        yield result
