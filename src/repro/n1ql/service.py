"""The query service.

Section 4.3.5: "the Query Service takes an application query and
performs the necessary functions to retrieve, filter, and/or project the
data ... To process a given user query, the query engine will issue
requests to the index service, the data service, or both, depending on
the chosen query plan."

One :class:`QueryService` attaches to each query-service node.  It
parses, plans, and executes N1QL statements; compiles CREATE INDEX
expressions down to the GSI layer's extractors (or to views for USING
VIEW); and honors the per-query ``scan_consistency`` parameter
(section 3.2.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..common.errors import (
    IndexNotFoundError,
    N1qlSemanticError,
    declared_raises,
)
from ..gsi.indexdef import IndexDefinition, primary_index
from .catalog import Catalog, ViewIndexInfo
from .compile import compile_expr
from .dml import execute_delete, execute_insert, execute_update
from .expressions import Env, Evaluator
from .operators import ExecutionContext
from .parser import parse
from .pipeline import execute_plan
from .plan import QueryPlan
from .planner import Planner
from .printer import path_of, print_expr
from .syntax import (
    ArrayComprehension,
    BuildIndexStatement,
    CreateIndexStatement,
    CreatePrimaryIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ExplainStatement,
    Expr,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)

if TYPE_CHECKING:
    from ..server import Cluster


@dataclass
class QueryResult:
    """What a N1QL request returns."""

    rows: list = field(default_factory=list)
    status: str = "success"
    metrics: dict = field(default_factory=dict)
    plan: dict | None = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    @property
    def mutation_count(self) -> int:
        return self.metrics.get("mutationCount", 0)


def _normalize_params(params) -> dict[str, Any]:
    if params is None:
        return {}
    if isinstance(params, dict):
        return dict(params)
    if isinstance(params, (list, tuple)):
        out: dict[str, Any] = {}
        for index, value in enumerate(params, start=1):
            out[str(index)] = value
            out[f"?{index}"] = value
        return out
    raise TypeError("params must be a dict or a positional sequence")


def _strip_keyspace_prefix(expr: Expr, keyspace: str) -> Expr:
    """Rewrite keyspace-qualified field paths in index DDL expressions to
    their document-relative form: ``FieldAccess(Identifier(ks), f)`` ->
    ``Identifier(f)``.  Everything else is rebuilt structurally."""
    from dataclasses import fields as dataclass_fields, is_dataclass
    from .syntax import FieldAccess, Identifier

    def rewrite(node):
        if isinstance(node, FieldAccess) and isinstance(node.base, Identifier) \
                and node.base.name == keyspace:
            return Identifier(node.field)
        if is_dataclass(node) and not isinstance(node, type):
            changed = False
            values = {}
            for f in dataclass_fields(node):
                value = getattr(node, f.name)
                new_value = rewrite_value(value)
                values[f.name] = new_value
                if new_value is not value:
                    changed = True
            if changed:
                return type(node)(**values)
            return node
        return node

    def rewrite_value(value):
        if is_dataclass(value) and not isinstance(value, type):
            return rewrite(value)
        if isinstance(value, list):
            new_list = [rewrite_value(item) for item in value]
            if any(a is not b for a, b in zip(new_list, value)):
                return new_list
            return value
        if isinstance(value, tuple):
            new_tuple = tuple(rewrite_value(item) for item in value)
            if any(a is not b for a, b in zip(new_tuple, value)):
                return new_tuple
            return value
        return value

    return rewrite(expr)


@dataclass
class CachedPlan:
    """One plan-cache / prepared-statement entry: the parsed statement
    (kept for re-planning), its plan, and the catalog epoch the plan was
    built under."""

    statement: SelectStatement
    plan: QueryPlan
    epoch: tuple

    def __getitem__(self, index):
        # Backward compatibility with the original (statement, plan)
        # tuples a few tests unpack.
        return (self.statement, self.plan, self.epoch)[index]


class PlanCache:
    """LRU of compiled plans for *ad-hoc* statements, keyed by statement
    text.  Repeated ad-hoc SELECTs get the prepared-statement treatment
    (skip parse + plan) automatically; entries built under an older
    catalog epoch are discarded on lookup, so index/keyspace DDL can
    never leave a stale plan running."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, text: str) -> bool:
        return text in self._entries

    def get(self, text: str, epoch: tuple) -> CachedPlan | None:
        entry = self._entries.get(text)
        if entry is None:
            return None
        if entry.epoch != epoch:
            del self._entries[text]
            return None
        self._entries.move_to_end(text)
        return entry

    def put(self, text: str, entry: CachedPlan) -> None:
        self._entries[text] = entry
        self._entries.move_to_end(text)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class QueryService:
    """N1QL front end on one query node."""

    def __init__(self, cluster: "Cluster", node):
        self.cluster = cluster
        self.node = node
        if not hasattr(cluster, "query_catalog"):
            cluster.query_catalog = Catalog(cluster)
        self.catalog: Catalog = cluster.query_catalog
        self.planner = Planner(self.catalog)
        #: name -> CachedPlan; populated by PREPARE.  Query parsing and
        #: planning "are done serially" (section 4.5.3), so skipping
        #: them per request is a real win for hot statements.  Entries
        #: are re-planned when the catalog epoch moves (index/keyspace
        #: DDL), never silently executed against dropped indexes.
        self.prepared: dict[str, CachedPlan] = {}
        #: Ad-hoc plan cache, keyed by statement text.
        self.plan_cache = PlanCache()
        #: One long-lived data-service client shared by every query this
        #: service runs, so the cluster-map cache and the node-grouped
        #: batch path survive across queries (previously each
        #: ExecutionContext called ``cluster.connect()`` afresh).
        #: Tagged "n1ql" so a scan storm's data traffic draws on the
        #: query compartment, not the application KV compartment.
        self.client = cluster.connect(service="n1ql")

    # -- entry point --------------------------------------------------------------------

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DiskFullError',
                     'DocumentLockedError', 'DurabilityError',
                     'DurabilityImpossibleError', 'IndexExistsError',
                     'IndexNotFoundError', 'InvalidArgumentError',
                     'KeyNotFoundError', 'N1qlRuntimeError',
                     'N1qlSemanticError', 'NoSuitableIndexError',
                     'NodeDownError', 'NotMyVBucketError',
                     'ServiceUnavailableError', 'TemporaryFailureError',
                     'ValueTooLargeError', 'ViewExistsError',
                     'ViewNotFoundError')
    def query(self, text: str, params=None,
              scan_consistency: str = "not_bounded",
              consistent_with=None) -> QueryResult:
        if scan_consistency not in ("not_bounded", "request_plus",
                                    "at_plus"):
            raise N1qlSemanticError(
                f"unknown scan_consistency {scan_consistency!r}"
            )
        if scan_consistency == "at_plus" and not consistent_with:
            raise N1qlSemanticError(
                "at_plus requires mutation tokens (consistent_with=...)"
            )
        # Degradation order under overload: N1QL is shed at this front
        # door (before parse/plan/execute cost anything) while KV point
        # ops keep flowing.  The admission slot is held for the whole
        # request so the n1ql bulkhead counts running queries.
        admission = getattr(self.cluster, "admission", None)
        release = admission.admit_query() if admission is not None else None
        try:
            metrics = self.node.metrics
            metrics.inc("n1ql.requests")
            tokens = consistent_with or []
            cached = self.plan_cache.get(text, self.catalog.current_epoch())
            if cached is not None:
                metrics.inc("n1ql.plan_cache.hit")
                self._scan_tokens = tokens
                return self._run_select(cached.plan,
                                        _normalize_params(params),
                                        scan_consistency)
            with metrics.timer("n1ql.parse_seconds"):
                statement = parse(text)
            return self._dispatch(statement, _normalize_params(params),
                                  scan_consistency, tokens, text=text)
        finally:
            if release is not None:
                release()

    def _dispatch(self, statement, params: dict,
                  scan_consistency: str,
                  scan_tokens: list | None = None,
                  text: str | None = None) -> QueryResult:
        self._scan_tokens = scan_tokens or []
        from .syntax import ExecuteStatement, PrepareStatement
        if isinstance(statement, PrepareStatement):
            return self._prepare(statement)
        if isinstance(statement, ExecuteStatement):
            return self._execute_prepared(statement.name, params,
                                          scan_consistency)
        if isinstance(statement, ExplainStatement):
            return self._explain(statement.statement, params)
        if isinstance(statement, SelectStatement):
            return self._select(statement, params, scan_consistency,
                                text=text)
        if isinstance(statement, InsertStatement):
            self.catalog.require_keyspace(statement.keyspace)
            ctx = self._context(params, scan_consistency, statement.keyspace)
            outcome = execute_insert(statement, ctx)
            return QueryResult(rows=outcome["returning"],
                               metrics={"mutationCount": outcome["mutationCount"]})
        if isinstance(statement, UpdateStatement):
            self.catalog.require_keyspace(statement.keyspace)
            ctx = self._context(params, scan_consistency, statement.alias)
            outcome = execute_update(statement, self.planner, ctx)
            return QueryResult(rows=outcome["returning"],
                               metrics={"mutationCount": outcome["mutationCount"]})
        if isinstance(statement, DeleteStatement):
            self.catalog.require_keyspace(statement.keyspace)
            ctx = self._context(params, scan_consistency, statement.alias)
            outcome = execute_delete(statement, self.planner, ctx)
            return QueryResult(rows=outcome["returning"],
                               metrics={"mutationCount": outcome["mutationCount"]})
        if isinstance(statement, CreateIndexStatement):
            return self._create_index(statement)
        if isinstance(statement, CreatePrimaryIndexStatement):
            return self._create_primary_index(statement)
        if isinstance(statement, DropIndexStatement):
            return self._drop_index(statement)
        if isinstance(statement, BuildIndexStatement):
            for name in statement.names:
                self.cluster.gsi.build_index(name)
            return QueryResult()
        raise N1qlSemanticError(
            f"unsupported statement {type(statement).__name__}"
        )

    # -- SELECT ----------------------------------------------------------------------------

    def _context(self, params: dict, scan_consistency: str,
                 default_alias: str | None) -> ExecutionContext:
        evaluator = Evaluator(params, default_alias)
        return ExecutionContext(self.cluster, evaluator, scan_consistency,
                                metrics=self.node.metrics,
                                scan_tokens=getattr(self, "_scan_tokens", []),
                                client=self.client)

    def _plan(self, statement: SelectStatement) -> QueryPlan:
        with self.node.metrics.timer("n1ql.plan_seconds"):
            plan = self.planner.plan_select(statement)
        return plan

    def _run_select(self, plan: QueryPlan, params: dict,
                    scan_consistency: str) -> QueryResult:
        """Single exit for every SELECT execution path (ad-hoc, cached,
        prepared), so request accounting cannot drift between them."""
        ctx = self._context(params, scan_consistency, plan.default_alias)
        metrics = self.node.metrics
        with metrics.timer("n1ql.exec_seconds"):
            rows = list(execute_plan(plan, ctx))
        metrics.inc("n1ql.selects")
        metrics.inc("n1ql.result_rows", len(rows))
        return QueryResult(rows=rows, metrics={"resultCount": len(rows)})

    def _select(self, statement: SelectStatement, params: dict,
                scan_consistency: str, text: str | None = None) -> QueryResult:
        epoch = self.catalog.current_epoch()
        plan = self._plan(statement)
        if text is not None:
            self.node.metrics.inc("n1ql.plan_cache.miss")
            self.plan_cache.put(text, CachedPlan(statement, plan, epoch))
        return self._run_select(plan, params, scan_consistency)

    def _prepare(self, statement) -> QueryResult:
        """PREPARE [name FROM] <select>: parse and plan once, cache."""
        inner = statement.statement
        if not isinstance(inner, SelectStatement):
            raise N1qlSemanticError("only SELECT statements can be prepared")
        epoch = self.catalog.current_epoch()
        plan = self._plan(inner)
        name = statement.name or f"p{len(self.prepared) + 1}"
        self.prepared[name] = CachedPlan(inner, plan, epoch)
        return QueryResult(rows=[{"name": name,
                                  "operator": plan.describe()}])

    def _execute_prepared(self, name: str, params: dict,
                          scan_consistency: str) -> QueryResult:
        entry = self.prepared.get(name)
        if entry is None:
            raise N1qlSemanticError(f"no prepared statement named {name!r}")
        current = self.catalog.current_epoch()
        if entry.epoch != current:
            # Index or keyspace DDL happened since this statement was
            # planned; re-plan from the stored AST instead of executing
            # a plan that may reference a dropped index.
            entry = CachedPlan(entry.statement,
                               self._plan(entry.statement), current)
            self.prepared[name] = entry
            self.node.metrics.inc("n1ql.prepared.replan")
        return self._run_select(entry.plan, params, scan_consistency)

    def _explain(self, statement, params: dict) -> QueryResult:
        if isinstance(statement, SelectStatement):
            plan = self.planner.plan_select(statement)
            return QueryResult(rows=[plan.describe()], plan=plan.describe())
        return QueryResult(rows=[{
            "#operator": type(statement).__name__,
        }])

    # -- index DDL ----------------------------------------------------------------------------

    def _compile_extractor(self, expr: Expr, keyspace: str):
        """Compile an index key expression into (doc, doc_id) -> value.

        Index expressions are document-relative: a bare identifier names
        a *field*, never the keyspace itself (so ``CREATE INDEX ON b(b)``
        indexes field b).  Keyspace-qualified paths (``b.age``) are
        stripped to their document-relative form first."""
        expr = _strip_keyspace_prefix(expr, keyspace)
        evaluator = Evaluator({}, default_alias="$doc")
        compiled = compile_expr(expr, "$doc")
        self.node.metrics.inc("n1ql.compile.count")

        def extract(doc, doc_id):
            env = Env()
            env.bind("$doc", doc, {"id": doc_id})
            return compiled(env, evaluator)

        return extract

    def _compile_condition(self, expr: Expr, keyspace: str):
        expr = _strip_keyspace_prefix(expr, keyspace)
        evaluator = Evaluator({}, default_alias="$doc")
        compiled = compile_expr(expr, "$doc")
        self.node.metrics.inc("n1ql.compile.count")

        def condition(doc, doc_id):
            env = Env()
            env.bind("$doc", doc, {"id": doc_id})
            return compiled(env, evaluator) is True

        return condition

    def _create_index(self, statement: CreateIndexStatement) -> QueryResult:
        self.catalog.require_keyspace(statement.keyspace)
        if statement.using == "view":
            return self._create_view_index(statement)
        options = statement.with_options
        array_component = None
        extractors = []
        key_sources = []
        for position, key_expr in enumerate(statement.keys):
            if isinstance(key_expr, ArrayComprehension):
                if array_component is not None:
                    raise N1qlSemanticError(
                        "an index may have only one array component"
                    )
                array_component = position
                extractors.append(
                    self._compile_extractor(key_expr.collection,
                                            statement.keyspace)
                )
                key_sources.append(
                    "distinct array "
                    + (path_of(key_expr.collection,
                               strip_alias=statement.keyspace)
                       or print_expr(key_expr.collection))
                )
                continue
            extractors.append(
                self._compile_extractor(key_expr, statement.keyspace)
            )
            key_sources.append(
                path_of(key_expr, strip_alias=statement.keyspace)
                or print_expr(key_expr)
            )
        condition = None
        if statement.where is not None:
            condition = self._compile_condition(statement.where,
                                                statement.keyspace)
        definition = IndexDefinition(
            name=statement.name,
            bucket=statement.keyspace,
            key_sources=key_sources,
            extractors=extractors,
            condition=condition,
            condition_source=statement.where_source,
            array_component=array_component,
            storage="memopt" if options.get("memory_optimized") else "standard",
            deferred=bool(options.get("defer_build")),
            num_partitions=int(options.get("num_partitions", 1)),
        )
        # Stash the condition AST for the planner's implication check.
        definition.condition_expr = statement.where  # type: ignore[attr-defined]
        nodes = options.get("nodes")
        self.cluster.gsi.create_index(definition, nodes)
        return QueryResult()

    def _create_view_index(self, statement: CreateIndexStatement) -> QueryResult:
        if len(statement.keys) != 1:
            raise N1qlSemanticError(
                "USING VIEW indexes support a single attribute key"
            )
        attribute = path_of(statement.keys[0],
                            strip_alias=statement.keyspace)
        if attribute is None:
            raise N1qlSemanticError(
                "USING VIEW indexes require a plain attribute path"
            )
        if statement.where is not None:
            raise N1qlSemanticError("USING VIEW indexes cannot be partial")
        from ..views.mapreduce import attribute_view
        definition = attribute_view(Catalog.N1QL_DESIGN, statement.name,
                                    attribute)
        self.cluster.define_view(statement.keyspace, definition)
        self.catalog.add_view_index(ViewIndexInfo(
            name=statement.name,
            bucket=statement.keyspace,
            attribute=attribute,
            design=Catalog.N1QL_DESIGN,
            view=statement.name,
        ))
        return QueryResult()

    def _create_primary_index(self,
                              statement: CreatePrimaryIndexStatement) -> QueryResult:
        self.catalog.require_keyspace(statement.keyspace)
        # Index names are global in this registry, so the default primary
        # name is scoped by keyspace.
        name = statement.name or f"#primary_{statement.keyspace}"
        if statement.using == "view":
            from ..views.mapreduce import primary_view
            definition = primary_view(Catalog.N1QL_DESIGN, name)
            self.cluster.define_view(statement.keyspace, definition)
            self.catalog.add_view_index(ViewIndexInfo(
                name=name,
                bucket=statement.keyspace,
                attribute="meta().id",
                design=Catalog.N1QL_DESIGN,
                view=name,
                is_primary=True,
            ))
            return QueryResult()
        definition = primary_index(
            name, statement.keyspace,
            storage="memopt" if statement.with_options.get(
                "memory_optimized") else "standard",
            deferred=bool(statement.with_options.get("defer_build")),
        )
        self.cluster.gsi.create_index(
            definition, statement.with_options.get("nodes")
        )
        return QueryResult()

    def _drop_index(self, statement: DropIndexStatement) -> QueryResult:
        try:
            self.cluster.gsi.drop_index(statement.name)
        except IndexNotFoundError:
            # Not a GSI index: fall back to the view-backed catalog.  If
            # the name is unknown there too, drop_view_index raises its
            # own IndexNotFoundError to the caller.
            info = self.catalog.drop_view_index(statement.name)
            self.cluster.drop_view(info.bucket, info.design, info.view)
        return QueryResult()
