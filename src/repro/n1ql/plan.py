"""Query plan nodes.

The operator vocabulary of section 4.5.3 / Figure 11: keyspace scans
(KeyScan / PrimaryScan / IndexScan), Fetch, Filter, the join operators
(Join / Nest / Unnest -- all key-based, section 3.2.4), grouping,
ordering, pagination, and the two projection phases (InitialProject
reduces the stream to the referenced fields, FinalProject shapes the
result JSON).

EXPLAIN renders these nodes as a JSON-ish tree (section 4.5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .printer import print_expr
from .syntax import Expr, OrderTerm, Projection


class PlanOp:
    def describe(self) -> dict:
        raise NotImplementedError


@dataclass
class ScanSpan:
    """One contiguous range over an index's composite keys.  Bounds are
    expressions evaluated once at execution start (they may reference
    query parameters, as in the YCSB-E query)."""

    low: list[Expr] | None
    high: list[Expr] | None
    inclusive_low: bool = True
    inclusive_high: bool = True

    def describe(self) -> dict:
        return {
            "low": [print_expr(e) for e in self.low] if self.low else None,
            "high": [print_expr(e) for e in self.high] if self.high else None,
            "inclusive_low": self.inclusive_low,
            "inclusive_high": self.inclusive_high,
        }


@dataclass
class KeyScan(PlanOp):
    """USE KEYS access: the fundamental KV bridge (section 3.2.3)."""

    alias: str
    keyspace: str
    keys: Expr

    def describe(self) -> dict:
        return {"#operator": "KeyScan", "keyspace": self.keyspace,
                "as": self.alias, "keys": print_expr(self.keys)}


@dataclass
class PrimaryScan(PlanOp):
    """Full keyspace scan through a primary index -- "the equivalent of a
    full table scan ... quite expensive" (section 4.5.3)."""

    alias: str
    keyspace: str
    index_name: str
    using: str  # "gsi" | "view"
    #: The projection needs nothing beyond meta().id, which the primary
    #: index already yields -- skip the Fetch (section 5.1.2 applied to
    #: the primary index).
    covered: bool = False
    #: LIMIT pushed into the scan (set by the planner only when nothing
    #: downstream can drop or reorder rows).
    limit: Expr | None = None

    def describe(self) -> dict:
        return {"#operator": "PrimaryScan", "keyspace": self.keyspace,
                "as": self.alias, "index": self.index_name,
                "using": self.using, "covered": self.covered,
                "limit": print_expr(self.limit) if self.limit else None}


@dataclass
class IndexScan(PlanOp):
    alias: str
    keyspace: str
    index_name: str
    span: ScanSpan
    using: str = "gsi"
    #: Covering scan: the index supplies every referenced field, so the
    #: Fetch operator is skipped entirely (section 5.1.2).
    covered: bool = False
    #: Dotted paths of the index keys, for covered-row reconstruction.
    cover_paths: list[str] = field(default_factory=list)
    #: LIMIT pushed into the scan (set by the planner only when the span
    #: subsumes the filter and nothing downstream drops or reorders
    #: rows), so the indexer stops walking the tree after enough rows.
    limit: Expr | None = None

    def describe(self) -> dict:
        return {"#operator": "IndexScan", "keyspace": self.keyspace,
                "as": self.alias, "index": self.index_name,
                "span": self.span.describe(), "using": self.using,
                "covers": self.cover_paths if self.covered else None,
                "limit": print_expr(self.limit) if self.limit else None}


@dataclass
class IndexAggregateScan(PlanOp):
    """Covered GROUP BY pushed down to the index nodes (section 5.1's
    pre-computed aggregates): each partition groups and partially
    aggregates its own index rows, and the coordinator merges the
    partial states -- rows never cross the fabric.  Replaces the
    IndexScan (+ subsumed Filter) + Group prefix of the pipeline when
    the planner proves every grouping key and aggregate argument is an
    index key."""

    alias: str
    keyspace: str
    index_name: str
    span: ScanSpan
    #: Dotted paths of the grouped index keys (for reconstructing a
    #: covered document per group), aligned with ``group_positions``.
    group_paths: list[str]
    #: Positions of the grouping keys within the index key tuple.
    group_positions: list[int]
    #: Per aggregate: its ``$agg:`` binding key, the aggregate name, and
    #: the argument's index-key position (None for COUNT(*), -1 for the
    #: document id).
    agg_entries: list[tuple[str, str, int | None]]

    def describe(self) -> dict:
        return {
            "#operator": "IndexAggregateScan", "keyspace": self.keyspace,
            "as": self.alias, "index": self.index_name,
            "span": self.span.describe(),
            "group_keys": list(self.group_paths),
            "aggregates": [key[len("$agg:"):]
                           for key, _name, _position in self.agg_entries],
        }


@dataclass
class SystemScan(PlanOp):
    """Scan of a system catalog keyspace (system:indexes,
    system:keyspaces, system:nodes) -- the query catalog surface of
    section 4.3.5."""

    alias: str
    what: str  # "indexes" | "keyspaces" | "nodes"

    def describe(self) -> dict:
        return {"#operator": "SystemScan", "keyspace": f"system:{self.what}",
                "as": self.alias}


@dataclass
class Fetch(PlanOp):
    alias: str
    keyspace: str

    def describe(self) -> dict:
        return {"#operator": "Fetch", "keyspace": self.keyspace,
                "as": self.alias}


@dataclass
class Filter(PlanOp):
    condition: Expr

    def describe(self) -> dict:
        return {"#operator": "Filter", "condition": print_expr(self.condition)}


@dataclass
class JoinOp(PlanOp):
    """Nested-loop key join: for each left row, KEYSCAN the inner
    keyspace on the evaluated ON KEYS (section 4.5.3, "Join methods")."""

    alias: str
    keyspace: str
    on_keys: Expr
    outer: bool = False

    def describe(self) -> dict:
        return {"#operator": "Join", "keyspace": self.keyspace,
                "as": self.alias, "on_keys": print_expr(self.on_keys),
                "outer": self.outer}


@dataclass
class NestOp(PlanOp):
    alias: str
    keyspace: str
    on_keys: Expr
    outer: bool = False

    def describe(self) -> dict:
        return {"#operator": "Nest", "keyspace": self.keyspace,
                "as": self.alias, "on_keys": print_expr(self.on_keys),
                "outer": self.outer}


@dataclass
class UnnestOp(PlanOp):
    alias: str
    expr: Expr
    outer: bool = False

    def describe(self) -> dict:
        return {"#operator": "Unnest", "as": self.alias,
                "expr": print_expr(self.expr), "outer": self.outer}


@dataclass
class LetOp(PlanOp):
    bindings: list[tuple[str, Expr]]

    def describe(self) -> dict:
        return {"#operator": "Let",
                "bindings": {n: print_expr(e) for n, e in self.bindings}}


@dataclass
class GroupOp(PlanOp):
    group_exprs: list[Expr]
    aggregates: list  # FunctionCall nodes

    def describe(self) -> dict:
        return {
            "#operator": "Group",
            "by": [print_expr(e) for e in self.group_exprs],
            "aggregates": [print_expr(a) for a in self.aggregates],
        }


@dataclass
class OrderOp(PlanOp):
    terms: list[OrderTerm]

    def describe(self) -> dict:
        return {
            "#operator": "Order",
            "terms": [
                {"expr": print_expr(t.expr), "desc": t.descending}
                for t in self.terms
            ],
        }


@dataclass
class OffsetOp(PlanOp):
    count: Expr

    def describe(self) -> dict:
        return {"#operator": "Offset", "count": print_expr(self.count)}


@dataclass
class LimitOp(PlanOp):
    count: Expr

    def describe(self) -> dict:
        return {"#operator": "Limit", "count": print_expr(self.count)}


@dataclass
class InitialProject(PlanOp):
    projections: list[Projection]
    raw: bool = False

    def describe(self) -> dict:
        out = []
        for projection in self.projections:
            if projection.expr is None:
                out.append(projection.star_of + ".*" if projection.star_of else "*")
            else:
                text = print_expr(projection.expr)
                if projection.alias:
                    text += f" AS {projection.alias}"
                out.append(text)
        return {"#operator": "InitialProject", "exprs": out, "raw": self.raw}


@dataclass
class FinalProject(PlanOp):
    def describe(self) -> dict:
        return {"#operator": "FinalProject"}


@dataclass
class DistinctOp(PlanOp):
    def describe(self) -> dict:
        return {"#operator": "Distinct"}


@dataclass
class QueryPlan:
    """An ordered operator pipeline plus context the executor needs."""

    operators: list[PlanOp]
    default_alias: str | None = None
    statement_kind: str = "SELECT"

    def describe(self) -> dict:
        return {
            "#operator": "Sequence",
            "~children": [op.describe() for op in self.operators],
        }
