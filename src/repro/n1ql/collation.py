"""JSON value ordering (collation).

N1QL and the view engine both need a total order over heterogeneous
JSON values -- for ORDER BY, for index key ordering, and for range
predicates.  Both use the same type-bracketed collation (the SQL++ /
CouchDB order the paper's systems implement):

    MISSING < NULL < FALSE < TRUE < numbers < strings < arrays < objects

* Numbers compare numerically (ints and floats interchangeably).
* Strings compare by unicode code points.
* Arrays compare element-wise, shorter-is-smaller on ties.
* Objects compare by sorted (key, value) pairs.

``MISSING`` is a sentinel distinct from JSON ``null``: the absence of a
field in a document.  It is what makes N1QL's semantics "non-first
normal form": expressions over absent fields yield MISSING, which sorts
before everything and is excluded from index entries for leading keys.
"""

from __future__ import annotations

import functools
from typing import Any


class _Missing:
    """Singleton sentinel for an absent field."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "MISSING"

    def __bool__(self):
        return False

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self


MISSING = _Missing()


def type_rank(value: Any) -> int:
    """The collation bracket of a value.  Lower ranks sort first."""
    if value is MISSING:
        return 0
    if value is None:
        return 1
    if isinstance(value, bool):
        return 2 if not value else 3
    if isinstance(value, (int, float)):
        return 4
    if isinstance(value, str):
        return 5
    if isinstance(value, (list, tuple)):
        return 6
    if isinstance(value, dict):
        return 7
    raise TypeError(f"not a collatable value: {value!r}")


def compare(a: Any, b: Any) -> int:
    """Three-way comparison under JSON collation: -1, 0, or +1."""
    # Fast path for like-typed scalars, the bulk of index-key
    # comparisons.  type() is exact, so bools (rank 2/3, not
    # numerically compared) fall through to the ranked path.
    kind = type(a)
    if kind is type(b) and (kind is str or kind is int or kind is float):
        if a == b:
            return 0
        return -1 if a < b else 1
    rank_a, rank_b = type_rank(a), type_rank(b)
    if rank_a != rank_b:
        return -1 if rank_a < rank_b else 1
    if rank_a in (0, 1, 2, 3):  # MISSING, NULL, FALSE, TRUE: singletons
        return 0
    if rank_a == 4:
        if a == b:
            return 0
        return -1 if a < b else 1
    if rank_a == 5:
        if a == b:
            return 0
        return -1 if a < b else 1
    if rank_a == 6:
        for item_a, item_b in zip(a, b):
            order = compare(item_a, item_b)
            if order != 0:
                return order
        return (len(a) > len(b)) - (len(a) < len(b))
    # Objects: compare as sorted key/value pair lists.
    pairs_a = sorted(a.items())
    pairs_b = sorted(b.items())
    for (key_a, val_a), (key_b, val_b) in zip(pairs_a, pairs_b):
        if key_a != key_b:
            return -1 if key_a < key_b else 1
        order = compare(val_a, val_b)
        if order != 0:
            return order
    return (len(pairs_a) > len(pairs_b)) - (len(pairs_a) < len(pairs_b))


#: Key function for ``sorted(...)`` under JSON collation.
sort_key = functools.cmp_to_key(compare)


def equal(a: Any, b: Any) -> bool:
    return compare(a, b) == 0


def less(a: Any, b: Any) -> bool:
    return compare(a, b) < 0


def max_value(values) -> Any:
    """Collation max of an iterable (raises on empty)."""
    iterator = iter(values)
    best = next(iterator)
    for value in iterator:
        if compare(value, best) > 0:
            best = value
    return best


def min_value(values) -> Any:
    iterator = iter(values)
    best = next(iterator)
    for value in iterator:
        if compare(value, best) < 0:
            best = value
    return best
