"""The N1QL expression compiler.

Section 4.5.3 observes that "query parsing and planning are done
serially" per request; the same is true of expression evaluation, which
the interpreter in :mod:`repro.n1ql.expressions` performs by re-walking
the AST for every row.  This module lowers an expression AST **once per
plan** into a chain of Python closures, so the per-row work collapses to
direct calls:

* constant sub-expressions are folded at compile time (scalar results
  only -- folded containers would be shared across rows);
* dotted field paths (``x.address.city``) become a single closure doing
  direct dict-chain access instead of one dispatch per AST node;
* scalar functions are resolved against :data:`~repro.n1ql.functions.SCALARS`
  at compile time instead of per row;
* aggregate references pre-compute their canonical ``$agg:`` lookup key
  (the interpreter re-prints the AST for every row);
* comparison operators bind their comparator once.

A compiled expression is called as ``fn(env, ev)`` where ``env`` is the
row :class:`~repro.n1ql.expressions.Env` and ``ev`` the per-execution
:class:`~repro.n1ql.expressions.Evaluator` (which carries query
parameters, so one compiled plan serves every parameterization).  The
compiler must agree *exactly* with the interpreter, MISSING/NULL
discipline included -- ``tests/n1ql/test_query_model_property.py``
checks that on randomized expressions.

Set :data:`COMPILE_ENABLED` to False to force the interpreter fallback
(the plan-cache ablation benchmark uses this to measure the compiled
speedup in isolation).
"""

from __future__ import annotations

import re
from typing import Any, Callable

from ..common.errors import N1qlSemanticError
from .collation import MISSING, compare, sort_key
from .functions import SCALARS, is_aggregate
from .printer import print_expr
from .syntax import (
    ArrayComprehension,
    ArrayLiteral,
    Between,
    Binary,
    CaseExpr,
    CollectionPredicate,
    ElementAccess,
    Expr,
    FieldAccess,
    FunctionCall,
    Identifier,
    InList,
    IsPredicate,
    Literal,
    MissingLiteral,
    ObjectLiteral,
    Parameter,
    Unary,
)

#: Ablation switch: when False, :func:`compile_expr` returns an
#: interpreter trampoline instead of a lowered closure.
COMPILE_ENABLED = True

#: Total top-level compilations performed (mirrored into the per-node
#: ``n1ql.compile.count`` counter by the callers that have a registry).
__shared_state__ = ("COMPILE_COUNT",)
COMPILE_COUNT = 0

Compiled = Callable[[Any, Any], Any]


def compile_expr(expr: Expr, default_alias: str | None) -> Compiled:
    """Lower ``expr`` to a closure ``fn(env, evaluator) -> value``.

    ``default_alias`` is the keyspace alias unqualified identifiers fall
    back to (the plan's default alias); it is fixed at compile time
    because a plan is always executed with the alias it was built for.
    """
    global COMPILE_COUNT
    COMPILE_COUNT += 1
    if not COMPILE_ENABLED:
        return _interpret(expr)
    return _compile(expr, default_alias)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _interpret(expr: Expr) -> Compiled:
    """Interpreter trampoline: per-row AST walk, used as the ablation
    baseline and as the safety net for unknown node types."""

    def fn(env, ev):
        return ev.evaluate(expr, env)

    fn.is_const = False  # type: ignore[attr-defined]
    return fn


def _const(value: Any) -> Compiled:
    def fn(env, ev):
        return value

    fn.is_const = True  # type: ignore[attr-defined]
    return fn


def _dynamic(fn: Compiled) -> Compiled:
    fn.is_const = False  # type: ignore[attr-defined]
    return fn


class _FoldEvaluator:
    """Stand-in evaluator for compile-time folding of constant
    sub-expressions (no parameters, no aggregates in scope)."""

    params: dict = {}
    aggregate_values: dict = {}


_FOLD_EV = _FoldEvaluator()
_FOLD_ENV = None  # constant closures never touch the env


def _fold(fn: Compiled) -> Compiled:
    """Evaluate a closure over constants once.  Container results are
    NOT folded: the interpreter builds a fresh list/object per row, and
    callers may mutate what a query returns."""
    value = fn(_FOLD_ENV, _FOLD_EV)
    if isinstance(value, (list, dict)):
        return _dynamic(fn)
    return _const(value)


def _all_const(fns) -> bool:
    return all(getattr(f, "is_const", False) for f in fns)


def _compile(expr: Expr, alias: str | None) -> Compiled:
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        return _interpret(expr)
    return handler(expr, alias)


# -- leaves -----------------------------------------------------------------


def _c_literal(expr: Literal, alias):
    return _const(expr.value)


def _c_missing(expr: MissingLiteral, alias):
    return _const(MISSING)


def _c_parameter(expr: Parameter, alias):
    name = expr.name

    def fn(env, ev):
        try:
            return ev.params[name]
        except KeyError:
            raise N1qlSemanticError(
                f"no value supplied for parameter ${name}"
            ) from None

    return _dynamic(fn)


def _c_identifier(expr: Identifier, alias):
    name = expr.name
    if alias is None:
        def fn(env, ev):
            _found, value = env.lookup(name)
            return value

        return _dynamic(fn)

    def fn(env, ev):
        found, value = env.lookup(name)
        if found:
            return value
        found, doc = env.lookup(alias)
        if found and isinstance(doc, dict):
            return doc.get(name, MISSING)
        return MISSING

    return _dynamic(fn)


# -- structure access --------------------------------------------------------


def _c_field_access(expr: FieldAccess, alias):
    # Flatten a dotted chain rooted at an Identifier into one closure:
    # resolve the root, then run the dict gets in a tight loop.
    fields: list[str] = []
    node: Expr = expr
    while isinstance(node, FieldAccess):
        fields.append(node.field)
        node = node.base
    fields.reverse()
    if isinstance(node, Identifier):
        root = _c_identifier(node, alias)
        path = tuple(fields)

        def fn(env, ev):
            value = root(env, ev)
            for field in path:
                if isinstance(value, dict):
                    value = value.get(field, MISSING)
                else:
                    return MISSING
            return value

        return _dynamic(fn)
    base = _compile(expr.base, alias)
    field = expr.field

    def fn(env, ev):
        value = base(env, ev)
        if isinstance(value, dict):
            return value.get(field, MISSING)
        return MISSING

    return _dynamic(fn)


def _c_element_access(expr: ElementAccess, alias):
    base = _compile(expr.base, alias)
    index_fn = _compile(expr.index, alias)

    def fn(env, ev):
        base_value = base(env, ev)
        index = index_fn(env, ev)
        if isinstance(base_value, list) and isinstance(index, (int, float)) \
                and not isinstance(index, bool):
            i = int(index)
            if -len(base_value) <= i < len(base_value):
                return base_value[i]
            return MISSING
        if isinstance(base_value, dict) and isinstance(index, str):
            return base_value.get(index, MISSING)
        return MISSING

    if _all_const((base, index_fn)):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


# -- operators ---------------------------------------------------------------


def _c_unary(expr: Unary, alias):
    operand = _compile(expr.operand, alias)
    if expr.op == "NOT":
        def fn(env, ev):
            value = operand(env, ev)
            if value is MISSING:
                return MISSING
            if value is None:
                return None
            if isinstance(value, bool):
                return not value
            return None
    elif expr.op == "-":
        def fn(env, ev):
            value = operand(env, ev)
            if value is MISSING:
                return MISSING
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return -value
            return None
    else:
        return _interpret(expr)
    if _all_const((operand,)):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


_COMPARISONS = {
    "=": lambda order: order == 0,
    "!=": lambda order: order != 0,
    "<": lambda order: order < 0,
    "<=": lambda order: order <= 0,
    ">": lambda order: order > 0,
    ">=": lambda order: order >= 0,
}


def _c_binary(expr: Binary, alias):
    op = expr.op
    left = _compile(expr.left, alias)
    right = _compile(expr.right, alias)
    if op == "AND":
        def fn(env, ev):
            a = left(env, ev)
            if a is False:
                return False
            b = right(env, ev)
            if b is False:
                return False
            if a is True and b is True:
                return True
            if a is MISSING or b is MISSING:
                return MISSING
            return None
    elif op == "OR":
        def fn(env, ev):
            a = left(env, ev)
            if a is True:
                return True
            b = right(env, ev)
            if b is True:
                return True
            if a is None or b is None:
                return None
            if a is MISSING or b is MISSING:
                return MISSING
            return False
    elif op in _COMPARISONS:
        verdict = _COMPARISONS[op]

        def fn(env, ev):
            a = left(env, ev)
            b = right(env, ev)
            if a is MISSING or b is MISSING:
                return MISSING
            if a is None or b is None:
                return None
            return verdict(compare(a, b))
    elif op in ("LIKE", "NOT LIKE"):
        negated = op == "NOT LIKE"
        # A constant pattern compiles its regex once.
        pattern_regex = None
        if getattr(right, "is_const", False):
            pattern = right(_FOLD_ENV, _FOLD_EV)
            if isinstance(pattern, str):
                pattern_regex = re.compile(
                    re.escape(pattern).replace("%", ".*").replace("_", "."),
                    flags=re.DOTALL,
                )

        def fn(env, ev):
            a = left(env, ev)
            b = right(env, ev)
            if a is MISSING or b is MISSING:
                return MISSING
            if not isinstance(a, str) or not isinstance(b, str):
                return None
            if pattern_regex is not None:
                matched = pattern_regex.fullmatch(a) is not None
            else:
                regex = re.escape(b).replace("%", ".*").replace("_", ".")
                matched = re.fullmatch(regex, a, flags=re.DOTALL) is not None
            return (not matched) if negated else matched
    elif op == "||":
        def fn(env, ev):
            a = left(env, ev)
            b = right(env, ev)
            if a is MISSING or b is MISSING:
                return MISSING
            if isinstance(a, str) and isinstance(b, str):
                return a + b
            return None
    elif op in ("+", "-", "*", "/", "%"):
        arith = _ARITHMETIC[op]

        def fn(env, ev):
            a = left(env, ev)
            b = right(env, ev)
            if a is MISSING or b is MISSING:
                return MISSING
            if not _is_number(a) or not _is_number(b):
                return None
            return arith(a, b)
    else:
        return _interpret(expr)
    if _all_const((left, right)):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _c_between(expr: Between, alias):
    operand = _compile(expr.operand, alias)
    low = _compile(expr.low, alias)
    high = _compile(expr.high, alias)
    negated = expr.negated

    def fn(env, ev):
        value = operand(env, ev)
        lo = low(env, ev)
        hi = high(env, ev)
        if value is MISSING or lo is MISSING or hi is MISSING:
            return MISSING
        if value is None or lo is None or hi is None:
            return None
        inside = compare(value, lo) >= 0 and compare(value, hi) <= 0
        return (not inside) if negated else inside

    if _all_const((operand, low, high)):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


def _c_in_list(expr: InList, alias):
    operand = _compile(expr.operand, alias)
    items = _compile(expr.items, alias)
    negated = expr.negated

    def fn(env, ev):
        value = operand(env, ev)
        pool = items(env, ev)
        if value is MISSING or pool is MISSING:
            return MISSING
        if not isinstance(pool, list):
            return None
        found = any(compare(value, item) == 0 for item in pool)
        return (not found) if negated else found

    return _dynamic(fn)


def _c_is_predicate(expr: IsPredicate, alias):
    operand = _compile(expr.operand, alias)
    what = expr.what
    negated = expr.negated

    def fn(env, ev):
        value = operand(env, ev)
        if what == "NULL":
            if value is MISSING:
                return MISSING
            answer = value is None
        elif what == "MISSING":
            answer = value is MISSING
        else:  # VALUED
            answer = value is not MISSING and value is not None
        return (not answer) if negated else answer

    if _all_const((operand,)):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


# -- composites --------------------------------------------------------------


def _c_array_literal(expr: ArrayLiteral, alias):
    item_fns = tuple(_compile(item, alias) for item in expr.items)

    def fn(env, ev):
        out = []
        for item_fn in item_fns:
            value = item_fn(env, ev)
            out.append(None if value is MISSING else value)
        return out

    return _dynamic(fn)


def _c_object_literal(expr: ObjectLiteral, alias):
    pair_fns = tuple(
        (key, _compile(value, alias)) for key, value in expr.pairs
    )

    def fn(env, ev):
        out = {}
        for key, value_fn in pair_fns:
            value = value_fn(env, ev)
            if value is not MISSING:
                out[key] = value
        return out

    return _dynamic(fn)


def _c_case(expr: CaseExpr, alias):
    whens = tuple(
        (_compile(condition, alias), _compile(result, alias))
        for condition, result in expr.whens
    )
    otherwise = (
        _compile(expr.else_result, alias)
        if expr.else_result is not None else None
    )

    def fn(env, ev):
        for condition_fn, result_fn in whens:
            if condition_fn(env, ev) is True:
                return result_fn(env, ev)
        if otherwise is not None:
            return otherwise(env, ev)
        return None

    return _dynamic(fn)


def _c_collection_predicate(expr: CollectionPredicate, alias):
    collection = _compile(expr.collection, alias)
    condition = _compile(expr.condition, alias)
    variable = expr.variable
    is_any = expr.quantifier == "ANY"

    def fn(env, ev):
        pool = collection(env, ev)
        if pool is MISSING:
            return MISSING
        if not isinstance(pool, list):
            return None
        child = env.child()
        if is_any:
            for item in pool:
                child.values[variable] = item
                if condition(child, ev) is True:
                    return True
            return False
        for item in pool:
            child.values[variable] = item
            if condition(child, ev) is not True:
                return False
        return len(pool) > 0

    return _dynamic(fn)


def _c_array_comprehension(expr: ArrayComprehension, alias):
    collection = _compile(expr.collection, alias)
    output = _compile(expr.output, alias)
    condition = (
        _compile(expr.condition, alias)
        if expr.condition is not None else None
    )
    variable = expr.variable
    distinct = expr.distinct

    def fn(env, ev):
        pool = collection(env, ev)
        if pool is MISSING:
            return MISSING
        if not isinstance(pool, list):
            return None
        child = env.child()
        out: list = []
        for item in pool:
            child.values[variable] = item
            if condition is not None and condition(child, ev) is not True:
                continue
            value = output(child, ev)
            if value is MISSING:
                continue
            if distinct and any(compare(value, v) == 0 for v in out):
                continue
            out.append(value)
        return out

    return _dynamic(fn)


# -- functions ---------------------------------------------------------------


def _c_function_call(expr: FunctionCall, alias):
    name = expr.name
    if name == "META":
        return _c_meta(expr, alias)
    if is_aggregate(name):
        canonical = print_expr(expr)
        agg_key = "$agg:" + canonical

        def fn(env, ev):
            found, value = env.lookup(agg_key)
            if found:
                return value
            if canonical in ev.aggregate_values:
                return ev.aggregate_values[canonical]
            raise N1qlSemanticError(
                f"aggregate {name} used outside GROUP BY context"
            )

        return _dynamic(fn)
    scalar = SCALARS.get(name)
    if scalar is None:
        raise N1qlSemanticError(f"unknown function {name}()")
    arg_fns = tuple(_compile(arg, alias) for arg in expr.args)

    def fn(env, ev):
        return scalar([arg_fn(env, ev) for arg_fn in arg_fns])

    if _all_const(arg_fns):
        return _fold(_dynamic(fn))
    return _dynamic(fn)


def _c_meta(expr: FunctionCall, alias):
    fixed_alias: str | None = None
    if expr.args:
        if not isinstance(expr.args[0], Identifier):
            raise N1qlSemanticError("META() takes a keyspace alias")
        fixed_alias = expr.args[0].name
    elif alias is not None:
        fixed_alias = alias
    default_alias = alias

    def fn(env, ev):
        if fixed_alias is not None:
            target = fixed_alias
        else:
            aliases = env.aliases()
            if len(aliases) != 1:
                raise N1qlSemanticError(
                    "META() without an alias is ambiguous here"
                )
            target = aliases[0]
        meta = env.lookup_meta(target)
        if meta is not None:
            return meta
        bound, _value = env.lookup(target)
        if not bound and (default_alias is None or target != default_alias):
            raise N1qlSemanticError(
                f"META(): unknown keyspace alias {target!r}"
            )
        return MISSING

    return _dynamic(fn)


_HANDLERS = {
    Literal: _c_literal,
    MissingLiteral: _c_missing,
    Parameter: _c_parameter,
    Identifier: _c_identifier,
    FieldAccess: _c_field_access,
    ElementAccess: _c_element_access,
    Unary: _c_unary,
    Binary: _c_binary,
    Between: _c_between,
    InList: _c_in_list,
    IsPredicate: _c_is_predicate,
    ArrayLiteral: _c_array_literal,
    ObjectLiteral: _c_object_literal,
    CaseExpr: _c_case,
    CollectionPredicate: _c_collection_predicate,
    ArrayComprehension: _c_array_comprehension,
    FunctionCall: _c_function_call,
}


# ---------------------------------------------------------------------------
# Sort-key extraction (ORDER BY)
# ---------------------------------------------------------------------------


class _Reversed:
    """Descending wrapper over a collation sort key."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


def compile_sort_key(terms, default_alias: str | None) -> Compiled:
    """Lower ORDER BY terms into one ``fn(env, ev) -> tuple`` sort-key
    extractor (expression closures plus pre-bound direction wrappers)."""
    compiled = tuple(
        (compile_expr(term.expr, default_alias), term.descending)
        for term in terms
    )

    def key_for(env, ev):
        parts = []
        for fn, descending in compiled:
            key = sort_key(fn(env, ev))
            parts.append(_Reversed(key) if descending else key)
        return tuple(parts)

    return key_for
