"""Command line front end: ``python -m repro.lint [paths...]``.

Exit status is 0 when the tree is clean, 1 when any unsuppressed
violation is reported, 2 on usage errors -- so CI can gate on it next to
ruff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    discover_program,
)
from .engine import (
    PROFILES,
    _ConfigError,
    all_rules,
    lint_file,
    profile_for,
)
from .output import format_violation


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for the repro package "
                    "(determinism, layering, error discipline).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--profile", choices=("auto",) + PROFILES, default="auto",
        help="auto (default) is strict under src/repro and relaxed "
             "(wall-clock allowed) elsewhere, e.g. examples/ and "
             "benchmarks/ harness code",
    )
    parser.add_argument(
        "--select", metavar="RULE[,RULE...]", default=None,
        help="run only these rules",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default) prints path:line:col lines; github emits "
             "::error workflow commands that become inline PR annotations",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule and the invariant it guards, then exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}\n    {rule.invariant}")
        return EXIT_CLEAN
    select = args.select.split(",") if args.select else None
    files = discover_program(args.paths, "repro-lint")
    if files is None:
        return EXIT_USAGE
    violations = []
    try:
        for path in files:
            violations.extend(
                lint_file(Path(path),
                          profile=profile_for(Path(path), args.profile),
                          select=select)
            )
    except _ConfigError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    for violation in violations:
        print(format_violation(violation, args.output_format))
    if not args.quiet:
        print(
            f"repro-lint: {len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} "
            f"in {len(files)} files"
        )
    return EXIT_FINDINGS if violations else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
