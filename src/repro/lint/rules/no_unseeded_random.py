"""no-unseeded-random: every RNG is a ``random.Random(seed)`` instance.

The module-level ``random.*`` functions share one process-global,
OS-seeded generator: two runs of the same test interleave differently
and YCSB key streams stop being reproducible.  Construct
``random.Random(seed)`` with an explicit seed and thread it through.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

#: Constructors that are fine when explicitly seeded (Random) or
#: intentionally nondeterministic by contract (SystemRandom is still
#: flagged: nothing in this repo should want it).
_ALLOWED_ATTRS = frozenset({"Random"})


@register_rule
class NoUnseededRandom(Rule):
    name = "no-unseeded-random"
    invariant = (
        "no module-level random.* calls or unseeded random.Random(); "
        "every RNG is constructed with an explicit seed"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        random_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_ATTRS:
                        yield self.violation(
                            ctx, node,
                            f"random.{alias.name} uses the process-global "
                            f"RNG; construct random.Random(seed) instead",
                        )
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in random_aliases):
                continue
            attr = node.func.attr
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node,
                        "random.Random() without a seed is OS-seeded; "
                        "pass an explicit seed argument",
                    )
            elif attr not in _ALLOWED_ATTRS:
                yield self.violation(
                    ctx, node,
                    f"random.{attr}() uses the process-global RNG; "
                    f"use a seeded random.Random instance",
                )
