"""no-wall-clock: all time flows through an injected ``Clock``.

Wall-clock reads make TTL expiry, lock timeouts, and failure detection
nondeterministic -- the exact failure mode the shared ``VirtualClock``
exists to prevent.  Production code takes a ``Clock``; only the metrics
layer's profiling stopwatch (one audited, suppressed site) touches
``time.perf_counter``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

#: ``time`` module functions that read or block on the wall clock.
_TIME_FUNCTIONS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})

#: ``datetime.datetime`` / ``datetime.date`` constructors that read it.
_DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})


@register_rule
class NoWallClock(Rule):
    name = "no-wall-clock"
    invariant = (
        "all time flows through an injected Clock/VirtualClock; no "
        "time.time/monotonic/perf_counter/sleep or datetime.now/utcnow"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        time_aliases: set[str] = set()
        datetime_aliases: set[str] = set()      # the datetime *module*
        datetime_classes: set[str] = set()      # datetime/date classes
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCTIONS:
                            yield self.violation(
                                ctx, node,
                                f"importing time.{alias.name} reads the "
                                f"wall clock; inject a Clock instead",
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            receiver = func.value
            if (isinstance(receiver, ast.Name)
                    and receiver.id in time_aliases
                    and func.attr in _TIME_FUNCTIONS):
                yield self.violation(
                    ctx, node,
                    f"time.{func.attr}() reads the wall clock; use the "
                    f"injected Clock (common/clock.py)",
                )
            if func.attr in _DATETIME_FUNCTIONS:
                if isinstance(receiver, ast.Name) and \
                        receiver.id in datetime_classes:
                    yield self.violation(
                        ctx, node,
                        f"datetime.{func.attr}() reads the wall clock; "
                        f"use the injected Clock",
                    )
                elif (isinstance(receiver, ast.Attribute)
                      and isinstance(receiver.value, ast.Name)
                      and receiver.value.id in datetime_aliases
                      and receiver.attr in ("datetime", "date")):
                    yield self.violation(
                        ctx, node,
                        f"datetime.{receiver.attr}.{func.attr}() reads the "
                        f"wall clock; use the injected Clock",
                    )
