"""pump-contract: background pumps are bounded and report progress.

``Scheduler.run_until_idle`` terminates only because every pump (a) does
a *bounded* batch of work per invocation and (b) returns ``bool`` so the
scheduler can detect quiescence.  A pump that loops ``while True`` until
its queue drains starves every other pump and defeats the livelock
safety valve; a pump without a ``-> bool`` annotation is one refactor
away from returning ``None`` (falsy) and silently ending rounds early.
The rule checks the conventionally named pump entry points (``pump`` /
``_pump``) that ``Scheduler.register`` call sites hand over.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_PUMP_NAMES = frozenset({"pump", "_pump"})


@register_rule
class PumpContract(Rule):
    name = "pump-contract"
    invariant = (
        "every Scheduler pump returns bool (annotated -> bool) and drains "
        "a bounded batch per call; no unbounded `while True` drain loops"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in _PUMP_NAMES):
                continue
            if not _returns_bool(node):
                yield self.violation(
                    ctx, node,
                    f"pump {node.name}() must be annotated `-> bool` so the "
                    f"scheduler can detect quiescence",
                )
            for loop in ast.walk(node):
                if isinstance(loop, ast.While) and _is_true(loop.test) \
                        and not _has_break(loop):
                    yield self.violation(
                        ctx, loop,
                        f"unbounded `while True` drain inside pump "
                        f"{node.name}(); drain a bounded batch and return "
                        f"True to be re-invoked",
                    )


def _returns_bool(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    returns = node.returns
    return isinstance(returns, ast.Name) and returns.id == "bool"


def _is_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and test.value is True


def _has_break(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Break):
            return True
        # A break inside a nested loop doesn't exit this one, but nested
        # loops inside an unbounded drain are rare enough that the
        # coarse check keeps the rule simple; suppress if it misfires.
    return False
