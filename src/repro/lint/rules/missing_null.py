"""missing-null-discipline: N1QL code respects the MISSING sentinel.

Section 3.2.1's value space has *two* absent values: MISSING (the field
is not there) and NULL (it is there and null), and they propagate
differently through every operator.  Python code that compares an
evaluator result with ``== None`` (or tests ``evaluate(...) is None``
directly, skipping the MISSING check) silently collapses the two.  The
rule fires only inside ``repro.n1ql``:

* any ``== None`` / ``!= None`` comparison (also a Python style bug);
* ``<evaluator>.evaluate(...) is None`` / ``is not None`` on the call
  result itself -- bind the value and test ``is MISSING`` first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_EVAL_NAMES = frozenset({"evaluate", "eval_expr"})


@register_rule
class MissingNullDiscipline(Rule):
    name = "missing-null-discipline"
    invariant = (
        "n1ql code never conflates MISSING with NULL: no `== None` "
        "comparisons, and no `is None` directly on evaluate() results "
        "without checking the MISSING sentinel"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(("repro.n1ql",)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                        _is_none(left) or _is_none(right)):
                    yield self.violation(
                        ctx, node,
                        "`== None` conflates NULL with MISSING (and is "
                        "never identity-safe); use `is None` after an "
                        "explicit `is MISSING` check",
                    )
                elif isinstance(op, (ast.Is, ast.IsNot)):
                    other = left if _is_none(right) else (
                        right if _is_none(left) else None)
                    if other is not None and _is_evaluate_call(other):
                        yield self.violation(
                            ctx, node,
                            "`evaluate(...) is None` skips the MISSING "
                            "check; bind the result and test `is MISSING` "
                            "before `is None`",
                        )


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_evaluate_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _EVAL_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _EVAL_NAMES
    return False
