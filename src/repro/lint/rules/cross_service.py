"""no-cross-service-reach-through: services talk RPC, not object graphs.

The paper's services (query, index, views, XDCR, smart clients) reach
the data service over the network; reaching into ``repro.kv.engine``
from those layers would let tests pass against state a real deployment
could never observe.  Shared protocol/value types live in
``repro.kv.types``; ``if TYPE_CHECKING:`` imports are erased at runtime
and therefore allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

#: Packages that run (or model code running) off the data node and must
#: go through the transport/smart-client RPC layer.
RESTRICTED_PACKAGES = (
    "repro.client",
    "repro.n1ql",
    "repro.gsi",
    "repro.views",
    "repro.xdcr",
)

_ENGINE_SUFFIX = "kv.engine"


@register_rule
class NoCrossServiceReachThrough(Rule):
    name = "no-cross-service-reach-through"
    invariant = (
        "client/, n1ql/, gsi/, views/, xdcr/ never import repro.kv.engine; "
        "shared value types come from repro.kv.types, data access goes "
        "through the transport/smart-client RPC layer"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(RESTRICTED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if ctx.in_type_checking_block(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(_ENGINE_SUFFIX):
                        yield self._flag(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith(_ENGINE_SUFFIX):
                    yield self._flag(ctx, node, module)

    def _flag(self, ctx: LintContext, node: ast.AST,
              module: str) -> Violation:
        return self.violation(
            ctx, node,
            f"{ctx.module} is a non-data service and may not import "
            f"{module}; take shared types from repro.kv.types and reach "
            f"the data service via the transport/smart-client RPC layer",
        )
