"""no-pump-reentrancy: pump bodies never re-enter the scheduler.

A pump runs *inside* ``Scheduler.step``; calling ``run_until_idle`` /
``step`` / ``run_until`` / ``advance`` from a pump body recursively
drives the other pumps from an arbitrary point in the current round.
That nests rounds (quiescence detection sees a mix of two rounds'
progress), reorders pumps behind the schedule policy's back, and -- with
the reentrancy guard added alongside this rule -- now raises
``SchedulerReentrancyError`` at runtime.  The lint catches it at review
time instead: pumps return and let the scheduler call them again.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_PUMP_NAMES = frozenset({"pump", "_pump"})
_DRIVE_METHODS = frozenset({"run_until_idle", "step", "run_until", "advance"})


@register_rule
class NoPumpReentrancy(Rule):
    name = "no-pump-reentrancy"
    invariant = (
        "pump bodies never call the scheduler drive loop (run_until_idle/"
        "step/run_until/advance); pumps return and get re-invoked"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in _PUMP_NAMES):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                callee = _called_name(call.func)
                if callee in _DRIVE_METHODS:
                    yield self.violation(
                        ctx, call,
                        f"pump {node.name}() calls {callee}(), re-entering "
                        f"the scheduler drive loop mid-round; return instead "
                        f"and let the scheduler re-invoke the pump",
                    )


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
