"""declared-shared-state: module-level mutable state is registered.

Module-level mutable state (a counter, a registry dict, a cached
singleton) is shared by every cluster, test, and sanitizer run in the
process.  Undeclared, it is exactly the kind of hidden channel the
schedule sanitizer cannot reason about: two scenario replays observe
each other through it and digests stop being functions of the schedule
alone.

The rule does not ban such state -- some is legitimate (the tracing
hook, the vBucket UUID counter) -- it forces each module to *declare*
it in a module-level ``__shared_state__`` tuple naming the globals that
intentionally outlive a single run:

    __shared_state__ = ("_tracker",)
    _tracker: Tracker | None = None

Flagged unless declared (or suppressed):

* module-level bindings of stateful constructors (``itertools.count``,
  ``Counter``, ``defaultdict``, ``deque``, ``OrderedDict``, ``cycle``);
* module-level mutable displays/comprehensions (``= []``, ``= {}``)
  bound to lowercase names -- CONSTANT_CASE bindings are treated as
  frozen by convention;
* ``global NAME`` statements, the tell that a function rebinds module
  state.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_DECLARATION = "__shared_state__"
_STATEFUL_CONSTRUCTORS = frozenset({
    "count", "cycle", "Counter", "defaultdict", "deque", "OrderedDict",
})
_CONSTANT_STYLE = re.compile(r"^_{0,2}[A-Z0-9_]+$")
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


@register_rule
class DeclaredSharedState(Rule):
    name = "declared-shared-state"
    invariant = (
        "module-level mutable state is declared in __shared_state__ "
        "(or suppressed) so shared-across-runs channels are explicit"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        declared = _declared_names(ctx.tree)
        for statement in ctx.tree.body:
            yield from self._check_binding(ctx, statement, declared)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name not in declared:
                        yield self.violation(
                            ctx, node,
                            f"`global {name}` rebinds module state from a "
                            f"function; declare {name!r} in "
                            f"{_DECLARATION} if the sharing is intentional",
                        )

    def _check_binding(self, ctx: LintContext, statement: ast.stmt,
                       declared: set[str]) -> Iterator[Violation]:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            targets, value = [statement.target], statement.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        names = [n for n in names
                 if n not in declared and not _is_dunder(n)]
        if not names:
            return
        constructor = _stateful_constructor(value)
        if constructor is not None:
            yield self.violation(
                ctx, statement,
                f"module-level {constructor}() is process-wide mutable "
                f"state; declare {', '.join(repr(n) for n in names)} in "
                f"{_DECLARATION} if the sharing is intentional",
            )
            return
        mutable_names = [n for n in names if not _CONSTANT_STYLE.match(n)]
        if mutable_names and isinstance(value, _MUTABLE_DISPLAYS):
            yield self.violation(
                ctx, statement,
                f"module-level mutable "
                f"{type(value).__name__.lower().removesuffix('comp')} "
                f"bound to {', '.join(repr(n) for n in mutable_names)}; "
                f"declare in {_DECLARATION}, or use CONSTANT_CASE and "
                f"treat it as frozen",
            )


def _declared_names(tree: ast.Module) -> set[str]:
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            targets, value = [statement.target], statement.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == _DECLARATION
                   for t in targets):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            return {element.value for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)}
    return set()


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _stateful_constructor(value: ast.expr) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    return name if name in _STATEFUL_CONSTRUCTORS else None
