"""metrics-naming: metric names are dotted lowercase literals.

Dashboards and the ablation benches select series by exact name
(``n1ql.plan_cache.hit``); a dynamically built or oddly cased name is a
series nobody ever graphs.  Every ``metrics.inc(...)`` /
``metrics.observe(...)`` call must pass a string literal matching the
``service.component[.component...]`` convention.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_METRIC_METHODS = frozenset({"inc", "observe", "timer"})

#: n1ql.plan_cache.hit, kv.multi_gets, rebalance.vbuckets_out, ...
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


@register_rule
class MetricsNaming(Rule):
    name = "metrics-naming"
    invariant = (
        "every metrics counter/timer name is a dotted lowercase literal "
        "(`n1ql.plan_cache.hit` convention) so dashboards never chase "
        "dynamic names"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_METHODS
                    and _receiver_is_metrics(node.func.value)):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield self.violation(
                    ctx, node,
                    f"metrics.{node.func.attr}() name must be a string "
                    f"literal, not a computed value; dashboards select "
                    f"series by exact name",
                )
            elif not _NAME_RE.match(name_arg.value):
                yield self.violation(
                    ctx, node,
                    f"metric name {name_arg.value!r} does not match the "
                    f"dotted lowercase convention (like "
                    f"'n1ql.plan_cache.hit')",
                )


def _receiver_is_metrics(receiver: ast.expr) -> bool:
    """True for ``metrics.inc`` / ``self.metrics.inc`` /
    ``self.node.metrics.observe`` -- the chain ends in ``metrics``."""
    if isinstance(receiver, ast.Name):
        return receiver.id == "metrics"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "metrics"
    return False
