"""Rule modules -- importing this package populates the registry.

One module per rule; each is a :class:`repro.lint.engine.Rule` subclass
decorated with ``@register_rule``.  Add a rule by dropping a new module
here and importing it below.
"""

from . import (  # noqa: F401
    cross_service,
    declared_shared_state,
    error_taxonomy,
    metrics_naming,
    missing_null,
    no_pump_reentrancy,
    no_unseeded_random,
    no_wall_clock,
    pump_contract,
)
