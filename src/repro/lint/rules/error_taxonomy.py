"""error-taxonomy: service-layer code raises ``common.errors`` types.

Applications catch ``ReproError`` (or a specific subclass) at the public
API; a bare ``ValueError`` escaping the stack bypasses that contract and
can't carry protocol metadata (key, vbucket, CAS).  Constructor argument
validation (``__init__``/``__post_init__``) is allowlisted: rejecting a
nonsense config object at build time is a programming error, not a
service response.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintContext, Rule, Violation, register_rule

_BANNED = frozenset({"ValueError", "KeyError", "RuntimeError"})

#: Raises directly inside these functions are constructor argument
#: validation -- programming errors, allowed to stay builtin.
_VALIDATION_FUNCTIONS = frozenset({"__init__", "__post_init__"})


@register_rule
class ErrorTaxonomy(Rule):
    name = "error-taxonomy"
    invariant = (
        "service-layer code raises common.errors types (every public "
        "failure is a ReproError); bare ValueError/KeyError/RuntimeError "
        "only in constructor argument validation"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(self, ctx: LintContext, node: ast.AST,
              enclosing: str | None) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, enclosing=child.name)
            elif isinstance(child, ast.Raise):
                name = _raised_name(child)
                if name in _BANNED and enclosing not in _VALIDATION_FUNCTIONS:
                    yield self.violation(
                        ctx, child,
                        f"raise {name} from service-layer code; raise a "
                        f"common.errors type (or subclass one from "
                        f"{name} if callers catch the builtin)",
                    )
                yield from self._walk(ctx, child, enclosing)
            else:
                yield from self._walk(ctx, child, enclosing)


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None
