"""repro-lint: AST-based invariant checker for this reproduction.

The architecture the paper implies rests on invariants nothing in the
Python language enforces: all time flows through ``VirtualClock``, all
background work runs as bounded deterministic pumps, cross-service
access goes through the transport/smart-client RPC layer, and N1QL
honors the MISSING/NULL value discipline.  This package is a small
static-analysis pass over the package's own AST that keeps those
invariants from silently eroding -- one careless ``time.time()`` away
from nondeterministic tests.

Run it as ``python -m repro.lint [paths...]`` or through the tier-1
pytest suite (``tests/lint``).  Violations can be suppressed per line
with ``# repro-lint: disable=<rule>[,<rule>...]`` (or ``disable-next=``
on the preceding line); every suppression should carry a justification
comment.
"""

from .engine import (  # noqa: F401
    LintContext,
    Rule,
    Violation,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
