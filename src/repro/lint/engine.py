"""The rule harness: contexts, registry, suppressions, file discovery.

Each rule lives in its own module under :mod:`repro.lint.rules` and
subclasses :class:`Rule`; the harness parses each file once, hands every
rule the same :class:`LintContext`, and filters out violations the
source suppresses with ``# repro-lint: disable=<rule>`` comments.  The
point of the shared context is that a future rule is ~one small file:
subclass, ``@register_rule``, yield :class:`Violation` objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..analysis.harness import (  # noqa: F401  (re-exported for callers)
    PROFILES,
    discover,
    module_name_for,
    parse_suppressions,
    profile_for,
    suppressed,
)

#: Rules that the relaxed profile (examples/, benchmarks/) turns off:
#: harness code legitimately measures wall-clock time and accumulates
#: module-level result tables across test functions.
RELAXED_EXEMPT = frozenset({"no-wall-clock", "declared-shared-state"})


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what to do about it."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    path: str
    module: str
    tree: ast.Module
    source_lines: list[str]
    profile: str = "strict"
    #: line -> set of rule names disabled on that line ("all" disables every rule).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: (first, last) line ranges of ``if TYPE_CHECKING:`` bodies -- imports
    #: inside are erased at runtime, so reach-through rules ignore them.
    type_checking_ranges: list[tuple[int, int]] = field(default_factory=list)

    def in_type_checking_block(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return any(first <= line <= last
                   for first, last in self.type_checking_ranges)

    def module_in(self, prefixes: Iterable[str]) -> bool:
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`name` (the suppression/CLI identifier),
    :attr:`invariant` (the one-line statement of what the rule guards,
    surfaced by ``--list-rules`` and DESIGN.md), and implement
    :meth:`check`.
    """

    name: str = ""
    invariant: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.name:
        raise _ConfigError(f"rule {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise _ConfigError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


class _ConfigError(Exception):
    """Bad linter configuration (unknown rule name, duplicate rule)."""


def all_rules() -> list[Rule]:
    """Every registered rule, importing the rule modules on first use."""
    from . import rules  # noqa: F401  (import populates the registry)
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _type_checking_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    ranges = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc and node.body:
            last = max(
                getattr(n, "end_lineno", None) or 0
                for n in ast.walk(node)
                if hasattr(n, "lineno")
            )
            ranges.append((node.lineno, max(last, node.lineno)))
    return ranges


def build_context(source: str, path: str, module: str,
                  profile: str = "strict") -> LintContext:
    tree = ast.parse(source, filename=path)
    source_lines = source.splitlines()
    return LintContext(
        path=path,
        module=module,
        tree=tree,
        source_lines=source_lines,
        profile=profile,
        suppressions=parse_suppressions(source_lines, "repro-lint"),
        type_checking_ranges=_type_checking_ranges(tree),
    )


def _active_rules(profile: str, select: Iterable[str] | None) -> list[Rule]:
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            raise _ConfigError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.name in wanted]
    if profile == "relaxed":
        rules = [rule for rule in rules if rule.name not in RELAXED_EXEMPT]
    return rules


def lint_source(source: str, path: str = "<string>",
                module: str | None = None, profile: str = "strict",
                select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string.  ``module`` defaults from ``path``; pass
    it explicitly in fixture tests to exercise package-scoped rules."""
    if module is None:
        module = module_name_for(Path(path))
    try:
        ctx = build_context(source, path, module, profile)
    except SyntaxError as exc:
        return [Violation(rule="parse-error", path=path,
                          line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                          message=f"file does not parse: {exc.msg}")]
    findings: list[Violation] = []
    for rule in _active_rules(profile, select):
        findings.extend(rule.check(ctx))
    findings = [v for v in findings
                if not suppressed(v.rule, v.line, ctx.suppressions)]
    findings.sort(key=lambda v: (v.line, v.col, v.rule))
    return findings


def lint_file(path: Path, profile: str = "strict",
              select: Iterable[str] | None = None) -> list[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path),
                       module=module_name_for(path), profile=profile,
                       select=select)


def lint_paths(paths: Iterable[str | Path], profile: str = "auto",
               select: Iterable[str] | None = None) -> list[Violation]:
    findings: list[Violation] = []
    for path in discover(paths):
        findings.extend(
            lint_file(path, profile=profile_for(path, profile), select=select)
        )
    return findings
