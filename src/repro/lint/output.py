"""Violation rendering; the annotation writer lives in repro.analysis.

The ``--format github`` machinery moved to :mod:`repro.analysis.output`
when repro-flow joined the suite; this module keeps the lint-specific
:func:`format_violation` and re-exports the shared names for existing
importers.
"""

from __future__ import annotations

from ..analysis.output import FORMATS, github_annotation  # noqa: F401


def format_violation(violation, output_format: str) -> str:
    """Render a :class:`repro.lint.engine.Violation` in either format."""
    if output_format == "github":
        return github_annotation(
            violation.message, title=violation.rule, path=violation.path,
            line=violation.line, col=violation.col,
        )
    return violation.format()
