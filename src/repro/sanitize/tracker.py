"""The write-race tracker.

During a sanitized run the scheduler reports pump entry/exit, the
network fabric reports mediated dispatch, and the instrumented choke
points (:mod:`repro.common.tracing`) report shared-structure writes and
queue takes.  From those events this tracker flags two shapes of race:

* **unmediated cross-pump write** -- a pump mutated a structure it does
  not own without going through the network fabric.  Ownership is by
  naming convention: the pumps of a KV engine ``kv/<node>/<bucket>`` are
  its flusher and compactor; a view index ``views/<node>/<bucket>`` is
  owned by that node's view pump; GSI storage ``gsi/<node>/<index>`` is
  network-fed only (the projector routes key versions over RPC).
  Everything else must either run on the frontend (no pump active) or
  arrive via :meth:`repro.common.transport.Network.call`.

* **queue theft** -- a DCP stream is a single-consumer queue: the first
  pump to ``take()`` from it claims it, and any other pump taking from
  the same stream later races the owner for messages (each message is
  delivered once, so whoever loses silently misses mutations).

Frontend code (no pump active -- test drivers, timer callbacks, client
calls) is never flagged: interleaving only exists between pumps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RaceFinding:
    """One detected violation of the pump-ownership discipline."""

    kind: str  # "unmediated-write" | "queue-theft"
    pump: str  # scheduler-qualified pump name, e.g. "east:xdcr/b->b"
    target: str  # ownership tag or stream id
    detail: str

    def format(self) -> str:
        return f"{self.kind}: pump {self.pump!r} -> {self.target}: {self.detail}"


def allowed_writers(tag: str) -> frozenset[str]:
    """Pump names (local to their scheduler) allowed to mutate ``tag``
    directly, derived from the registration naming convention."""
    kind, _, rest = tag.partition("/")
    if kind == "kv":
        return frozenset({f"flusher/{rest}", f"compactor/{rest}"})
    if kind == "views":
        return frozenset({f"views/{rest}"})
    return frozenset()


class WriteRaceTracker:
    """Collects :class:`RaceFinding` objects for one sanitized run.

    Implements the :class:`repro.common.tracing.Tracker` protocol; the
    sanitizer installs one instance per scenario execution.
    """

    def __init__(self) -> None:
        self.findings: list[RaceFinding] = []
        self.writes_seen = 0
        self.takes_seen = 0
        self._pump_stack: list[str] = []
        self._mediation_depth = 0
        #: stream id -> scheduler-qualified name of the claiming pump.
        self._stream_owners: dict[str, str] = {}
        self._reported: set[tuple[str, str, str]] = set()

    # -- scheduler / network hooks ---------------------------------------------

    def enter_pump(self, name: str) -> None:
        self._pump_stack.append(name)

    def exit_pump(self) -> None:
        if self._pump_stack:
            self._pump_stack.pop()

    def enter_mediated(self) -> None:
        self._mediation_depth += 1

    def exit_mediated(self) -> None:
        if self._mediation_depth:
            self._mediation_depth -= 1

    # -- choke-point events -----------------------------------------------------

    def record_write(self, tag: str) -> None:
        self.writes_seen += 1
        if not self._pump_stack or self._mediation_depth:
            return  # frontend/timer code, or a declared RPC hand-off
        pump = self._pump_stack[-1]
        local = pump.split(":", 1)[-1]
        if local in allowed_writers(tag):
            return
        self._report(
            "unmediated-write", pump, tag,
            f"wrote {tag} directly; only {sorted(allowed_writers(tag)) or 'RPC'}"
            " may touch it outside the network fabric",
        )

    def record_take(self, stream_id: str) -> None:
        self.takes_seen += 1
        if not self._pump_stack or self._mediation_depth:
            return  # frontend consumers (rebalance movers, tests) are fine
        pump = self._pump_stack[-1]
        owner = self._stream_owners.setdefault(stream_id, pump)
        if owner == pump:
            return
        self._report(
            "queue-theft", pump, stream_id,
            f"took from a stream owned by {owner!r}; DCP streams are "
            "single-consumer queues",
        )

    # -- internals ---------------------------------------------------------------

    def _report(self, kind: str, pump: str, target: str, detail: str) -> None:
        key = (kind, pump, target)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(RaceFinding(kind, pump, target, detail))
