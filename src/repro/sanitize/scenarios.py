"""Built-in sanitizer scenarios.

Each scenario is a small, fast end-to-end workload whose converged state
must be schedule independent.  A scenario builds its clusters with the
policy under test installed *before* any pump registrations matter, runs
a workload with explicit settle points, and returns the clusters plus
its own observations (query results, durability acks) for digesting.

Scenarios keep clusters tiny (2-3 nodes, 4-8 vBuckets, tens of docs):
the oracle runs each one dozens of times, and interleaving bugs are a
property of orderings, not of scale.

Multi-cluster scenarios give every node a globally unique name so the
write-race tracker's ownership tags (``kv/<node>/<bucket>``) never
collide across clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..common.errors import (
    InvalidArgumentError,
    KeyNotFoundError,
    TemporaryFailureError,
)
from ..common.scheduler import SchedulePolicy
from ..gsi.indexdef import IndexDefinition, path_extractor
from ..server import Cluster
from ..views.mapreduce import ViewDefinition
from ..xdcr.replicator import XdcrReplication, settle


@dataclass
class RunOutcome:
    """What one scenario execution hands back to the oracle."""

    #: ``[(name, Cluster), ...]`` -- digested in order.
    clusters: list
    #: scheduler name -> Scheduler, for schedule traces.
    schedulers: dict
    #: Scenario-level observations folded into the digest (query rows,
    #: durability acks, converged reads).
    observations: dict


@dataclass
class Scenario:
    """A named workload the oracle can replay under many policies."""

    name: str
    description: str
    run: Callable[[SchedulePolicy], RunOutcome]
    #: True for deliberately broken fixtures that detectors must catch.
    expect_findings: bool = False


def sanitized_cluster(name: str, policy: SchedulePolicy, *,
                      nodes, vbuckets: int,
                      auto_failover: bool = True) -> Cluster:
    """A Cluster wired for sanitized runs: named scheduler (so pump
    names are cluster-qualified in reports), policy installed, and
    schedule tracing on -- all before any bucket pumps register."""
    cluster = Cluster(nodes=nodes, vbuckets=vbuckets,
                      auto_failover=auto_failover)
    cluster.scheduler.name = name
    cluster.scheduler.policy = policy
    cluster.scheduler.trace = []
    return cluster


def _outcome(*named_clusters, observations: dict) -> RunOutcome:
    return RunOutcome(
        clusters=list(named_clusters),
        schedulers={name: c.scheduler for name, c in named_clusters},
        observations=observations,
    )


_ALL = ("data", "index", "query")


# -- kv-durability ---------------------------------------------------------------


def _run_kv_durability(policy: SchedulePolicy) -> RunOutcome:
    """Durable writes and deletes: every ack must hold once quiesced,
    under any pump order."""
    cluster = sanitized_cluster(
        "kv", policy, vbuckets=8,
        nodes=[("kv1", _ALL), ("kv2", _ALL), ("kv3", _ALL)],
    )
    cluster.create_bucket("b", replicas=1)
    client = cluster.connect()
    acks: dict[str, str] = {}
    for i in range(12):
        client.upsert("b", f"k{i}", {"i": i}, replicate_to=1, persist_to=1)
        acks[f"k{i}"] = "write-durable"
    for i in range(0, 12, 3):
        client.remove("b", f"k{i}", persist_to=1)
        acks[f"k{i}"] = "delete-durable"
    cluster.run_until_idle()
    observed: dict[str, list] = {}
    cluster_map = cluster.manager.cluster_maps["b"]
    for key in sorted(acks):
        vbucket_id = cluster_map.vbucket_for_key(key)
        probes = []
        for node_name in cluster_map.chains[vbucket_id]:
            if node_name is None:
                continue
            result = cluster.network.call(
                "sanitize-probe", node_name, "kv_observe", "b", vbucket_id, key
            )
            probes.append([node_name, result.exists, result.persisted])
        observed[key] = probes
    return _outcome(("kv", cluster),
                    observations={"acks": acks, "observe": observed})


# -- failover-replica-promote -----------------------------------------------------


def _run_failover(policy: SchedulePolicy) -> RunOutcome:
    """Auto-failover promotes replicas; post-failover state must not
    depend on pump order.  The workload settles before the crash: data
    still in flight at crash time is *legitimately* schedule dependent."""
    cluster = sanitized_cluster(
        "fo", policy, vbuckets=8,
        nodes=[("fo1", _ALL), ("fo2", _ALL), ("fo3", _ALL)],
    )
    cluster.create_bucket("b", replicas=1)
    client = cluster.connect()
    for i in range(12):
        client.upsert("b", f"k{i}", {"i": i})
    cluster.run_until_idle()
    cluster.crash_node("fo3")
    cluster.tick(31.0)  # past AUTO_FAILOVER_TIMEOUT: replicas promote
    for i in range(12, 18):
        client.upsert("b", f"k{i}", {"i": i})
    cluster.run_until_idle()
    reads = {}
    for i in range(18):
        reads[f"k{i}"] = client.get("b", f"k{i}").value
    return _outcome(("fo", cluster), observations={"reads": reads})


# -- rebalance --------------------------------------------------------------------


def _run_rebalance(policy: SchedulePolicy) -> RunOutcome:
    """vBucket moves (add-node rebalance) followed by a failover
    promotion: the two paths that retire vBucket copies (move handoff
    marks the source DEAD; failover promotes replicas over lost
    actives).  Whatever order the movers, flushers and replicators
    pumped in, the surviving data -- including ids whose old copies died
    on a node that later takes them back -- must be identical."""
    cluster = sanitized_cluster(
        "rb", policy, vbuckets=8, nodes=[("rb1", _ALL), ("rb2", _ALL)],
    )
    cluster.create_bucket("b", replicas=1)
    client = cluster.connect()
    for i in range(16):
        client.upsert("b", f"k{i}", {"i": i})
    cluster.run_until_idle()
    # Join a node and move vBuckets onto it (source copies go DEAD).
    cluster.add_node("rb3", services=_ALL)
    cluster.rebalance()
    for i in range(16, 24):
        client.upsert("b", f"k{i}", {"i": i})
    for i in range(0, 16, 4):
        client.remove("b", f"k{i}")
    cluster.run_until_idle()
    # Then lose it: auto-failover promotes the replicas back onto the
    # original nodes, reusing ids they gave away during the move.
    cluster.crash_node("rb3")
    cluster.tick(31.0)  # past AUTO_FAILOVER_TIMEOUT: replicas promote
    cluster.run_until_idle()
    reads = {}
    for i in range(24):
        key = f"k{i}"
        try:
            reads[key] = client.get("b", key).value
        except KeyNotFoundError:
            reads[key] = "<deleted>"
    return _outcome(("rb", cluster), observations={"reads": reads})


# -- views-gsi-index --------------------------------------------------------------


def _run_views_gsi(policy: SchedulePolicy) -> RunOutcome:
    """View and GSI maintenance are DCP consumers racing the flusher and
    each other; index contents after quiescence must be identical."""
    cluster = sanitized_cluster(
        "ix", policy, vbuckets=8, nodes=[("ix1", _ALL), ("ix2", _ALL)],
    )
    cluster.create_bucket("b", replicas=1)

    def by_group(doc, meta, emit):
        if "g" in doc:
            emit(doc["g"], doc.get("i"))

    cluster.define_view("b", ViewDefinition("dd", "by_g", by_group))
    cluster.create_index(IndexDefinition(
        "by_i", "b", ["i"], [path_extractor("i")],
    ))
    client = cluster.connect()
    for i in range(20):
        client.upsert("b", f"k{i}", {"i": i, "g": i % 4})
    for i in range(0, 20, 5):
        client.remove("b", f"k{i}")
    for i in range(1, 20, 5):
        client.upsert("b", f"k{i}", {"i": i + 100, "g": i % 4})
    cluster.run_until_idle()
    view_rows = cluster.views.query("b", "dd", "by_g", stale="false").rows
    gsi_rows = cluster.gsi.scan("by_i", scan_consistency="request_plus")
    return _outcome(("ix", cluster), observations={
        "view": [[row["key"], row["value"], row["id"]] for row in view_rows],
        "gsi": [[key, doc_id] for key, doc_id in gsi_rows],
    })


# -- xdcr-bidirectional -----------------------------------------------------------


def _run_xdcr(policy: SchedulePolicy) -> RunOutcome:
    """Bidirectional XDCR with conflicting writers: both clusters must
    converge on the same winners whatever order the pumps ran in."""
    east = sanitized_cluster(
        "east", policy, vbuckets=8, nodes=[("e1", _ALL), ("e2", _ALL)],
    )
    west = sanitized_cluster(
        "west", policy, vbuckets=4,
        nodes=[("w1", _ALL), ("w2", _ALL), ("w3", _ALL)],
    )
    east.create_bucket("b", replicas=1)
    west.create_bucket("b", replicas=1)
    XdcrReplication(east, west, "b")
    XdcrReplication(west, east, "b")
    ce, cw = east.connect(), west.connect()
    for i in range(10):
        ce.upsert("b", f"k{i}", {"side": "east", "i": i})
    for i in range(10):
        # Conflicting writers: higher rev (two updates) must win on both
        # sides for even keys; east's single write wins ties... never --
        # deterministic resolution picks the same winner everywhere.
        cw.upsert("b", f"k{i}", {"side": "west", "i": i})
        if i % 2 == 0:
            cw.upsert("b", f"k{i}", {"side": "west", "i": i, "again": True})
    ce.remove("b", "k9")
    settle(east, west)
    converged = {}
    for i in range(10):
        key = f"k{i}"
        try:
            east_value = ce.get("b", key).value
        except KeyNotFoundError:
            east_value = "<deleted>"
        try:
            west_value = cw.get("b", key).value
        except KeyNotFoundError:
            west_value = "<deleted>"
        converged[key] = [east_value, west_value]
    return _outcome(("east", east), ("west", west),
                    observations={"converged": converged})


# -- scatter-gather-query ---------------------------------------------------------


def _run_scatter_gather(policy: SchedulePolicy) -> RunOutcome:
    """N1QL over a partitioned GSI index: the parallel scatter-gather
    scan fans out to every partition and k-way merges the streams, and
    the partial-aggregate pushdown merges per-partition group partials.
    Whatever order the index pumps drained mutations in, the merged row
    stream -- order included -- and the merged aggregates must be
    identical."""
    cluster = sanitized_cluster(
        "sg", policy, vbuckets=8,
        nodes=[("sg1", _ALL), ("sg2", _ALL), ("sg3", _ALL)],
    )
    cluster.create_bucket("b", replicas=1)
    client = cluster.connect()
    for i in range(24):
        client.upsert("b", f"k{i:02d}", {"v": i % 5, "w": i})
    for i in range(0, 24, 6):
        client.upsert("b", f"k{i:02d}", {"v": i % 5, "w": i + 100})
    for i in range(3, 24, 8):
        client.remove("b", f"k{i:02d}")
    cluster.run_until_idle()
    cluster.query('CREATE INDEX by_v ON b(v, w) USING GSI '
                  'WITH {"num_partitions": 3}')
    ordered = cluster.query(
        "SELECT v, w FROM b x WHERE x.v >= 0 ORDER BY x.v LIMIT 10",
        scan_consistency="request_plus").rows
    grouped = cluster.query(
        "SELECT v, COUNT(*) AS n, SUM(x.w) AS total FROM b x "
        "WHERE x.v >= 0 GROUP BY v",
        scan_consistency="request_plus").rows
    return _outcome(("sg", cluster), observations={
        "ordered": ordered, "grouped": grouped,
    })


# -- overload-quota ---------------------------------------------------------------


def _run_overload_quota(policy: SchedulePolicy) -> RunOutcome:
    """A write load against a deliberately tiny quota: TMPFAILs, client
    backoff, breaker trips, pager ejections.  How *often* the engine
    sheds depends on pump order (flusher progress is the schedule), and
    retry counts move the CAS counter -- so the cluster digest is
    legitimately schedule dependent and excluded.  What must NOT depend
    on the schedule: every retried write eventually lands with its final
    value, the incremental memory counter equals the ground-truth sum,
    and the admission front door recovers (breaker closed, pressure
    decayed) once the load stops."""
    cluster = sanitized_cluster(
        "ov", policy, vbuckets=4, nodes=[("ov1", _ALL)],
    )
    cluster.create_bucket("b", replicas=0, quota_bytes=48 * 1024,
                          expiry_pager_interval=None)
    client = cluster.connect()
    for i in range(40):
        payload = {"i": i, "pad": "x" * 2048}
        for _attempt in range(60):
            try:
                client.upsert("b", f"k{i}", payload)
                break
            except TemporaryFailureError:
                cluster.tick(0.05)
        else:
            raise AssertionError(f"k{i} never landed under backoff")
    cluster.run_until_idle()
    # Let pressure decay and the breaker cooldown elapse, then probe.
    cluster.tick(35.0)
    client.upsert("b", "probe", {"i": -1})
    engine = cluster.node("ov1").engines["b"]
    reads = {f"k{i}": client.get("b", f"k{i}").value["i"] for i in range(40)}
    return RunOutcome(
        clusters=[],
        schedulers={"ov": cluster.scheduler},
        observations={
            "reads": reads,
            "memory_counter_consistent":
                engine.memory_used() == engine.memory_used_full(),
            "breaker_recovered": cluster.admission.breaker("ov1").state,
            "overloaded_after_quiesce": cluster.admission.overloaded(),
        },
    )


def builtin_scenarios() -> list[Scenario]:
    return [
        Scenario(
            "kv-durability",
            "durable writes/deletes: acks and observe() hold under any order",
            _run_kv_durability,
        ),
        Scenario(
            "failover-replica-promote",
            "auto-failover replica promotion is schedule independent",
            _run_failover,
        ),
        Scenario(
            "rebalance",
            "vBucket moves then a failover promotion converge under any order",
            _run_rebalance,
        ),
        Scenario(
            "views-gsi-index",
            "view and GSI contents converge identically under any order",
            _run_views_gsi,
        ),
        Scenario(
            "xdcr-bidirectional",
            "bidirectional XDCR conflict resolution converges identically",
            _run_xdcr,
        ),
        Scenario(
            "scatter-gather-query",
            "partitioned-index scatter-gather scan and aggregate "
            "pushdown merge identically under any order",
            _run_scatter_gather,
        ),
        Scenario(
            "overload-quota",
            "retried writes under quota pressure converge; the front "
            "door recovers after the storm",
            _run_overload_quota,
        ),
    ]


def scenario_registry(include_fixtures: bool = False) -> dict[str, Scenario]:
    from .fixtures import fixture_scenarios
    scenarios = list(builtin_scenarios())
    if include_fixtures:
        scenarios.extend(fixture_scenarios())
    return {scenario.name: scenario for scenario in scenarios}


def get_scenarios(names: list[str] | None,
                  include_fixtures: bool = False) -> list[Scenario]:
    registry = scenario_registry(include_fixtures=True)
    if names is None:
        return [s for s in scenario_registry(include_fixtures).values()]
    missing = [name for name in names if name not in registry]
    if missing:
        known = ", ".join(sorted(registry))
        raise InvalidArgumentError(
            f"unknown scenario(s) {', '.join(missing)}; known: {known}"
        )
    return [registry[name] for name in names]
