"""Deliberately broken scenarios that the detectors must catch.

These are the sanitizer's self-test: each fixture injects one class of
ordering bug, and a clean run over them is a *failure* of the tooling.
``python -m repro.sanitize --fixtures`` runs them expecting findings
(exit 1), and tests/sanitize/ asserts which detector fires for which
fixture:

* ``order-dependent`` -- two pumps append to a shared log; the final log
  depends on pump order, so the **divergence oracle** reports it.  (No
  tagged structure is touched, so the write tracker stays silent.)
* ``rogue-direct-write`` -- a pump calls ``KVEngine.upsert`` directly
  instead of going through the network fabric.  The write happens at a
  deterministic point, so digests agree -- only the **write-race
  tracker** sees it.
* ``queue-theft`` -- an extra pump takes from the view engine's DCP
  streams.  The **tracker** flags the double consumer, and because the
  stolen messages never reach the view index, digests diverge too.
"""

from __future__ import annotations

from ..common.errors import declared_raises
from ..common.scheduler import SchedulePolicy, Scheduler
from .scenarios import RunOutcome, Scenario, sanitized_cluster

_ALL = ("data", "index", "query")


def _run_order_dependent(policy: SchedulePolicy) -> RunOutcome:
    scheduler = Scheduler(policy=policy)
    scheduler.name = "fixture"
    scheduler.trace = []
    log: list[str] = []
    budget = {"a": 3, "b": 3}

    def make_pump(name: str):
        def pump() -> bool:
            if budget[name] <= 0:
                return False
            budget[name] -= 1
            log.append(name)
            return True
        return pump

    scheduler.register("writer-a", make_pump("a"))
    scheduler.register("writer-b", make_pump("b"))
    scheduler.run_until_idle()
    return RunOutcome(
        clusters=[],
        schedulers={"fixture": scheduler},
        observations={"log": list(log)},
    )


def _run_rogue_direct_write(policy: SchedulePolicy) -> RunOutcome:
    cluster = sanitized_cluster(
        "rg", policy, vbuckets=4, nodes=[("rg1", _ALL)],
    )
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(4):
        client.upsert("b", f"k{i}", {"i": i})
    engine = cluster.node("rg1").engines["b"]
    cluster_map = cluster.manager.cluster_maps["b"]
    done = {"rogue": False}

    @declared_raises('CasMismatchError', 'DocumentLockedError',
                     'NotMyVBucketError', 'TemporaryFailureError',
                     'ValueTooLargeError')
    def rogue_pump() -> bool:
        # The bug under test: a background component mutating the KV
        # engine object-to-object instead of through Network.call.
        if done["rogue"]:
            return False
        done["rogue"] = True
        vbucket_id = cluster_map.vbucket_for_key("rogue-doc")
        engine.upsert(vbucket_id, "rogue-doc", {"rogue": True})
        return True

    cluster.scheduler.register("rogue", rogue_pump)
    cluster.run_until_idle()
    return RunOutcome(
        clusters=[("rg", cluster)],
        schedulers={"rg": cluster.scheduler},
        observations={},
    )


def _run_queue_theft(policy: SchedulePolicy) -> RunOutcome:
    cluster = sanitized_cluster(
        "qt", policy, vbuckets=4, nodes=[("qt1", _ALL)],
    )
    cluster.create_bucket("b", replicas=0)
    from ..views.mapreduce import ViewDefinition

    def by_i(doc, meta, emit):
        if "i" in doc:
            emit(doc["i"], None)

    cluster.define_view("b", ViewDefinition("dd", "by_i", by_i))
    view_engine = cluster.node("qt1").view_engines["b"]

    def thief_pump() -> bool:
        # The bug under test: a second consumer draining the view
        # engine's single-consumer DCP streams, racing it for messages.
        stole = False
        for stream in list(view_engine._streams.values()):
            if stream.take(4):
                stole = True
        return stole

    cluster.scheduler.register("thief", thief_pump)
    client = cluster.connect()
    for i in range(4):
        client.upsert("b", f"k{i}", {"i": i})
    # First drain: the views pump opens its streams (and claims them).
    cluster.run_until_idle()
    for i in range(4, 8):
        client.upsert("b", f"k{i}", {"i": i})
    # Second drain: the new mutations sit in already-open streams, so
    # round-0 order decides whether the thief or the views pump gets
    # them -- stolen ones never reach the index.
    cluster.run_until_idle()
    return RunOutcome(
        clusters=[("qt", cluster)],
        schedulers={"qt": cluster.scheduler},
        observations={},
    )


def fixture_scenarios() -> list[Scenario]:
    return [
        Scenario(
            "order-dependent",
            "FIXTURE: shared log written by two pumps (oracle must catch)",
            _run_order_dependent,
            expect_findings=True,
        ),
        Scenario(
            "rogue-direct-write",
            "FIXTURE: pump bypasses the network fabric (tracker must catch)",
            _run_rogue_direct_write,
            expect_findings=True,
        ),
        Scenario(
            "queue-theft",
            "FIXTURE: pump drains a peer's DCP stream (both must catch)",
            _run_queue_theft,
            expect_findings=True,
        ),
    ]
