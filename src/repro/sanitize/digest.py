"""Canonical state digests for the divergence oracle.

A schedule policy may reorder pumps arbitrarily, but once the system
quiesces the *logical* converged state must not depend on the order the
pumps ran in.  This module extracts that logical state into a canonical
nested structure and hashes it, so two runs can be compared with one
string comparison and diffed structurally when they disagree.

What goes in, per cluster: active/replica document contents per vBucket
(value, revision, CAS, flags, expiry -- for both live docs and
tombstones), the logically persisted contents of each vBucket's storage
file, materialized view rows, GSI index rows, and whatever observations
the scenario recorded (query results, durability acks).

What stays out, deliberately: sequence numbers and vBucket UUIDs (both
are assignment-order bookkeeping -- XDCR re-assigns local seqnos on
arrival, failover draws fresh UUIDs from a process-wide counter), the
failover logs built from them, metrics, network call counters, the
manager's event log, and file layout/fragmentation.  Those legitimately
vary with the schedule; only user-visible state must not.
"""

from __future__ import annotations

import hashlib
import json


def _doc_entry(doc) -> dict:
    """Canonical digest form of one document version (no seqno)."""
    meta = doc.meta
    return {
        "value": None if meta.deleted else doc.value,
        "rev": meta.rev,
        "cas": meta.cas,
        "flags": meta.flags,
        "expiry": meta.expiry,
        "deleted": meta.deleted,
    }


def _hashtable_contents(vb, store) -> dict:
    """In-memory contents of one vBucket, with ejected values restored
    from the storage file (ejection is residency, not state)."""
    out: dict[str, dict] = {}
    for key, entry in vb.hashtable.items():
        doc = entry.doc
        if doc.ejected and not doc.meta.deleted:
            doc = store.get(key)
        out[key] = _doc_entry(doc)
    return out


def _store_contents(store) -> dict:
    """Logically persisted contents: latest version per key, including
    tombstones; physical layout and garbage versions are invisible."""
    return {
        doc.key: _doc_entry(doc)
        for doc in store.all_docs(include_deleted=True)
    }


def _bucket_digest(cluster, bucket: str) -> dict:
    cluster_map = cluster.manager.cluster_maps[bucket]
    vbuckets: dict[str, dict] = {}
    for vbucket_id in range(cluster_map.num_vbuckets):
        chain = cluster_map.chains[vbucket_id]
        copies: dict[str, dict] = {}
        for position, node_name in enumerate(chain):
            if node_name is None:
                continue
            node = cluster.manager.nodes.get(node_name)
            if node is None:
                continue
            engine = node.engines.get(bucket)
            if engine is None:
                continue
            vb = engine.vbuckets.get(vbucket_id)
            if vb is None:
                continue
            copies[f"{'active' if position == 0 else 'replica'}:{node_name}"] = {
                "memory": _hashtable_contents(vb, vb.store),
                "disk": _store_contents(vb.store),
            }
        vbuckets[str(vbucket_id)] = copies
    return vbuckets


def _view_digests(cluster) -> dict:
    out: dict[str, list] = {}
    for node in cluster.nodes():
        for bucket, view_engine in node.view_engines.items():
            for (design, view), index in view_engine.indexes.items():
                rows = [
                    [composite, entry]
                    for composite, entry in index.tree.items()
                ]
                out[f"{node.name}/{bucket}/{design}/{view}"] = rows
    return out


def _gsi_digests(cluster) -> dict:
    out: dict[str, list] = {}
    for node in cluster.nodes():
        if node.indexer is None:
            continue
        for name, instance in node.indexer.indexer.instances.items():
            rows = [
                [key_components, doc_id]
                for key_components, doc_id in instance.storage.scan(None, None)
            ]
            out[f"{node.name}/{name}"] = rows
    return out


def cluster_state(cluster) -> dict:
    """The canonical converged-state structure for one cluster."""
    return {
        "buckets": {
            bucket: _bucket_digest(cluster, bucket)
            for bucket in sorted(cluster.manager.cluster_maps)
        },
        "views": _view_digests(cluster),
        "gsi": _gsi_digests(cluster),
    }


def _canon(value):
    """JSON-encodable canonical form; non-JSON leaves fall back to repr
    (stable for everything the digest reads: scalars, MISSING, tuples)."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def state_digest(clusters, observations) -> tuple[str, dict]:
    """Hash the canonical state of every cluster plus the scenario's own
    observations.  ``clusters`` is ``[(name, Cluster), ...]``; returns
    ``(sha256 hex digest, canonical structure)``."""
    state = {
        "clusters": {name: cluster_state(c) for name, c in clusters},
        "observations": observations,
    }
    canonical = _canon(state)
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest(), canonical


def diff_paths(a, b, prefix: str = "", limit: int = 20) -> list[str]:
    """Dotted paths at which two canonical structures disagree; the
    oracle's human-readable "where exactly did the state diverge"."""
    out: list[str] = []
    _diff(a, b, prefix, out, limit)
    return out


def _diff(a, b, prefix: str, out: list[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                out.append(f"{path}: only in second run")
            elif key not in b:
                out.append(f"{path}: only in first run")
            else:
                _diff(a[key], b[key], path, out, limit)
            if len(out) >= limit:
                return
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{prefix}: length {len(a)} != {len(b)}")
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _diff(item_a, item_b, f"{prefix}[{index}]", out, limit)
            if len(out) >= limit:
                return
    elif a != b:
        out.append(f"{prefix}: {a!r} != {b!r}")
