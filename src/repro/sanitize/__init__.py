"""repro-sanitize: a schedule-interleaving race detector.

The repro core is asynchronous-everything: flushers, replicators, index
maintainers, and XDCR pumps all run cooperatively under one scheduler.
The design's load-bearing property is that the *converged* state never
depends on the order those pumps happened to run in.  This package
checks that property instead of assuming it:

* :mod:`~repro.sanitize.oracle` replays scenarios under many seeded
  schedule policies and compares canonical state digests -- any
  seed-dependent digest is a race, reported with the two minimal
  schedules that disagree;
* :mod:`~repro.sanitize.tracker` watches writes and DCP takes during
  each run and flags cross-pump mutations not mediated by the network
  fabric, plus double consumers of single-consumer streams;
* :mod:`~repro.sanitize.fixtures` carries deliberately broken scenarios
  proving the detectors actually detect.

Run it: ``python -m repro.sanitize --seeds 25`` (exit 0 clean, 1 on
findings, 2 on usage errors -- the same contract as repro-lint).
"""

from .digest import cluster_state, diff_paths, state_digest
from .oracle import (
    DEFAULT_WEIGHTS,
    Divergence,
    RunRecord,
    ScenarioReport,
    explore,
    policy_matrix,
    run_scenario,
)
from .scenarios import (
    RunOutcome,
    Scenario,
    builtin_scenarios,
    get_scenarios,
    sanitized_cluster,
    scenario_registry,
)
from .tracker import RaceFinding, WriteRaceTracker, allowed_writers

__all__ = [
    "DEFAULT_WEIGHTS",
    "Divergence",
    "RaceFinding",
    "RunOutcome",
    "RunRecord",
    "Scenario",
    "ScenarioReport",
    "WriteRaceTracker",
    "allowed_writers",
    "builtin_scenarios",
    "cluster_state",
    "diff_paths",
    "explore",
    "get_scenarios",
    "policy_matrix",
    "run_scenario",
    "sanitized_cluster",
    "scenario_registry",
    "state_digest",
]
