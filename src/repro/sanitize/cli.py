"""Command line front end: ``python -m repro.sanitize [--seeds N]``.

Exit status mirrors repro-lint so CI can gate on both the same way:
0 when every scenario converges identically under every explored
schedule and no write races were tracked, 1 when anything was found,
2 on usage errors.

``--seeds N`` sizes the policy matrix (N seeded shuffles plus a smaller
adversarial band); when the flag is absent the ``REPRO_SANITIZE_SEEDS``
environment variable overrides the default, which is how CI runs a small
smoke matrix without patching the command line.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    github_annotation,
)
from ..common.errors import InvalidArgumentError
from .oracle import ScenarioReport, explore, policy_matrix
from .scenarios import get_scenarios

DEFAULT_SEEDS = 10
SEEDS_ENV = "REPRO_SANITIZE_SEEDS"


def _default_seeds() -> int:
    raw = os.environ.get(SEEDS_ENV)
    if raw is None:
        return DEFAULT_SEEDS
    try:
        seeds = int(raw)
    except ValueError:
        raise InvalidArgumentError(
            f"{SEEDS_ENV} must be an integer, got {raw!r}"
        ) from None
    if seeds < 1:
        raise InvalidArgumentError(f"{SEEDS_ENV} must be >= 1, got {seeds}")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Schedule-interleaving race detector: replays scenarios "
                    "under seeded schedule policies, compares converged-state "
                    "digests, and tracks unmediated cross-pump writes.",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help=f"number of shuffled schedules per scenario (default "
             f"{DEFAULT_SEEDS}, or ${SEEDS_ENV} when set); an adversarial "
             f"band of starve-one and weighted policies scales along",
    )
    parser.add_argument(
        "--scenario", metavar="NAME[,NAME...]", default=None,
        help="run only these scenarios (see --list-scenarios)",
    )
    parser.add_argument(
        "--fixtures", action="store_true",
        help="run the deliberately broken fixture scenarios instead of the "
             "built-ins; they must produce findings, so this exits 1 when "
             "the detectors are working",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default), or github to emit ::error workflow commands",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true",
        help="print every scenario (built-ins and fixtures), then exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-scenario progress lines",
    )
    return parser


def _print_finding(message: str, title: str, output_format: str) -> None:
    if output_format == "github":
        print(github_annotation(message, title=f"repro-sanitize: {title}"))
    else:
        print(message)


def _report_scenario(report: ScenarioReport, output_format: str,
                     quiet: bool) -> None:
    if not quiet:
        digests = len({run.digest for run in report.runs})
        status = "clean" if report.clean else (
            f"{report.findings_count()} finding"
            f"{'' if report.findings_count() == 1 else 's'}"
        )
        print(
            f"repro-sanitize: scenario {report.scenario!r}: "
            f"{len(report.runs)} schedules, {digests} distinct digest"
            f"{'' if digests == 1 else 's'} -> {status}"
        )
    for race in report.races:
        _print_finding(race.format(), race.kind, output_format)
    for divergence in report.divergences:
        _print_finding(divergence.format(), "schedule-divergence",
                       output_format)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        seeds = args.seeds if args.seeds is not None else _default_seeds()
        if seeds < 1:
            raise InvalidArgumentError(f"--seeds must be >= 1, got {seeds}")
        if args.list_scenarios:
            for scenario in get_scenarios(None, include_fixtures=True):
                marker = " [fixture]" if scenario.expect_findings else ""
                print(f"{scenario.name}{marker}\n    {scenario.description}")
            return EXIT_CLEAN
        if args.fixtures:
            if args.scenario is not None:
                raise InvalidArgumentError(
                    "--fixtures and --scenario are mutually exclusive"
                )
            scenarios = [s for s in get_scenarios(None, include_fixtures=True)
                         if s.expect_findings]
        else:
            names = args.scenario.split(",") if args.scenario else None
            scenarios = get_scenarios(names)
    except InvalidArgumentError as exc:
        print(f"repro-sanitize: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if not args.quiet:
        print(
            f"repro-sanitize: exploring {len(policy_matrix(seeds))} schedule "
            f"policies per scenario (--seeds {seeds})"
        )
    findings = 0
    undetected: list[str] = []
    for scenario in scenarios:
        report = explore(scenario, seeds)
        _report_scenario(report, args.output_format, args.quiet)
        findings += report.findings_count()
        if scenario.expect_findings and report.clean:
            undetected.append(scenario.name)
    if undetected:
        # A fixture the detectors missed is a bug in the sanitizer itself.
        print(
            f"repro-sanitize: fixture(s) produced no findings (detector "
            f"regression): {', '.join(undetected)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if not args.quiet:
        print(
            f"repro-sanitize: {findings} finding"
            f"{'' if findings == 1 else 's'} "
            f"in {len(scenarios)} scenario{'' if len(scenarios) == 1 else 's'}"
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
