"""The divergence oracle: replay a scenario under many schedules.

For each scenario the oracle builds a deterministic policy matrix from
``--seeds N`` (the registration-order baseline, N seeded shuffles, and a
smaller band of adversarial starve-one and weighted policies), runs the
scenario once per policy with a fresh :class:`WriteRaceTracker`
installed, digests the converged state, and compares:

* every digest equal -> the scenario's converged state is schedule
  independent (the property the paper's asynchronous-everything design
  relies on);
* any two digests differ -> a race.  The report carries the two
  disagreeing policies, the first round at which their executed
  schedules diverged (the minimal prefix that separates them), and the
  dotted state paths that disagree.

Write-race findings are collected independently of divergence: an
unmediated write can be deterministic today (and therefore invisible to
the digest comparison) and still be the seed of tomorrow's race.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common import tracing
from ..common.scheduler import (
    RegistrationOrder,
    SchedulePolicy,
    SeededShuffle,
    StarveOne,
    Weighted,
)
from .digest import diff_paths, state_digest
from .tracker import RaceFinding, WriteRaceTracker

#: Weighted-policy bias: drain order stresses the slow-consumer paths
#: (indexes and XDCR lag behind the flusher and replicator).
DEFAULT_WEIGHTS = {
    "flusher": 3.0,
    "replicator": 2.0,
    "views": 0.5,
    "projector": 0.5,
    "xdcr": 0.25,
}


def policy_matrix(seeds: int) -> list[SchedulePolicy]:
    """The deterministic set of policies explored for ``--seeds N``."""
    adversarial = max(1, seeds // 5)
    policies: list[SchedulePolicy] = [RegistrationOrder()]
    policies.extend(SeededShuffle(seed) for seed in range(1, seeds + 1))
    policies.extend(StarveOne(seed) for seed in range(1, adversarial + 1))
    policies.extend(
        Weighted(seed, DEFAULT_WEIGHTS) for seed in range(1, adversarial + 1)
    )
    return policies


@dataclass
class RunRecord:
    """One scenario execution under one policy."""

    policy: str
    digest: str
    state: dict
    #: scheduler name -> executed pump order per round.
    traces: dict[str, list[list[str]]]
    races: list[RaceFinding]


@dataclass
class Divergence:
    """Two runs of the same scenario that converged to different state."""

    scenario: str
    policy_a: str
    policy_b: str
    state_diffs: list[str]
    first_divergent_round: int | None
    schedule_a: list[str]
    schedule_b: list[str]

    def format(self) -> str:
        lines = [
            f"schedule-dependent state in scenario {self.scenario!r}:",
            f"  policy A: {self.policy_a}",
            f"  policy B: {self.policy_b}",
        ]
        if self.first_divergent_round is not None:
            lines.append(
                f"  schedules first diverge at round {self.first_divergent_round}:"
            )
            lines.append(f"    A ran {self.schedule_a}")
            lines.append(f"    B ran {self.schedule_b}")
        lines.append("  state differences:")
        lines.extend(f"    {path}" for path in self.state_diffs)
        return "\n".join(lines)


@dataclass
class ScenarioReport:
    """Everything the oracle learned about one scenario."""

    scenario: str
    runs: list[RunRecord]
    divergences: list[Divergence] = field(default_factory=list)
    races: list[RaceFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences and not self.races

    def findings_count(self) -> int:
        return len(self.divergences) + len(self.races)


def _first_divergent_round(
    traces_a: dict[str, list[list[str]]],
    traces_b: dict[str, list[list[str]]],
) -> tuple[int | None, list[str], list[str]]:
    """Earliest round index at which the two runs executed different
    orders (searching every scheduler the scenario drove)."""
    best: tuple[int, list[str], list[str]] | None = None
    for name in sorted(set(traces_a) | set(traces_b)):
        rounds_a = traces_a.get(name, [])
        rounds_b = traces_b.get(name, [])
        for index in range(max(len(rounds_a), len(rounds_b))):
            round_a = rounds_a[index] if index < len(rounds_a) else []
            round_b = rounds_b[index] if index < len(rounds_b) else []
            if round_a != round_b:
                qualify = [f"{name}:{pump}" for pump in round_a]
                qualify_b = [f"{name}:{pump}" for pump in round_b]
                if best is None or index < best[0]:
                    best = (index, qualify, qualify_b)
                break
    if best is None:
        return None, [], []
    return best


def run_scenario(scenario, policy: SchedulePolicy) -> RunRecord:
    """Execute ``scenario`` once under ``policy`` with tracking on."""
    tracker = WriteRaceTracker()
    previous = tracing.install(tracker)
    try:
        outcome = scenario.run(policy)
    finally:
        tracing.install(previous)
    digest, state = state_digest(outcome.clusters, outcome.observations)
    traces = {
        name: list(scheduler.trace or [])
        for name, scheduler in outcome.schedulers.items()
    }
    return RunRecord(
        policy=policy.describe(),
        digest=digest,
        state=state,
        traces=traces,
        races=list(tracker.findings),
    )


def explore(scenario, seeds: int) -> ScenarioReport:
    """Run ``scenario`` under the full policy matrix and compare."""
    runs = [run_scenario(scenario, policy) for policy in policy_matrix(seeds)]
    report = ScenarioReport(scenario=scenario.name, runs=runs)

    seen_races: set[tuple[str, str, str]] = set()
    for run in runs:
        for race in run.races:
            key = (race.kind, race.pump, race.target)
            if key not in seen_races:
                seen_races.add(key)
                report.races.append(race)

    by_digest: dict[str, RunRecord] = {}
    for run in runs:
        by_digest.setdefault(run.digest, run)
    if len(by_digest) > 1:
        representatives = list(by_digest.values())
        baseline = representatives[0]
        for other in representatives[1:]:
            round_index, schedule_a, schedule_b = _first_divergent_round(
                baseline.traces, other.traces
            )
            report.divergences.append(Divergence(
                scenario=scenario.name,
                policy_a=baseline.policy,
                policy_b=other.policy,
                state_diffs=diff_paths(baseline.state, other.state),
                first_divergent_round=round_index,
                schedule_a=schedule_a,
                schedule_b=schedule_b,
            ))
    return report
