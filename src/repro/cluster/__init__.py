"""Clustering: the vBucket cluster map and planner, nodes, the cluster
manager (election, failure detection, failover), and the rebalancer
(sections 4.1, 4.3.1, 4.4)."""

from .cluster_map import DEFAULT_NUM_VBUCKETS, ClusterMap, plan_map
from .manager import ClusterManager
from .node import Node
from .rebalance import Rebalancer
from ..common.services import BucketConfig, Service

__all__ = [
    "BucketConfig",
    "ClusterManager",
    "ClusterMap",
    "DEFAULT_NUM_VBUCKETS",
    "Node",
    "Rebalancer",
    "Service",
    "plan_map",
]
