"""A cluster node.

Section 4.3: every node runs the cluster manager; beyond that, a node
hosts whichever services it was provisioned with (multi-dimensional
scaling).  A data-service node carries KV engines (one per bucket), a
DCP producer per bucket, the view engine, and the GSI projector/router;
index- and query-service components attach through the ``indexer`` and
``query_service`` slots, wired up by the :class:`repro.server.Cluster`
facade.

All inter-node traffic flows through the :class:`Network` fabric so that
fault injection applies, and the node's RPC surface is the set of
``kv_*`` methods below.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.clock import Clock
from ..common.disk import SimulatedDisk
from ..common.document import Document
from ..common.errors import BucketNotFoundError, declared_raises
from ..common.metrics import MetricsRegistry
from ..common.transport import Network
from ..dcp.producer import DcpProducer
from ..kv.engine import KVEngine
from ..kv.types import MutationResult, ObserveResult, VBucketState
from .cluster_map import ClusterMap
from ..common.services import BucketConfig, Service

if TYPE_CHECKING:  # pragma: no cover
    from ..gsi.manager import IndexService
    from ..n1ql.service import QueryService
    from ..views.engine import ViewEngine


class Node:
    """One server in the cluster."""

    def __init__(
        self,
        name: str,
        network: Network,
        clock: Clock,
        services: set[Service] = frozenset({Service.DATA}),
    ):
        self.name = name
        self.network = network
        self.clock = clock
        self.services = set(services)
        self.disk = SimulatedDisk()
        self.metrics = MetricsRegistry()
        self.engines: dict[str, KVEngine] = {}
        self.producers: dict[str, DcpProducer] = {}
        self.view_engines: dict[str, "ViewEngine"] = {}
        self.indexer: "IndexService | None" = None
        self.query_service: "QueryService | None" = None
        #: Latest cluster map per bucket, as pushed by the manager.
        self.cluster_maps: dict[str, ClusterMap] = {}
        self.alive = True
        network.register(name, self)

    def __repr__(self) -> str:
        return f"<Node {self.name} services={sorted(s.value for s in self.services)}>"

    def has_service(self, service: Service) -> bool:
        return service in self.services

    # -- bucket lifecycle -----------------------------------------------------

    def create_bucket(self, config: BucketConfig) -> None:
        if not self.has_service(Service.DATA):
            return
        if config.name in self.engines:
            return
        self.engines[config.name] = KVEngine(
            self.name,
            config.name,
            disk=self.disk,
            clock=self.clock,
            quota_bytes=config.quota_bytes,
            eviction_policy=config.eviction_policy,
            metrics=self.metrics,
        )
        self.producers[config.name] = DcpProducer(
            self.engines[config.name], name=f"{self.name}/{config.name}"
        )
        from ..views.engine import ViewEngine
        self.view_engines[config.name] = ViewEngine(self, config.name)

    def drop_bucket(self, name: str) -> None:
        self.engines.pop(name, None)
        self.producers.pop(name, None)
        self.view_engines.pop(name, None)
        self.cluster_maps.pop(name, None)

    def engine(self, bucket: str) -> KVEngine:
        engine = self.engines.get(bucket)
        if engine is None:
            raise BucketNotFoundError(bucket)
        return engine

    def producer(self, bucket: str) -> DcpProducer:
        producer = self.producers.get(bucket)
        if producer is None:
            raise BucketNotFoundError(bucket)
        return producer

    # -- cluster map application -------------------------------------------------

    @declared_raises('CorruptFileError', 'InvalidArgumentError')
    def apply_cluster_map(self, bucket: str, cluster_map: ClusterMap) -> None:
        """Reconcile local vBucket states with the authoritative map.

        Active here -> ensure an active vBucket (promoting a replica, the
        failover path); replica here -> ensure a replica vBucket; not in
        the chain -> mark dead and drop."""
        self.cluster_maps[bucket] = cluster_map
        engine = self.engines.get(bucket)
        if engine is None:
            return
        for vb in range(cluster_map.num_vbuckets):
            chain = cluster_map.chains[vb]
            if chain[0] == self.name:
                desired = VBucketState.ACTIVE
            elif self.name in chain[1:]:
                desired = VBucketState.REPLICA
            else:
                desired = None
            current = engine.vbuckets.get(vb)
            if desired is None:
                if current is not None:
                    engine.set_vbucket_state(vb, VBucketState.DEAD)
                    engine.drop_vbucket(vb)
                continue
            if current is None:
                engine.create_vbucket(vb, desired)
            elif current.state is not desired:
                engine.set_vbucket_state(vb, desired)

    # -- KV RPC surface (what smart clients call) ------------------------------------

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError')
    def kv_get(self, bucket: str, vbucket_id: int, key: str) -> Document:
        return self.engine(bucket).get(vbucket_id, key)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'DocumentLockedError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def kv_upsert(self, bucket: str, vbucket_id: int, key: str, value,
                  cas: int = 0, expiry: float = 0.0, flags: int = 0) -> MutationResult:
        return self.engine(bucket).upsert(
            vbucket_id, key, value, cas=cas, expiry=expiry, flags=flags
        )

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyExistsError',
                     'KeyNotFoundError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def kv_insert(self, bucket: str, vbucket_id: int, key: str, value,
                  expiry: float = 0.0, flags: int = 0) -> MutationResult:
        return self.engine(bucket).insert(
            vbucket_id, key, value, expiry=expiry, flags=flags
        )

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError',
                     'ValueTooLargeError')
    def kv_replace(self, bucket: str, vbucket_id: int, key: str, value,
                   cas: int = 0, expiry: float = 0.0, flags: int = 0) -> MutationResult:
        return self.engine(bucket).replace(
            vbucket_id, key, value, cas=cas, expiry=expiry, flags=flags
        )

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError')
    def kv_delete(self, bucket: str, vbucket_id: int, key: str,
                  cas: int = 0) -> MutationResult:
        return self.engine(bucket).delete(vbucket_id, key, cas=cas)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError',
                     'ValueTooLargeError')
    def kv_touch(self, bucket: str, vbucket_id: int, key: str,
                 expiry: float) -> MutationResult:
        return self.engine(bucket).touch(vbucket_id, key, expiry)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'DocumentLockedError', 'InvalidArgumentError',
                     'KeyNotFoundError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def kv_get_and_lock(self, bucket: str, vbucket_id: int, key: str,
                        lock_time: float | None = None) -> Document:
        return self.engine(bucket).get_and_lock(vbucket_id, key, lock_time)

    @declared_raises('BucketNotFoundError', 'DocumentLockedError',
                     'KeyNotFoundError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def kv_unlock(self, bucket: str, vbucket_id: int, key: str, cas: int) -> None:
        self.engine(bucket).unlock(vbucket_id, key, cas)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'NotMyVBucketError')
    def kv_observe(self, bucket: str, vbucket_id: int, key: str) -> ObserveResult:
        return self.engine(bucket).observe(vbucket_id, key)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError',
                     'ValueTooLargeError')
    def kv_counter(self, bucket: str, vbucket_id: int, key: str, delta: int,
                   initial: int | None = None):
        return self.engine(bucket).counter(vbucket_id, key, delta,
                                           initial=initial)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError')
    def kv_lookup_in(self, bucket: str, vbucket_id: int, key: str,
                     paths: list) -> list:
        return self.engine(bucket).lookup_in(vbucket_id, key, paths)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError',
                     'ValueTooLargeError')
    def kv_mutate_in(self, bucket: str, vbucket_id: int, key: str,
                     operations: list, cas: int = 0) -> MutationResult:
        return self.engine(bucket).mutate_in(vbucket_id, key, operations,
                                             cas=cas)

    # -- batched KV RPC surface (one network call serves many keys) -------------------

    @declared_raises('BucketNotFoundError')
    def kv_multi_get(self, bucket: str,
                     items: list[tuple[int, str]]) -> list[tuple[str, object]]:
        """Batch point lookups for keys this node hosts: one RPC, one
        per-item outcome each (``("ok", Document)`` / ``("err", error)``)."""
        return self.engine(bucket).multi_get(items)

    @declared_raises('BucketNotFoundError', 'InvalidArgumentError')
    def kv_multi_mutate(self, bucket: str,
                        ops: list[tuple[str, int, str, dict]]) -> list[tuple[str, object]]:
        """Batch mutations (upsert/insert/replace/delete) with per-op
        outcomes; see :meth:`repro.kv.engine.KVEngine.multi_mutate`."""
        return self.engine(bucket).multi_mutate(ops)

    # -- replication RPC surface ----------------------------------------------------

    @declared_raises('BucketNotFoundError', 'NotMyVBucketError')
    def kv_apply_replicated(self, bucket: str, vbucket_id: int,
                            doc: Document) -> None:
        self.engine(bucket).apply_replicated(vbucket_id, doc)

    @declared_raises('BucketNotFoundError', 'NotMyVBucketError')
    def kv_replica_apply_batch(self, bucket: str, vbucket_id: int,
                               docs: list[Document]) -> None:
        """Replication inbound, batched: one RPC applies one DCP stream
        batch for one vBucket (the replica-side mirror of
        :meth:`kv_multi_mutate`)."""
        self.engine(bucket).apply_replicated_batch(vbucket_id, docs)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NotMyVBucketError', 'TemporaryFailureError')
    def kv_set_with_meta(self, bucket: str, vbucket_id: int,
                         doc: Document) -> bool:
        """XDCR inbound: apply a remote-cluster mutation after conflict
        resolution.  Routed through the fabric so a down or partitioned
        target node rejects pushes like any other RPC."""
        return self.engine(bucket).set_with_meta(vbucket_id, doc)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError')
    def kv_reset_replica(self, bucket: str, vbucket_id: int) -> None:
        """Blow away a divergent replica so replication can rebuild it
        from seqno 0 (the rollback-to-zero recovery path)."""
        engine = self.engine(bucket)
        vb = engine.vbuckets.get(vbucket_id)
        engine.drop_vbucket(vbucket_id)
        if vb is not None:
            # ``create_vbucket`` recovers whatever the old file holds;
            # a rollback-to-zero rebuild must start from empty disk.
            vb.store.destroy()
        engine.create_vbucket(vbucket_id, VBucketState.REPLICA)

    @declared_raises('BucketNotFoundError')
    def kv_replica_stream_state(self, bucket: str,
                                vbucket_id: int) -> tuple:
        """What a resuming producer needs: the lineage uuid this replica
        last synced under (None if it never synced) and its high seqno."""
        vb = self.engine(bucket).vbuckets.get(vbucket_id)
        if vb is None:
            return (None, 0)
        uuid = (vb.source_failover_log[-1][0]
                if vb.source_failover_log else None)
        return (uuid, vb.high_seqno)

    @declared_raises('BucketNotFoundError')
    def kv_adopt_failover_log(self, bucket: str, vbucket_id: int,
                              log: list) -> None:
        """Producer hands its failover log to the replica at stream open
        (real DCP consumers persist the producer's log for exactly this
        lineage bookkeeping)."""
        vb = self.engine(bucket).vbuckets.get(vbucket_id)
        if vb is not None:
            vb.source_failover_log = [tuple(entry) for entry in log]

    # -- view RPC surface (scatter/gather targets, section 4.3.3) ------------------------

    @declared_raises('CorruptFileError', 'InvalidArgumentError',
                     'ViewNotFoundError', 'ViewQueryError')
    def view_query_local(self, bucket: str, design: str, view: str, params) -> dict:
        return self.view_engines[bucket].local_query(design, view, params)

    @declared_raises('CorruptFileError', 'DiskFullError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'ViewExistsError')
    def view_define(self, bucket: str, definition) -> None:
        self.view_engines[bucket].define_view(definition)

    @declared_raises('ViewNotFoundError')
    def view_drop(self, bucket: str, design: str, view: str) -> None:
        self.view_engines[bucket].drop_view(design, view)

    # -- health ------------------------------------------------------------------------

    def ping(self) -> str:
        return "pong"

    def stats(self) -> dict:
        return {
            "name": self.name,
            "services": sorted(s.value for s in self.services),
            "buckets": {name: e.stats() for name, e in self.engines.items()},
        }
