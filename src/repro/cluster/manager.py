"""The cluster manager.

Section 4.3.1: the cluster manager "supervises server configuration and
interaction across all servers within a cluster"; the nodes elect an
**orchestrator** to watch cluster conditions, and if a node becomes
unavailable the orchestrator promotes that node's replica partitions to
active (**failover**), updates the cluster map everywhere, and clients
carry on.  If the orchestrator itself dies, the survivors elect a new
one immediately.

Election here is the classic deterministic rule -- the lowest-named
reachable node wins -- which gives the same observable behaviour as the
paper's description (there is always exactly one orchestrator among the
live nodes, and it changes instantly when the incumbent dies) without a
full consensus protocol, which the paper does not describe either.
"""

from __future__ import annotations

from ..common.clock import Clock
from ..common.errors import (
    BucketExistsError,
    BucketNotFoundError,
    NodeDownError,
    NodeExistsError,
    NodeNotFoundError,
    NoQuorumError,
    declared_raises,
)
from ..common.scheduler import Scheduler
from ..common.transport import Network
from ..replication.intra import IntraReplicator
from .cluster_map import ClusterMap, plan_map
from .node import Node
from ..common.services import BucketConfig, Service


class ClusterManager:
    """Membership, election, failure detection, failover, map pushing."""

    #: Seconds a node must stay unreachable before auto-failover fires
    #: (the real server defaults to 30; scaled down for virtual time).
    AUTO_FAILOVER_TIMEOUT = 30.0

    def __init__(self, network: Network, scheduler: Scheduler,
                 auto_failover: bool = True):
        self.network = network
        self.scheduler = scheduler
        self.clock: Clock = scheduler.clock
        self.auto_failover = auto_failover
        self.nodes: dict[str, Node] = {}
        self.bucket_configs: dict[str, BucketConfig] = {}
        self.cluster_maps: dict[str, ClusterMap] = {}
        #: bucket -> {(design, view): ViewDefinition}; the cluster-wide
        #: design-document registry pushed to joining nodes.
        self.design_docs: dict[str, dict] = {}
        #: Bumped on keyspace DDL (create/drop bucket); the query service
        #: folds it into the plan-cache epoch.
        self.ddl_epoch = 0
        from ..gsi.manager import IndexRegistry
        #: Cluster-wide GSI metadata, consulted by projectors and the
        #: N1QL planner.
        self.index_registry = IndexRegistry()
        self.replicators: dict[tuple[str, str], IntraReplicator] = {}
        #: Nodes administratively removed or failed over.
        self.ejected: set[str] = set()
        #: node -> virtual time its unreachability was first noticed.
        self._suspects: dict[str, float] = {}
        #: History of (time, event, detail) tuples for observability.
        self.event_log: list[tuple[float, str, str]] = []
        scheduler.register("cluster-manager", self._pump)

    # -- membership -----------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.name in self.nodes:
            raise NodeExistsError(node.name)
        self.nodes[node.name] = node
        self.ejected.discard(node.name)
        self._log("node-added", node.name)
        # New data nodes get engines for existing buckets; vBuckets arrive
        # via rebalance.
        for config in self.bucket_configs.values():
            node.create_bucket(config)
            self._wire_bucket_pumps(node, config.name)
            if config.name in self.cluster_maps:
                node.apply_cluster_map(config.name, self.cluster_maps[config.name])
            for definition in self.design_docs.get(config.name, {}).values():
                node.view_define(config.name, definition)

    def data_nodes(self, include_ejected: bool = False) -> list[str]:
        return sorted(
            name for name, node in self.nodes.items()
            if node.has_service(Service.DATA)
            and (include_ejected or name not in self.ejected)
        )

    def nodes_with_service(self, service: Service) -> list[str]:
        return sorted(
            name for name, node in self.nodes.items()
            if node.has_service(service) and name not in self.ejected
        )

    def live_nodes(self) -> list[str]:
        return sorted(
            name for name in self.nodes
            if name not in self.ejected and not self.network.is_down(name)
        )

    @property
    def orchestrator(self) -> str:
        """The elected orchestrator: lowest-named live node."""
        live = self.live_nodes()
        if not live:
            raise NoQuorumError("no live nodes to elect an orchestrator")
        return live[0]

    # -- buckets -----------------------------------------------------------------------

    def create_bucket(self, config: BucketConfig,
                      num_vbuckets: int = 1024) -> ClusterMap:
        if config.name in self.bucket_configs:
            raise BucketExistsError(config.name)
        data_nodes = self.data_nodes()
        if not data_nodes:
            raise NoQuorumError("no data-service nodes available")
        self.bucket_configs[config.name] = config
        self.ddl_epoch += 1
        cluster_map = plan_map(
            data_nodes, num_vbuckets=num_vbuckets,
            num_replicas=config.num_replicas,
        )
        self.cluster_maps[config.name] = cluster_map
        for name in data_nodes:
            node = self.nodes[name]
            node.create_bucket(config)
            self._wire_bucket_pumps(node, config.name)
        self.push_map(config.name)
        self._log("bucket-created", config.name)
        return cluster_map

    def drop_bucket(self, name: str) -> None:
        if name not in self.bucket_configs:
            raise BucketNotFoundError(name)
        del self.bucket_configs[name]
        del self.cluster_maps[name]
        self.ddl_epoch += 1
        for node in self.nodes.values():
            self.scheduler.unregister(f"flusher/{node.name}/{name}")
            self.scheduler.unregister(f"replicator/{node.name}/{name}")
            self.scheduler.unregister(f"views/{node.name}/{name}")
            self.scheduler.unregister(f"projector/{node.name}/{name}")
            self.scheduler.unregister(f"compactor/{node.name}/{name}")
            node.drop_bucket(name)
        self._log("bucket-dropped", name)

    def _wire_bucket_pumps(self, node: Node, bucket: str) -> None:
        if not node.has_service(Service.DATA):
            return
        engine = node.engines.get(bucket)
        if engine is None:
            return
        flusher_name = f"flusher/{node.name}/{bucket}"
        if flusher_name not in self.scheduler.pump_names():
            self.scheduler.register(
                flusher_name,
                lambda e=engine, n=node: bool(n.alive) and e.flush(),
            )
        replicator = IntraReplicator(node, bucket, self.network)
        self.replicators[(node.name, bucket)] = replicator
        replicator_name = f"replicator/{node.name}/{bucket}"
        if replicator_name not in self.scheduler.pump_names():
            self.scheduler.register(replicator_name, replicator.pump)
        view_engine = node.view_engines.get(bucket)
        if view_engine is not None:
            view_pump_name = f"views/{node.name}/{bucket}"
            if view_pump_name not in self.scheduler.pump_names():
                self.scheduler.register(view_pump_name, view_engine.pump)
        from ..gsi.projector import Projector
        projector_name = f"projector/{node.name}/{bucket}"
        if projector_name not in self.scheduler.pump_names():
            projector = Projector(node, bucket, self.index_registry,
                                  self.network)
            self.scheduler.register(projector_name, projector.pump)
        config = self.bucket_configs.get(bucket)
        if config is not None and config.compaction_threshold is not None:
            compactor_name = f"compactor/{node.name}/{bucket}"
            if compactor_name not in self.scheduler.pump_names():
                threshold = config.compaction_threshold
                self.scheduler.register(
                    compactor_name,
                    lambda e=engine, n=node, t=threshold: (
                        bool(n.alive) and e.run_compactor(t)
                    ),
                )
        if config is not None and config.expiry_pager_interval is not None:
            self._arm_expiry_pager(node, bucket, config.expiry_pager_interval)

    def _arm_expiry_pager(self, node: Node, bucket: str,
                          interval: float) -> None:
        """Recurring virtual-time sweep turning expired docs into delete
        mutations; re-arms itself while the bucket exists on the node."""
        engine = node.engines.get(bucket)

        @declared_raises('TemporaryFailureError')
        def fire() -> None:
            if node.engines.get(bucket) is not engine:
                return  # bucket dropped; stop re-arming
            if node.alive:
                engine.run_expiry_pager()
            self.scheduler.call_later(interval, fire)

        self.scheduler.call_later(interval, fire)

    def push_map(self, bucket: str) -> None:
        """Stream the current map to every reachable node (and clients
        pick it up on their next refresh)."""
        cluster_map = self.cluster_maps[bucket]
        for name, node in self.nodes.items():
            if name in self.ejected:
                continue
            try:
                # Control plane: one RPC per *node* on a map change,
                # O(nodes) and rare -- not per-document fan-out.
                # repro-hotpath: disable-next=n-plus-one-rpc
                self.network.call("cluster-manager", name, "apply_cluster_map",
                                  bucket, cluster_map)
            # Down nodes pick the map up from the manager when they reconnect.
            # repro-flow: disable-next=swallowed-exception
            except NodeDownError:
                continue

    # -- failure detection & failover ------------------------------------------------------

    @declared_raises('CorruptFileError', 'InvalidArgumentError',
                     'NodeNotFoundError')
    def _pump(self) -> bool:
        """Heartbeat sweep: notice unreachable nodes; auto-failover those
        unreachable longer than the timeout."""
        progressed = False
        now = self.clock.now()
        for name in list(self.nodes):
            if name in self.ejected:
                continue
            reachable = not self.network.is_down(name)
            if reachable:
                if name in self._suspects:
                    del self._suspects[name]
                    self._log("node-recovered", name)
                    progressed = True
                continue
            if name not in self._suspects:
                self._suspects[name] = now
                self._log("node-suspect", name)
                progressed = True
            elif (
                self.auto_failover
                and now - self._suspects[name] >= self.AUTO_FAILOVER_TIMEOUT
            ):
                self.failover(name)
                progressed = True
        return progressed

    def failover(self, node_name: str) -> dict:
        """Promote replicas for every vBucket whose active copy lived on
        ``node_name`` and eject the node.  Returns per-bucket counts of
        promoted and (replica-less) lost vBuckets."""
        if node_name not in self.nodes:
            raise NodeNotFoundError(node_name)
        self.ejected.add(node_name)
        self._suspects.pop(node_name, None)
        report: dict[str, dict] = {}
        for bucket, cluster_map in self.cluster_maps.items():
            promoted = lost = 0
            new_map = cluster_map.copy()
            for chain in new_map.chains:
                if node_name in chain:
                    was_active = chain[0] == node_name
                    chain[:] = [n for n in chain if n != node_name]
                    chain += [None] * (cluster_map.num_replicas + 1 - len(chain))
                    if was_active:
                        if chain[0] is not None:
                            promoted += 1
                        else:
                            lost += 1
            new_map.revision += 1
            self.cluster_maps[bucket] = new_map
            self.push_map(bucket)
            # If the failed-over node is merely partitioned off from the
            # clients' perspective but still reachable by the manager,
            # demote its vBuckets so it cannot serve stale data to a
            # client holding an old map.
            try:
                # One demotion RPC per bucket during a failover -- a rare
                # control-plane event bounded by bucket count.
                # repro-hotpath: disable-next=n-plus-one-rpc
                self.network.call("cluster-manager", node_name,
                                  "apply_cluster_map", bucket, new_map)
            # Demotion is best-effort: a truly dead node has nothing to demote.
            # repro-flow: disable-next=swallowed-exception
            except NodeDownError:
                pass
            report[bucket] = {"promoted": promoted, "lost": lost}
        self._log("failover", node_name)
        return report

    # -- internals --------------------------------------------------------------------

    #: Retained observability-event history.  The log is fed from the
    #: failure-detector pump, so without a cap a long-running cluster
    #: accumulates events forever (found by repro-bounds).
    EVENT_LOG_LIMIT = 512

    def _log(self, event: str, detail: str) -> None:
        self.event_log.append((self.clock.now(), event, detail))
        if len(self.event_log) > self.EVENT_LOG_LIMIT:
            del self.event_log[: len(self.event_log) - self.EVENT_LOG_LIMIT]

    def stats(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "live": self.live_nodes(),
            "ejected": sorted(self.ejected),
            "orchestrator": self.orchestrator if self.live_nodes() else None,
            "buckets": {
                name: cluster_map.stats()
                for name, cluster_map in self.cluster_maps.items()
            },
        }
