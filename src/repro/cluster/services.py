"""Compatibility shim: the service/bucket value types moved to
:mod:`repro.common.services` so index/query services can name
:class:`Service` without importing upward from the cluster layer
(repro-flow's layer conformance caught the original deferred import).
Import from ``repro.common.services`` in new code.
"""

from __future__ import annotations

from ..common.services import (  # noqa: F401  (re-exported)
    ALL_CORE_SERVICES,
    BucketConfig,
    Service,
)
