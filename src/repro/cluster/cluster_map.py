"""The cluster map: vBucket -> server assignment.

Section 4.1: every bucket is split into 1024 logical partitions
(vBuckets); the map from vBucket to servers lives in a lookup structure
-- the **cluster map** -- that smart clients cache.  Each vBucket has one
*active* copy and up to three *replica* copies, never co-located on the
same node (section 4.1.1).

The planner here assigns chains round-robin for even spread and, when
re-planning against a previous map (rebalance in/out), keeps every
assignment it can so the mover only transfers what actually changed.
"""

from __future__ import annotations

from collections import Counter

from ..common.crc import vbucket_for_key
from ..common.errors import InvalidArgumentError

#: The paper is emphatic that this is not configurable in real
#: deployments; tests shrink it only for speed.
DEFAULT_NUM_VBUCKETS = 1024
MAX_REPLICAS = 3


class ClusterMap:
    """Immutable-ish snapshot of vBucket placement, with a revision number
    bumped by the manager every time placement changes."""

    def __init__(self, num_vbuckets: int, chains: list[list[str | None]],
                 revision: int = 1):
        self.num_vbuckets = num_vbuckets
        #: chains[vb] = [active, replica1, ...]; None marks an unassigned slot.
        self.chains = chains
        self.revision = revision

    @property
    def num_replicas(self) -> int:
        return len(self.chains[0]) - 1 if self.chains else 0

    def active_node(self, vbucket_id: int) -> str | None:
        return self.chains[vbucket_id][0]

    def replica_nodes(self, vbucket_id: int) -> list[str]:
        return [n for n in self.chains[vbucket_id][1:] if n is not None]

    def nodes_in_use(self) -> set[str]:
        return {n for chain in self.chains for n in chain if n is not None}

    def vbucket_for_key(self, key: str) -> int:
        return vbucket_for_key(key, self.num_vbuckets)

    def node_for_key(self, key: str) -> str | None:
        return self.active_node(self.vbucket_for_key(key))

    def active_vbuckets_of(self, node: str) -> list[int]:
        return [vb for vb, chain in enumerate(self.chains) if chain[0] == node]

    def replica_vbuckets_of(self, node: str) -> list[int]:
        return [
            vb for vb, chain in enumerate(self.chains) if node in chain[1:]
        ]

    def copy(self) -> "ClusterMap":
        return ClusterMap(
            self.num_vbuckets,
            [list(chain) for chain in self.chains],
            self.revision,
        )

    def stats(self) -> dict:
        active_counts = Counter(
            chain[0] for chain in self.chains if chain[0] is not None
        )
        replica_counts = Counter(
            node for chain in self.chains for node in chain[1:] if node is not None
        )
        return {
            "revision": self.revision,
            "active_per_node": dict(active_counts),
            "replica_per_node": dict(replica_counts),
            "unassigned_active": sum(1 for c in self.chains if c[0] is None),
        }


def plan_map(
    nodes: list[str],
    num_vbuckets: int = DEFAULT_NUM_VBUCKETS,
    num_replicas: int = 1,
    previous: ClusterMap | None = None,
) -> ClusterMap:
    """Compute a balanced placement over ``nodes``.

    With no previous map: deterministic striping.  With a previous map:
    keep every still-valid assignment, drop departed nodes, fill holes
    and then rebalance overloaded nodes minimally.
    """
    if not nodes:
        raise InvalidArgumentError("cannot plan a cluster map with zero nodes")
    if not 0 <= num_replicas <= MAX_REPLICAS:
        raise InvalidArgumentError(f"num_replicas must be 0..{MAX_REPLICAS}")
    effective_replicas = min(num_replicas, len(nodes) - 1)
    chain_length = 1 + num_replicas
    ordered_nodes = sorted(nodes)

    if previous is None:
        chains = []
        for vb in range(num_vbuckets):
            chain: list[str | None] = [
                ordered_nodes[(vb + position) % len(ordered_nodes)]
                for position in range(1 + effective_replicas)
            ]
            chain += [None] * (chain_length - len(chain))
            chains.append(chain)
        return ClusterMap(num_vbuckets, chains, revision=1)

    alive = set(nodes)
    chains = []
    for vb in range(previous.num_vbuckets):
        old_chain = previous.chains[vb]
        chain = [n if n in alive else None for n in old_chain]
        # Normalize length to the requested replica count.
        chain = (chain + [None] * chain_length)[:chain_length]
        chains.append(chain)

    _fill_holes(chains, ordered_nodes, effective_replicas)
    _balance(chains, ordered_nodes, position=0)
    for position in range(1, 1 + effective_replicas):
        _balance(chains, ordered_nodes, position=position)
    return ClusterMap(previous.num_vbuckets, chains, previous.revision + 1)


def _fill_holes(chains: list[list[str | None]], nodes: list[str],
                effective_replicas: int) -> None:
    """Assign every empty required slot to the least-loaded legal node."""
    load: Counter[str] = Counter({n: 0 for n in nodes})
    for chain in chains:
        for node in chain:
            if node is not None:
                load[node] += 1

    for chain in chains:
        # Promote a replica into an empty active slot first (cheap move:
        # the data is already there).
        if chain[0] is None:
            for position in range(1, len(chain)):
                if chain[position] is not None:
                    chain[0], chain[position] = chain[position], None
                    break
        for position in range(0, 1 + effective_replicas):
            if chain[position] is not None:
                continue
            candidates = [n for n in nodes if n not in chain]
            if not candidates:
                continue
            best = min(candidates, key=lambda n: (load[n], n))
            chain[position] = best
            load[best] += 1


def _balance(chains: list[list[str | None]], nodes: list[str],
             position: int) -> None:
    """Even out the per-node count at one chain position by reassigning
    vBuckets from the most- to the least-loaded nodes."""
    count: Counter[str] = Counter({n: 0 for n in nodes})
    holders: dict[str, list[int]] = {n: [] for n in nodes}
    for vb, chain in enumerate(chains):
        node = chain[position] if position < len(chain) else None
        if node is not None and node in count:
            count[node] += 1
            holders[node].append(vb)

    # Move vBuckets from the most- to the least-loaded node until the
    # spread is within 1.  Bounded: every move strictly shrinks the gap.
    for _ in range(len(chains) * len(nodes)):
        donor = max(nodes, key=lambda n: (count[n], n))
        if not holders[donor]:
            break
        recipients = sorted(nodes, key=lambda n: (count[n], n))
        if count[donor] - count[recipients[0]] <= 1:
            break
        moved = False
        for vb in reversed(holders[donor]):
            chain = chains[vb]
            for target in recipients:
                if count[donor] - count[target] <= 1:
                    break
                if target in chain:
                    # Active balancing may swap the active with the
                    # replica already holding the target (a promotion --
                    # the cheapest possible move).  Replica balancing
                    # must not disturb other positions.
                    if position != 0:
                        continue
                    other = chain.index(target)
                    if other == position:
                        continue
                    chain[position], chain[other] = target, donor
                else:
                    chain[position] = target
                holders[donor].remove(vb)
                holders[target].append(vb)
                count[donor] -= 1
                count[target] += 1
                moved = True
                break
            if moved:
                break
        if not moved:
            break
