"""Rebalancing.

Section 4.3.1: when the server set changes, "data partitions must be
redistributed ... a new cluster map is calculated based on the current
pending set of servers to be added and removed", partitions move between
source and destination directly, and "once the cluster moves each
partition from one location to another, an atomic and consistent
switchover takes place between the two affected nodes".

The mover builds each destination copy as a *pending* vBucket fed by a
DCP stream from the source, catches up to the source's high seqno, then
performs the switchover: destination promotes to active, source goes
dead, the shared map's revision bumps, and clients learn on their next
NOT_MY_VBUCKET retry.  Replica placement is reconciled afterwards by
pushing the final map (replica copies then backfill over normal
intra-cluster replication).
"""

from __future__ import annotations

from ..common.errors import RebalanceInProgressError
from ..dcp.messages import Deletion, Mutation
from ..kv.types import VBucketState
from .cluster_map import plan_map
from .manager import ClusterManager


class Rebalancer:
    """Executes rebalances against a :class:`ClusterManager`."""

    def __init__(self, manager: ClusterManager):
        self.manager = manager
        self.in_progress = False
        #: (bucket, vbucket, source, destination) tuples of the last run.
        self.last_moves: list[tuple[str, int, str, str]] = []

    def rebalance(self) -> dict:
        """Redistribute every bucket over the current (non-ejected) data
        nodes.  Returns per-bucket move counts."""
        if self.in_progress:
            raise RebalanceInProgressError("rebalance already running")
        self.in_progress = True
        self.last_moves = []
        try:
            report = {}
            for bucket in list(self.manager.bucket_configs):
                report[bucket] = self._rebalance_bucket(bucket)
            return report
        finally:
            self.in_progress = False

    def _rebalance_bucket(self, bucket: str) -> dict:
        manager = self.manager
        config = manager.bucket_configs[bucket]
        current = manager.cluster_maps[bucket]
        nodes = manager.data_nodes()
        target = plan_map(
            nodes,
            num_vbuckets=current.num_vbuckets,
            num_replicas=config.num_replicas,
            previous=current,
        )

        moves = 0
        working = current.copy()
        for vbucket_id in range(current.num_vbuckets):
            source = working.chains[vbucket_id][0]
            destination = target.chains[vbucket_id][0]
            if destination is None or source == destination:
                continue
            if source is None:
                # Lost vBucket (failover with no replica): destination
                # simply creates an empty active copy.
                manager.nodes[destination].engine(bucket).create_vbucket(
                    vbucket_id, VBucketState.ACTIVE
                )
            else:
                self._move_vbucket(bucket, vbucket_id, source, destination)
            working.chains[vbucket_id][0] = destination
            working.revision += 1
            manager.cluster_maps[bucket] = working
            self.last_moves.append((bucket, vbucket_id, source or "-", destination))
            moves += 1

        # Adopt the target's replica placement wholesale, then reconcile
        # every node; replica copies rebuild via the replication pumps.
        final = target.copy()
        final.revision = working.revision + 1
        manager.cluster_maps[bucket] = final
        manager.push_map(bucket)
        self.manager.scheduler.run_until_idle()
        return {"moves": moves, "map_revision": final.revision}

    def _move_vbucket(self, bucket: str, vbucket_id: int,
                      source: str, destination: str) -> None:
        """Stream one vBucket's data source -> destination and switch over."""
        manager = self.manager
        source_node = manager.nodes[source]
        destination_node = manager.nodes[destination]
        source_engine = source_node.engine(bucket)
        destination_engine = destination_node.engine(bucket)

        destination_engine.drop_vbucket(vbucket_id)
        pending = destination_engine.create_vbucket(vbucket_id,
                                                    VBucketState.PENDING)
        producer = source_node.producer(bucket)
        # The moved copy continues the source's history (lineage travels
        # with the data so later stream resumes validate correctly).
        pending.source_failover_log = producer.failover_log(vbucket_id)
        stream = producer.stream_request(vbucket_id, start_seqno=0)
        while True:
            batch = stream.take(256)
            if not batch:
                if stream.caught_up():
                    break
                continue
            for message in batch:
                if isinstance(message, (Mutation, Deletion)):
                    destination_engine.apply_replicated(vbucket_id, message.doc)

        # Atomic switchover (section 4.3.1): replica/pending -> active on
        # the destination, active -> dead on the source.
        destination_engine.set_vbucket_state(vbucket_id, VBucketState.ACTIVE)
        source_engine.set_vbucket_state(vbucket_id, VBucketState.DEAD)
        source_engine.drop_vbucket(vbucket_id)
        source_node.metrics.inc("rebalance.vbuckets_out")
        destination_node.metrics.inc("rebalance.vbuckets_in")
