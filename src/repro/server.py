"""The Cluster facade: one object that assembles the whole system.

This is the library's main entry point.  It owns the virtual clock, the
cooperative scheduler, the network fabric, the cluster manager, and the
nodes, and exposes the administrative operations of section 4 (create
buckets, add/remove nodes, rebalance, failover) plus ``connect()`` for
application clients.

Multi-dimensional scaling (section 4.4) is expressed at construction:
``Cluster(nodes=4)`` makes four all-service nodes, while
``Cluster(nodes=[("n1", {"data"}), ("n2", {"index"}), ("n3", {"query"})])``
builds a service-segregated topology.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .admission.controller import AdmissionConfig, AdmissionController
from .client.smart_client import SmartClient
from .cluster.cluster_map import ClusterMap
from .cluster.manager import ClusterManager
from .cluster.node import Node
from .cluster.rebalance import Rebalancer
from .common.services import BucketConfig, Service
from .common.clock import VirtualClock
from .common.errors import ServiceUnavailableError
from .common.scheduler import Scheduler
from .common.transport import Network

if TYPE_CHECKING:
    from .gsi.manager import GsiCoordinator
    from .views.query import ViewQueryCoordinator

_ALL = {Service.DATA, Service.INDEX, Service.QUERY}


def _parse_services(raw) -> set[Service]:
    return {s if isinstance(s, Service) else Service(s) for s in raw}


class Cluster:
    """A complete in-process cluster."""

    def __init__(
        self,
        nodes: int | Iterable = 4,
        *,
        vbuckets: int = 64,
        auto_failover: bool = True,
        network_latency: float = 0.0,
        admission: bool | AdmissionConfig = True,
    ):
        """``nodes`` is either a count (all-service nodes named node1..N)
        or an iterable of ``(name, services)`` pairs.  ``vbuckets``
        defaults to 64 for in-process speed; pass 1024 for the paper's
        fixed production value.  ``admission`` is True (default controller
        with permissive limits), an :class:`AdmissionConfig` with explicit
        budgets, or False for the unprotected legacy overload behavior
        (the ablation baseline of the overload benchmark)."""
        self.clock = VirtualClock()
        self.scheduler = Scheduler(self.clock)
        self.network = Network(default_latency=network_latency)
        if admission:
            config = admission if isinstance(admission, AdmissionConfig) else None
            self.admission: AdmissionController | None = AdmissionController(
                self.scheduler, config=config
            )
            self.network.call_filter = self.admission.fabric_filter
        else:
            self.admission = None
        self.manager = ClusterManager(
            self.network, self.scheduler, auto_failover=auto_failover
        )
        self.rebalancer = Rebalancer(self.manager)
        self.num_vbuckets = vbuckets
        if isinstance(nodes, int):
            specs = [(f"node{i + 1}", _ALL) for i in range(nodes)]
        else:
            specs = [(name, _parse_services(services)) for name, services in nodes]
        for name, services in specs:
            self._make_node(name, services)

    # -- topology ------------------------------------------------------------------

    def _make_node(self, name: str, services: set[Service]) -> Node:
        node = Node(name, self.network, self.clock, services)
        self.manager.add_node(node)
        self._wire_services(node)
        return node

    def _wire_services(self, node: Node) -> None:
        """Attach index/query service components.  Implemented in stages:
        the view engine rides on the data service, the GSI indexer on the
        index service, the N1QL engine on the query service."""
        from .gsi.manager import IndexService
        from .n1ql.service import QueryService
        if node.has_service(Service.INDEX) and node.indexer is None:
            node.indexer = IndexService(node, self.network, self.scheduler)
        if node.has_service(Service.QUERY) and node.query_service is None:
            node.query_service = QueryService(self, node)

    def add_node(self, name: str, services: Iterable = ("data", "index", "query")) -> Node:
        """Join a new node; call :meth:`rebalance` to give it data."""
        return self._make_node(name, _parse_services(services))

    def remove_node(self, name: str) -> None:
        """Graceful removal: mark ejected, then rebalance data away."""
        self.manager.ejected.add(name)
        self.rebalance()
        self.network.unregister(name)
        del self.manager.nodes[name]

    def nodes(self) -> list[Node]:
        """All nodes, sorted by name."""
        return [self.manager.nodes[n] for n in sorted(self.manager.nodes)]

    def node(self, name: str) -> Node:
        """Look up one node by name."""
        return self.manager.nodes[name]

    # -- buckets ---------------------------------------------------------------------

    def create_bucket(
        self,
        name: str,
        *,
        replicas: int = 1,
        quota_bytes: int | None = None,
        eviction_policy: str = "value",
        compaction_threshold: float | None = 0.6,
        expiry_pager_interval: float | None = 60.0,
    ) -> ClusterMap:
        """Create a bucket (keyspace) across the data nodes and return its
        initial cluster map (section 4.1)."""
        config = BucketConfig(
            name=name,
            num_replicas=replicas,
            quota_bytes=quota_bytes,
            eviction_policy=eviction_policy,
            compaction_threshold=compaction_threshold,
            expiry_pager_interval=expiry_pager_interval,
        )
        cluster_map = self.manager.create_bucket(
            config, num_vbuckets=self.num_vbuckets
        )
        self.run_until_idle()
        return cluster_map

    def drop_bucket(self, name: str) -> None:
        """Remove a bucket and all of its data from every node."""
        self.manager.drop_bucket(name)

    # -- views (section 3.1.2) --------------------------------------------------------------

    def define_view(self, bucket: str, definition) -> None:
        """Publish a view (design document) to every data node and
        materialize it; joining nodes receive it automatically."""
        registry = self.manager.design_docs.setdefault(bucket, {})
        registry[(definition.design, definition.name)] = definition
        for name in self.manager.data_nodes():
            self.network.call("admin", name, "view_define", bucket, definition)
        self.run_until_idle()

    def drop_view(self, bucket: str, design: str, view: str) -> None:
        """Remove a view from every node's design-document registry."""
        self.manager.design_docs.get(bucket, {}).pop((design, view), None)
        for name in self.manager.data_nodes():
            self.network.call("admin", name, "view_drop", bucket, design, view)

    @property
    def views(self) -> "ViewQueryCoordinator":
        from .views.query import ViewQueryCoordinator
        return ViewQueryCoordinator(self)

    # -- global secondary indexes (sections 3.3, 4.3.4) --------------------------------------

    @property
    def gsi(self) -> "GsiCoordinator":
        from .gsi.manager import GsiCoordinator
        return GsiCoordinator(self)

    def create_index(self, definition, nodes=None):
        """Create a GSI index from an :class:`IndexDefinition` (the N1QL
        CREATE INDEX statement compiles down to this)."""
        return self.gsi.create_index(definition, nodes)

    def drop_index(self, name: str) -> None:
        """Drop a GSI index everywhere it is hosted."""
        self.gsi.drop_index(name)

    # -- clients --------------------------------------------------------------------------

    def connect(self, *, service: str = "kv") -> SmartClient:
        """Create an application client (the SDK handle of section 3.1).
        ``service`` tags the handle's traffic for bulkhead attribution
        ("kv" for applications; the query engine connects as "n1ql")."""
        client = SmartClient(self.manager, self.network, self.scheduler,
                             admission=self.admission, service=service)
        client.cluster = self
        return client

    # -- N1QL (sections 3.2, 4.5) ------------------------------------------------------------

    def query(self, statement: str, params=None, *,
              scan_consistency: str = "not_bounded",
              consistent_with=None):
        """Route a N1QL statement to a query-service node (SDKs "can
        route N1QL queries to any one of the nodes running the query
        service", section 4.5.1).  ``consistent_with`` takes the
        MutationResult tokens of the caller's own writes for at_plus
        (read-your-own-writes) consistency."""
        node = self.service_node(Service.QUERY)
        return node.query_service.query(statement, params,
                                        scan_consistency=scan_consistency,
                                        consistent_with=consistent_with)

    # -- operations ------------------------------------------------------------------------

    def rebalance(self) -> dict:
        """Redistribute vBuckets over the current nodes (section 4.3.1);
        returns per-bucket move counts."""
        report = self.rebalancer.rebalance()
        self.run_until_idle()
        return report

    def failover(self, node_name: str) -> dict:
        """Manual (administrator-initiated) failover."""
        report = self.manager.failover(node_name)
        self.run_until_idle()
        return report

    def crash_node(self, name: str) -> None:
        """Simulate a node death; auto-failover (if enabled) fires after
        the detection timeout of virtual time passes (see :meth:`tick`)."""
        self.network.set_down(name)
        self.node(name).alive = False
        self.run_until_idle()

    def recover_node(self, name: str) -> None:
        """Mark a previously crashed node reachable again (its memory
        state is intact -- for a real process restart use
        :meth:`restart_node`)."""
        self.network.set_down(name, False)
        self.node(name).alive = True
        self.run_until_idle()

    def restart_node(self, name: str) -> None:
        """Bring a crashed node back as a restarted process: memory is
        gone, the disk files survive.  Engines are rebuilt from storage
        (warmup), views re-materialize, GSI instances hosted here are
        rebuilt, and the node resumes whatever role the current cluster
        map assigns it."""
        node = self.node(name)
        manager = self.manager
        self.network.set_down(name, False)
        node.alive = True
        for bucket, config in manager.bucket_configs.items():
            for pump in ("flusher", "replicator", "views", "projector",
                         "compactor"):
                self.scheduler.unregister(f"{pump}/{name}/{bucket}")
            node.engines.pop(bucket, None)
            node.producers.pop(bucket, None)
            node.view_engines.pop(bucket, None)
            node.create_bucket(config)
            if bucket in manager.cluster_maps:
                node.apply_cluster_map(bucket, manager.cluster_maps[bucket])
            node.engines[bucket].warmup()
            manager._wire_bucket_pumps(node, bucket)
            for definition in manager.design_docs.get(bucket, {}).values():
                node.view_define(bucket, definition)
        if node.indexer is not None:
            indexer = node.indexer.indexer
            indexer.instances.clear()
            for index_name in manager.index_registry.names():
                meta = manager.index_registry.require(index_name)
                if name in meta.nodes and meta.state == "ready":
                    indexer.create(meta.definition)
                    self.gsi._build(meta)
        self.run_until_idle()

    # -- time ------------------------------------------------------------------------------------

    def run_until_idle(self) -> int:
        """Drain all asynchronous work (flushers, replication, indexers)."""
        return self.scheduler.run_until_idle()

    def tick(self, seconds: float) -> None:
        """Advance virtual time and let everything settle."""
        self.scheduler.advance(seconds)
        self.run_until_idle()

    # -- service lookup (used by clients and the query path) -----------------------------------------

    def service_node(self, service: Service) -> Node:
        """A live node running the given service (MDS placement)."""
        names = self.manager.nodes_with_service(service)
        live = [n for n in names if not self.network.is_down(n)]
        if not live:
            raise ServiceUnavailableError(service.value)
        return self.manager.nodes[live[0]]

    def stats(self) -> dict:
        """Cluster-wide status snapshot (nodes, orchestrator, maps)."""
        return self.manager.stats()
