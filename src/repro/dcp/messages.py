"""Database Change Protocol messages.

Section 4.3.2: DCP "is utilized to keep all of the different components
in sync and to move data between the components at high speed".  A DCP
stream for one vBucket carries snapshot markers -- each announcing a
consistent, de-duplicated seqno window -- followed by the mutations and
deletions inside that window, in seqno order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.document import Document


@dataclass
class SnapshotMarker:
    """Announces that the following items form a consistent snapshot of
    seqnos in [start_seqno, end_seqno].  A consumer that has applied the
    whole window may persist/advance its state to end_seqno."""

    vbucket_id: int
    start_seqno: int
    end_seqno: int
    #: True when the snapshot was read from disk (backfill) rather than
    #: from the in-memory change buffer.
    from_disk: bool = False


@dataclass
class Mutation:
    vbucket_id: int
    doc: Document

    @property
    def seqno(self) -> int:
        return self.doc.meta.seqno

    @property
    def key(self) -> str:
        return self.doc.key


@dataclass
class Deletion:
    vbucket_id: int
    doc: Document  # a tombstone: meta.deleted is True, value is None

    @property
    def seqno(self) -> int:
        return self.doc.meta.seqno

    @property
    def key(self) -> str:
        return self.doc.key


@dataclass
class StreamEnd:
    vbucket_id: int
    reason: str  # "ok", "closed", "state_changed"


DcpMessage = SnapshotMarker | Mutation | Deletion | StreamEnd
