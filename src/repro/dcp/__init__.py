"""Database Change Protocol: the in-memory change streams that feed
replication, view indexing, GSI maintenance, and XDCR (section 4.3.2)."""

from .messages import Deletion, DcpMessage, Mutation, SnapshotMarker, StreamEnd
from .producer import DcpProducer, DcpStream

__all__ = [
    "Deletion",
    "DcpMessage",
    "DcpProducer",
    "DcpStream",
    "Mutation",
    "SnapshotMarker",
    "StreamEnd",
]
