"""DCP producer and streams.

A :class:`DcpProducer` sits on top of a node's :class:`KVEngine` and
hands out per-vBucket :class:`DcpStream` objects.  Consumers --
intra-cluster replication, the view engine, the GSI projector, XDCR,
rebalance movers -- pull messages with :meth:`DcpStream.take`, which is
how the cooperative scheduler models "memory-to-memory streaming".

A stream starts with **backfill** (reading the persisted, de-duplicated
history from the storage snapshot) when the consumer's start point has
already been trimmed from the in-memory change buffer, then switches to
the in-memory buffer.  Stream requests carry the consumer's last known
``(vb_uuid, seqno)``; if that history branch diverged (the consumer
heard mutations from a failed-over active that the new active never
had), the producer demands a **rollback** (section 4.3.1's failover
machinery, surfaced through DCP).
"""

from __future__ import annotations

import itertools
import math
from collections import deque

from enum import Enum

from ..common import tracing
from ..common.costmodel import cost, hot_path
from ..common.errors import StreamRollbackRequired
from ..common.protomodel import protocol
from ..kv.engine import KVEngine, VBucket
from ..kv.types import VBucketState
from .messages import Deletion, DcpMessage, Mutation, SnapshotMarker, StreamEnd


@protocol(
    # A stream opens, backfills from disk when its start point was
    # trimmed, then rides the in-memory buffer; falling behind the
    # buffer trim drops it back to backfill.  CLOSED is terminal: a
    # closed stream never resumes (consumers reopen a fresh one so the
    # rollback handshake re-validates lineage).
    "OPEN->BACKFILL", "OPEN->IN_MEMORY", "OPEN->CLOSED",
    "BACKFILL->IN_MEMORY", "BACKFILL->CLOSED",
    "IN_MEMORY->BACKFILL", "IN_MEMORY->CLOSED",
)
class DcpStreamState(Enum):
    OPEN = "open"
    BACKFILL = "backfill"
    IN_MEMORY = "in-memory"
    CLOSED = "closed"


class DcpStream:
    """A pull-based change stream for one vBucket."""

    def __init__(self, producer: "DcpProducer", vb: VBucket, start_seqno: int,
                 end_seqno: float = math.inf):
        self.producer = producer
        self.vb = vb
        self.last_seqno = start_seqno
        self.end_seqno = end_seqno
        self.phase = DcpStreamState.OPEN
        # deque, not list: backfill parks the entire persisted history
        # here, and take() drains from the left -- list.pop(0) would
        # shift the whole backlog per message (quadratic per stream).
        # Consumer-drained (repro-bounds): every pump that owns a
        # stream calls take() each round until caught_up().
        self._pending: deque[DcpMessage] = deque()
        #: Stable per-run identity for the write-race tracker: the first
        #: pump to take() from this stream owns it; anyone else taking
        #: from the same stream is stealing a peer's queue.
        self.stream_id = (
            f"dcp/{producer.engine.node_name}/{producer.engine.bucket_name}"
            f"/vb{vb.id}#{next(producer._stream_seq)}"
        )

    @property
    def vbucket_id(self) -> int:
        return self.vb.id

    @property
    def closed(self) -> bool:
        return self.phase is DcpStreamState.CLOSED

    def caught_up(self) -> bool:
        """True when the consumer has everything the vBucket has."""
        return self.last_seqno >= self.vb.high_seqno

    @hot_path
    @cost("O(n)")
    def take(self, max_items: int = 64) -> list[DcpMessage]:
        """Return up to ``max_items`` messages (snapshot markers are free).

        Returns an empty list when there is nothing new; an unbounded
        stream never ends, a bounded one emits :class:`StreamEnd` when it
        passes ``end_seqno``."""
        tracing.record_take(self.stream_id)
        if self.closed:
            return []
        out: list[DcpMessage] = []
        while len(out) < max_items:
            if not self._pending:
                self._refill()
            if not self._pending:
                break
            message = self._pending.popleft()
            out.append(message)
            if isinstance(message, (Mutation, Deletion)):
                self.last_seqno = message.seqno
            if isinstance(message, StreamEnd):
                self.phase = DcpStreamState.CLOSED
                self.producer.engine.metrics.inc("dcp.stream_ended")
                break
        return out

    def _refill(self) -> None:
        vb = self.vb
        if self.phase is DcpStreamState.CLOSED:
            return  # a closed stream never resumes
        if self.last_seqno >= self.end_seqno:
            self._pending.append(StreamEnd(vb.id, "ok"))
            return
        if self.last_seqno >= vb.high_seqno:
            return  # caught up; more may arrive later
        if self.last_seqno < vb.buffer_start_seqno:
            self._backfill()
        else:
            self._from_buffer()

    def _backfill(self) -> None:
        """Disk phase: stream the persisted de-duplicated history up to
        the point where the in-memory buffer takes over."""
        vb = self.vb
        self.phase = DcpStreamState.BACKFILL
        self.producer.engine.metrics.inc("dcp.stream_backfill")
        backfill_end = vb.buffer_start_seqno
        docs = [
            doc
            for doc in vb.store.changes_since(self.last_seqno)
            if doc.meta.seqno <= backfill_end
        ]
        if not docs:
            # Nothing on disk in the gap (e.g. all superseded); skip ahead.
            self.last_seqno = backfill_end
            return
        self._pending.append(
            SnapshotMarker(vb.id, self.last_seqno + 1, backfill_end, from_disk=True)
        )
        for doc in docs:
            if doc.meta.deleted:
                self._pending.append(Deletion(vb.id, doc.copy()))
            else:
                self._pending.append(Mutation(vb.id, doc.copy()))
        # The marker covers the whole gap even if trailing seqnos were
        # superseded; advance past any silence at the end.
        self._last_backfill_end = backfill_end

    def _from_buffer(self) -> None:
        vb = self.vb
        self.phase = DcpStreamState.IN_MEMORY
        self.producer.engine.metrics.inc("dcp.stream_in_memory")
        items = [
            doc for doc in vb.change_buffer
            if self.last_seqno < doc.meta.seqno <= self.end_seqno
        ]
        if not items:
            if self.last_seqno < vb.buffer_start_seqno:
                return
            # Superseded seqnos can leave silence; snap to high mark.
            self.last_seqno = max(self.last_seqno, vb.buffer_start_seqno)
            return
        self._pending.append(
            SnapshotMarker(vb.id, items[0].meta.seqno, items[-1].meta.seqno)
        )
        for doc in items:
            if doc.meta.deleted:
                self._pending.append(Deletion(vb.id, doc.copy()))
            else:
                self._pending.append(Mutation(vb.id, doc.copy()))

    def close(self) -> None:
        self.phase = DcpStreamState.CLOSED
        self.producer.engine.metrics.inc("dcp.stream_closed")


class DcpProducer:
    """Creates streams over one node's KV engine for one bucket."""

    def __init__(self, engine: KVEngine, name: str = "dcp"):
        self.engine = engine
        self.name = name
        self._stream_seq = itertools.count(1)

    @hot_path
    @cost("O(n)")
    def stream_request(
        self,
        vbucket_id: int,
        start_seqno: int = 0,
        vb_uuid: int | None = None,
        end_seqno: float = math.inf,
        allow_replica: bool = True,
    ) -> DcpStream:
        """Open a stream from ``start_seqno`` (exclusive).

        ``vb_uuid`` is the consumer's last known history branch; a
        divergent branch raises :class:`StreamRollbackRequired` with the
        seqno the consumer must discard back to."""
        vb = self.engine.vbuckets.get(vbucket_id)
        if vb is None or (
            vb.state is not VBucketState.ACTIVE
            and not (allow_replica and vb.state is VBucketState.REPLICA)
        ):
            from ..common.errors import NotMyVBucketError
            raise NotMyVBucketError(vbucket_id, self.engine.node_name)
        if vb_uuid is not None and start_seqno > 0:
            rollback_point = self._rollback_point(vb, vb_uuid, start_seqno)
            if rollback_point is not None:
                raise StreamRollbackRequired(vbucket_id, rollback_point)
        if start_seqno > vb.high_seqno:
            raise StreamRollbackRequired(vbucket_id, vb.high_seqno)
        return DcpStream(self, vb, start_seqno, end_seqno)

    @staticmethod
    def _rollback_point(vb: VBucket, vb_uuid: int, start_seqno: int) -> int | None:
        """None if the consumer's (uuid, seqno) lies on this vBucket's
        history; otherwise the seqno to roll back to."""
        log = vb.failover_log
        for index, (uuid, branch_start) in enumerate(log):
            if uuid != vb_uuid:
                continue
            branch_end = (
                log[index + 1][1] if index + 1 < len(log) else vb.high_seqno
            )
            if start_seqno <= branch_end:
                return None
            return branch_end
        # Unknown branch entirely: the consumer must restart from zero.
        return 0

    def failover_log(self, vbucket_id: int) -> list[tuple[int, int]]:
        return list(self.engine.vbuckets[vbucket_id].failover_log)
