"""repro-hotpath: static cost analysis of the tree's hot paths.

The analyzer derives the *hot set* -- every function reachable from an
``@hot_path`` root or a registered scheduler pump, closed over the
whole-program call graph from :mod:`repro.flow` -- and then holds that
set to a higher standard than the rest of the tree:

* per-function AST cost rules (quadratic loop patterns, per-row copies
  of loop-invariant values, loop-invariant expensive work, N+1 RPC
  fan-out), scoped to hot functions only so cold setup code stays free
  to be simple; and
* an ``@cost`` contract check: declared bounds must be consistent up
  the call graph -- an ``O(1)`` op cannot lean on an ``O(n)`` callee,
  and a loop multiplies whatever it calls.

Run it with ``python -m repro.hotpath`` (exit 0 clean / 1 findings /
2 usage, same contract as repro-lint, repro-sanitize and repro-flow).
"""

from .analyze import ALL_CHECKS, HotpathResult, analyze
from .costs import COST_CHECKS, check_costs
from .findings import HotFinding
from .rules import RULES, scan_function

__all__ = [
    "ALL_CHECKS",
    "COST_CHECKS",
    "HotFinding",
    "HotpathResult",
    "RULES",
    "analyze",
    "check_costs",
    "scan_function",
]
