"""Declared-cost contract: ``@cost`` consistency up the call graph.

Three checks over the hot set:

``cost-undeclared``
    A function marked ``@hot_path`` carries no ``@cost`` declaration.
    Hot roots are the contract surface -- every one must state its
    per-call bound so callers (and reviewers) can rely on it.
``cost-exceeds-caller``
    An annotated function calls another annotated function whose
    declared bound is *greater* than its own: an ``O(1)`` op cannot be
    built on an ``O(n)`` callee.
``cost-loop-amplified``
    An annotated function calls an annotated callee from inside a loop
    (or comprehension) where the loop multiplies the callee's bound past
    the caller's declaration: ``O(n)`` work per iteration of a loop
    inside an ``O(n)`` function is O(n^2).  Inside a loop a callee must
    declare *strictly less* than the caller (an ``O(n)`` caller may do
    ``O(log n)`` per item; an ``O(log n)`` or ``O(1)`` caller only
    ``O(1)`` per item).

Only annotated pairs are compared -- the per-function AST rules
(:mod:`repro.hotpath.rules`) cover the unannotated middle of the graph.
"""

from __future__ import annotations

import ast

from ..common.costmodel import COST_RANK, COSTS
from ..flow.callgraph import CallGraph
from ..flow.hotset import HotSet, declared_cost, is_hot_root
from ..flow.project import FuncInfo, Project
from .findings import HotFinding

COST_CHECKS = ("cost-undeclared", "cost-exceeds-caller",
               "cost-loop-amplified")


def _loop_nodes(func: FuncInfo) -> set[int]:
    """ids of AST nodes lexically inside a loop within ``func``.

    Nested function bodies are excluded: code in a closure runs when the
    closure is *called*, which the call graph models separately.
    """
    inside: set[int] = set()

    def mark(node: ast.AST) -> None:
        inside.add(id(node))
        walk(node, True)

    def walk(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                walk(child, False)
            return
        if isinstance(node, ast.For):
            walk(node.iter, in_loop)  # evaluated once, before the loop
            for stmt in node.body:
                mark(stmt)
            for stmt in node.orelse:
                walk(stmt, in_loop)
            return
        if isinstance(node, ast.While):
            mark(node.test)  # re-evaluated every iteration
            for stmt in node.body:
                mark(stmt)
            for stmt in node.orelse:
                walk(stmt, in_loop)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            walk(node.generators[0].iter, in_loop)
            for index, comp in enumerate(node.generators):
                if index > 0:
                    mark(comp.iter)
                for condition in comp.ifs:
                    mark(condition)
            if isinstance(node, ast.DictComp):
                mark(node.key)
                mark(node.value)
            else:
                mark(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            if in_loop:
                inside.add(id(child))
            walk(child, in_loop)

    walk(func.node, False)
    return inside


def check_costs(project: Project, graph: CallGraph, hotset: HotSet,
                selected: frozenset[str] | None = None) -> list[HotFinding]:
    chosen = frozenset(COST_CHECKS) if selected is None else selected
    findings: list[HotFinding] = []

    declared: dict[str, str] = {}
    for fqn in hotset.members:
        func = project.functions.get(fqn)
        if func is None:
            continue
        bound = declared_cost(func)
        if bound is not None:
            if bound not in COST_RANK:
                continue  # the decorator itself rejects this at runtime
            declared[fqn] = bound
        elif is_hot_root(func) and "cost-undeclared" in chosen:
            module = project.modules.get(func.module)
            findings.append(HotFinding(
                check="cost-undeclared",
                path=module.path if module else func.module,
                line=func.line, col=func.col,
                message=f"@hot_path root {func.name!r} declares no "
                        f"@cost bound (one of {', '.join(COSTS)})",
            ))

    loop_cache: dict[str, set[int]] = {}
    for caller_info, call, callee_info, kind in graph.call_sites:
        caller_bound = declared.get(caller_info.fqn)
        callee_bound = declared.get(callee_info.fqn)
        if caller_bound is None or callee_bound is None:
            continue
        if caller_info.fqn == callee_info.fqn:
            continue  # recursion: the declaration already covers itself
        caller_rank = COST_RANK[caller_bound]
        callee_rank = COST_RANK[callee_bound]
        loops = loop_cache.get(caller_info.fqn)
        if loops is None:
            loops = _loop_nodes(caller_info)
            loop_cache[caller_info.fqn] = loops
        in_loop = id(call) in loops
        module = project.modules.get(caller_info.module)
        path = module.path if module else caller_info.module
        if in_loop and callee_rank >= max(caller_rank, 1) and \
                "cost-loop-amplified" in chosen:
            findings.append(HotFinding(
                check="cost-loop-amplified",
                path=path, line=call.lineno, col=call.col_offset,
                message=f"{callee_info.name!r} is declared "
                        f"{callee_bound} but is called in a loop inside "
                        f"{caller_info.name!r} ({caller_bound}): the loop "
                        f"multiplies it past the declared bound",
            ))
        elif not in_loop and callee_rank > caller_rank and \
                "cost-exceeds-caller" in chosen:
            findings.append(HotFinding(
                check="cost-exceeds-caller",
                path=path, line=call.lineno, col=call.col_offset,
                message=f"{caller_info.name!r} is declared {caller_bound} "
                        f"but calls {callee_info.name!r} declared "
                        f"{callee_bound}",
            ))
    return findings
