"""Per-function AST cost rules, run only inside the hot set.

Each rule recognizes one *shape* of accidental per-call blowup that has
actually bitten this tree (the O(n^2) item pager, the compaction-pump
crawl, per-row expression interpretation):

``quadratic-membership``
    ``x in seen`` / ``seen.index(x)`` / ``seen.count(x)`` inside a loop,
    where ``seen`` is a list built in this function.  Each test scans
    the list, so the loop is quadratic -- use a set/dict.
``list-shift``
    ``items.pop(0)`` / ``items.insert(0, ...)`` anywhere in a hot
    function: both shift every element, O(len) per call -- use
    ``collections.deque``.
``sort-in-loop``
    ``sorted(...)`` or ``.sort()`` inside a loop: O(k log k) per
    iteration; sort once outside, or keep a heap.
``str-concat-in-loop``
    ``acc += ...`` on a string initialized in this function, or the
    ``acc = acc + ...`` self-rebuild, inside a loop: each step copies
    the whole accumulator -- collect parts and join/extend once.
``copy-in-loop``
    ``deepcopy(x)`` / ``deep_copy(x)`` / ``x.copy()`` / ``list(x)`` /
    ``dict(x)`` inside a loop where ``x`` is loop-invariant: the same
    value is re-copied every iteration -- hoist the copy (or stop
    copying).
``invariant-in-loop``
    A known-expensive call (``compile_expr``, ``compile_sort_key``,
    ``parse``, catalog/planner lookups) whose arguments are all
    loop-invariant, inside a loop: per-row compilation of a per-batch
    fact -- hoist it ("compile once per batch, not per row").
``n-plus-one-rpc``
    A single-key client op (``client.get`` and friends, ``self._call``)
    inside a loop over keys: one RPC per key where a batched
    ``multi_*`` / ``call_fanout`` path exists.

Rules are heuristic by design; a justified exception carries a
``# repro-hotpath: disable=<check>`` suppression at the site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..flow.project import FuncInfo, ModuleInfo
from .findings import HotFinding

#: Calls that are expensive enough that doing them per row with
#: loop-invariant arguments is always a hoisting miss.
EXPENSIVE_CALLS = frozenset({
    "compile_expr", "compile_sort_key", "parse", "plan_select",
    "compile", "loads", "dumps",
})

#: Receiver name segments that mark catalog/metadata lookups.
CATALOG_RECEIVERS = frozenset({"catalog", "planner"})

#: Single-key ops on a client-like receiver that have batched variants.
SINGLE_KEY_OPS = frozenset({
    "get", "upsert", "insert", "replace", "remove", "delete", "touch",
    "counter", "observe",
})

#: Receiver name segments treated as RPC-issuing clients.
CLIENT_RECEIVERS = frozenset({"client", "network"})

RULES = (
    "quadratic-membership",
    "list-shift",
    "sort-in-loop",
    "str-concat-in-loop",
    "copy-in-loop",
    "invariant-in-loop",
    "n-plus-one-rpc",
)

_LIST_BUILTINS = {"list", "sorted"}
_COPY_CALLS = {"deepcopy", "deep_copy", "copy"}


def _receiver_name(node: ast.expr) -> str | None:
    """Last dotted segment of a call receiver: ``self.client`` -> client."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_name(call: ast.Call) -> str | None:
    return _receiver_name(call.func)


@dataclass
class _Loop:
    node: ast.AST
    #: names (re)bound anywhere inside the loop body.
    assigned: set[str] = field(default_factory=set)


def _assigned_names(node: ast.AST) -> set[str]:
    """Every Name bound by statements under ``node`` (loop bodies)."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(child.name)
    return names


def _is_list_expr(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.ListComp)):
        return True
    if isinstance(value, ast.Call) and _call_name(value) in _LIST_BUILTINS:
        return True
    return False


def _annotation_is_list(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    name = None
    if isinstance(annotation, ast.Subscript):
        name = _receiver_name(annotation.value)
    else:
        name = _receiver_name(annotation)
    return name in {"list", "List"}


class _FunctionScan(ast.NodeVisitor):
    """One pass over a hot function's body, tracking loop context."""

    def __init__(self, func: FuncInfo, module: ModuleInfo, why: str,
                 selected: frozenset[str]):
        self.func = func
        self.module = module
        self.why = why
        self.selected = selected
        self.findings: list[HotFinding] = []
        self.loops: list[_Loop] = []
        #: names known to hold lists / strings in this function.
        self.list_names: set[str] = set()
        self.str_names: set[str] = set()

    # -- plumbing --------------------------------------------------------------

    def _flag(self, check: str, node: ast.AST, message: str) -> None:
        if check not in self.selected:
            return
        self.findings.append(HotFinding(
            check=check,
            path=self.module.path,
            line=getattr(node, "lineno", self.func.line),
            col=getattr(node, "col_offset", 0),
            message=f"{message} [{self.why}]",
        ))

    def _invariant(self, node: ast.expr) -> bool:
        """True when ``node`` cannot change across iterations of the
        innermost loop: constants, and names/attribute-chains rooted at
        a name the loop body never rebinds."""
        if isinstance(node, ast.Constant):
            return True
        if not self.loops:
            return False
        assigned = self.loops[-1].assigned
        base = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name):
            return base.id not in assigned
        return False

    def scan(self) -> list[HotFinding]:
        node = self.func.node
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if _annotation_is_list(arg.annotation):
                self.list_names.add(arg.arg)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._note_binding(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                if _annotation_is_list(stmt.annotation) or (
                        stmt.value is not None
                        and _is_list_expr(stmt.value)):
                    self.list_names.add(stmt.target.id)
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        return self.findings

    def _note_binding(self, name: str, value: ast.expr) -> None:
        if _is_list_expr(value):
            self.list_names.add(name)
        elif isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.str_names.add(name)

    # -- loop context ----------------------------------------------------------

    def _enter_loop(self, node: ast.AST, bodies: list) -> None:
        loop = _Loop(node)
        for body in bodies:
            for stmt in body:
                loop.assigned |= _assigned_names(stmt)
        if isinstance(node, ast.For):
            loop.assigned |= _assigned_names(node.target)
        self.loops.append(loop)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._enter_loop(node, [node.body])
        for stmt in node.body:
            self.visit(stmt)
        self.loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node, [node.body])
        self.visit(node.test)
        for stmt in node.body:
            self.visit(stmt)
        self.loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self.visit(comp.iter)
        loop = _Loop(node)
        for comp in node.generators:
            loop.assigned |= _assigned_names(comp.target)
        self.loops.append(loop)
        for comp in node.generators:
            for condition in comp.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self.loops.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def _skip_nested(self, node) -> None:
        # A nested def's body runs when *called*, not where it is
        # written; scan it without the enclosing loop context.
        saved, self.loops = self.loops, []
        for stmt in node.body if isinstance(node.body, list) else [node.body]:
            self.visit(stmt)
        self.loops = saved

    visit_FunctionDef = _skip_nested
    visit_AsyncFunctionDef = _skip_nested
    visit_Lambda = _skip_nested

    # -- the rules -------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.loops and len(node.ops) == 1 and isinstance(
                node.ops[0], (ast.In, ast.NotIn)):
            target = node.comparators[0]
            if isinstance(target, ast.Name) and target.id in self.list_names:
                self._flag(
                    "quadratic-membership", node,
                    f"membership test on list {target.id!r} inside a loop "
                    f"is O(len) per hit; use a set",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (self.loops and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
                and node.target.id in self.str_names):
            self._flag(
                "str-concat-in-loop", node,
                f"string accumulation {node.target.id!r} += ... in a loop "
                f"copies the whole accumulator each step; collect parts "
                f"and join once",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # acc = acc + ... self-rebuild inside a loop.
        if (self.loops and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Add)):
            target = node.targets[0].id
            left = node.value.left
            if isinstance(left, ast.Name) and left.id == target:
                self._flag(
                    "str-concat-in-loop", node,
                    f"{target!r} = {target} + ... in a loop rebuilds the "
                    f"whole value each step; append/extend instead",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "pop" and isinstance(node.func, ast.Attribute):
            if (node.args and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == 0):
                self._flag(
                    "list-shift", node,
                    "pop(0) shifts every remaining element, O(len) per "
                    "call; use collections.deque",
                )
        elif name == "insert" and isinstance(node.func, ast.Attribute):
            if (node.args and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == 0):
                self._flag(
                    "list-shift", node,
                    "insert(0, ...) shifts every element, O(len) per "
                    "call; use collections.deque",
                )
        if (self.loops and name in {"index", "count"}
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in self.list_names):
            self._flag(
                "quadratic-membership", node,
                f"{node.func.value.id}.{name}(...) scans the list on "
                f"every loop iteration; use a set or dict",
            )
        if self.loops:
            self._check_sort(node, name)
            self._check_copy(node, name)
            self._check_invariant_call(node, name)
            self._check_rpc(node, name)
        self.generic_visit(node)

    def _check_sort(self, node: ast.Call, name: str | None) -> None:
        # Only a loop-invariant value re-sorted per iteration is waste;
        # sorting data produced by the iteration itself is legitimate
        # (e.g. sorting each retry round's fresh node grouping).
        if name == "sorted" and isinstance(node.func, ast.Name):
            if node.args and self._invariant(node.args[0]):
                self._flag("sort-in-loop", node,
                           "sorted(...) of a loop-invariant value inside a "
                           "loop re-sorts per iteration; sort once outside")
        elif name == "sort" and isinstance(node.func, ast.Attribute):
            if self._invariant(node.func.value):
                self._flag("sort-in-loop", node,
                           ".sort() of a loop-invariant value inside a loop "
                           "re-sorts per iteration; sort once outside")

    def _check_copy(self, node: ast.Call, name: str | None) -> None:
        if name in _COPY_CALLS:
            if isinstance(node.func, ast.Attribute) and _receiver_name(
                    node.func.value) != "copy":
                # x.copy() -- judge the receiver; copy.copy(x) falls
                # through to the argument form below.
                receiver: ast.expr | None = node.func.value
            else:
                receiver = node.args[0] if node.args else None
            if receiver is not None and not isinstance(
                    receiver, ast.Constant) and self._invariant(receiver):
                self._flag(
                    "copy-in-loop", node,
                    f"{name}() of a loop-invariant value inside a loop "
                    f"re-copies the same data every iteration; hoist it",
                )
        elif (name in {"list", "dict"} and isinstance(node.func, ast.Name)
                and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Name)
                and self._invariant(node.args[0])):
            self._flag(
                "copy-in-loop", node,
                f"{name}({node.args[0].id}) rebuilds a loop-invariant "
                f"value every iteration; hoist it",
            )

    def _check_invariant_call(self, node: ast.Call, name: str | None) -> None:
        expensive = name in EXPENSIVE_CALLS
        if not expensive and isinstance(node.func, ast.Attribute):
            expensive = _receiver_name(node.func.value) in CATALOG_RECEIVERS
        if not expensive or not node.args:
            return
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        if all(self._invariant(arg) for arg in arguments):
            label = name or "call"
            self._flag(
                "invariant-in-loop", node,
                f"{label}(...) has loop-invariant arguments but runs "
                f"every iteration; compile/resolve once before the loop",
            )

    def _check_rpc(self, node: ast.Call, name: str | None) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = _receiver_name(node.func.value)
        is_client = receiver is not None and (
            receiver in CLIENT_RECEIVERS or receiver.endswith("_client")
        )
        if is_client and name == "call" and any(
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                and ("multi" in arg.value or "batch" in arg.value
                     or "fanout" in arg.value)
                for arg in node.args):
            # The loop dispatches an explicitly batched RPC (one call
            # serves many items) -- exactly what this rule asks for.
            return
        if (is_client and name in SINGLE_KEY_OPS) or (
                is_client and name == "call") or name in {"_call",
                                                          "_routed_call"}:
            self._flag(
                "n-plus-one-rpc", node,
                f"single-key {receiver}.{name}(...) inside a loop issues "
                f"one RPC per item; use the batched multi_* / "
                f"call_fanout path",
            )


def scan_function(func: FuncInfo, module: ModuleInfo, why: str,
                  selected: frozenset[str] | None = None) -> list[HotFinding]:
    """Run every (selected) rule over one hot function."""
    chosen = frozenset(RULES) if selected is None else selected
    return _FunctionScan(func, module, why, chosen).scan()
