"""Command line front end: ``python -m repro.hotpath [paths...]``.

Exit status mirrors repro-lint/sanitize/flow: 0 clean, 1 findings, 2
usage errors -- one contract for every gate in CI.  Suppressions are
``# repro-hotpath: disable=<check>`` (or ``disable-next=``) with a short
justification expected on the same or neighboring line.

``--report hot-set`` prints the derived hot set with provenance (which
root pulled each function in) and exits 0 -- the intended way to answer
"is this function guarded?" before relying on it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    PROFILES,
    discover,
    github_annotation,
    parse_suppressions,
    profile_for,
    suppressed,
)
from ..common.errors import InvalidArgumentError
from ..flow.callgraph import build_callgraph
from ..flow.project import Project
from .analyze import ALL_CHECKS, analyze
from .findings import HotFinding

TOOL = "repro-hotpath"

#: Checks the relaxed profile (fixture trees, harness code analyzed
#: without --profile strict) does not enforce: demo code may mark a hot
#: root without committing to a cost contract.
RELAXED_EXEMPT = frozenset({"cost-undeclared"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hotpath",
        description="Static cost analysis of the tree's hot paths: "
                    "derives the hot set from @hot_path roots and "
                    "scheduler pumps, then checks per-function cost "
                    "rules and @cost contracts.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze as one program "
             "(default: src/repro)",
    )
    parser.add_argument(
        "--check", metavar="NAME[,NAME...]", default=None,
        help=f"run only these checks (of: {', '.join(ALL_CHECKS)})",
    )
    parser.add_argument(
        "--profile", choices=("auto",) + PROFILES, default="auto",
        help="auto (default) is strict under src/repro and relaxed "
             "elsewhere; relaxed does not require @cost declarations "
             "on hot roots",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default) prints path:line:col lines; github emits "
             "::error workflow commands that become inline PR annotations",
    )
    parser.add_argument(
        "--report", choices=("hot-set",), default=None,
        help="print the derived hot set with provenance instead of "
             "running the checks (informational; always exits 0)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def _selected(arg: str | None) -> frozenset[str]:
    if arg is None:
        return frozenset(ALL_CHECKS)
    names = tuple(name.strip() for name in arg.split(",") if name.strip())
    unknown = [name for name in names if name not in ALL_CHECKS]
    if unknown:
        raise InvalidArgumentError(
            f"unknown check {', '.join(unknown)} "
            f"(choose from {', '.join(ALL_CHECKS)})"
        )
    return frozenset(names)


def _keep(finding: HotFinding, suppressions_by_path: dict,
          requested: str) -> bool:
    if suppressed(finding.check, finding.line,
                  suppressions_by_path.get(finding.path, {})):
        return False
    profile = profile_for(Path(finding.path), requested)
    if profile == "relaxed" and finding.check in RELAXED_EXEMPT:
        return False
    return True


def _print_finding(finding: HotFinding, output_format: str) -> None:
    if output_format == "github":
        print(github_annotation(
            finding.message, title=f"{TOOL}: {finding.check}",
            path=finding.path, line=finding.line, col=finding.col,
        ))
    else:
        print(finding.format())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        checks = _selected(args.check)
    except InvalidArgumentError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    files = discover(args.paths)
    if not files:
        print(f"{TOOL}: no Python files under {args.paths}",
              file=sys.stderr)
        return EXIT_USAGE
    project = Project.build(Path(f) for f in files)
    if project.parse_errors:
        for path, line, message in project.parse_errors:
            print(f"{TOOL}: {path}:{line}: {message}", file=sys.stderr)
        return EXIT_USAGE
    graph = build_callgraph(project)
    result = analyze(project, graph, checks)

    if args.report == "hot-set":
        for fqn in sorted(result.hotset.members):
            func = project.functions.get(fqn)
            line = func.line if func else 0
            print(f"{fqn}:{line}: {result.hotset.why(fqn)}")
        if not args.quiet:
            print(f"{TOOL}: {len(result.hotset.members)} hot functions "
                  f"from {len(result.hotset.roots)} roots "
                  f"(informational; not a gate)")
        return EXIT_CLEAN

    suppressions_by_path = {
        module.path: parse_suppressions(module.source_lines, TOOL)
        for module in project.modules.values()
    }
    findings = [f for f in result.findings
                if _keep(f, suppressions_by_path, args.profile)]
    for finding in findings:
        _print_finding(finding, args.output_format)
    if not args.quiet:
        print(
            f"{TOOL}: {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'} in {len(files)} files "
            f"({len(result.hotset.members)} hot functions from "
            f"{len(result.hotset.roots)} roots)"
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
