"""Orchestration: hot set -> per-function rules -> cost contract."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flow.callgraph import CallGraph, build_callgraph
from ..flow.hotset import HotSet, derive_hot_set
from ..flow.project import Project
from .costs import COST_CHECKS, check_costs
from .findings import HotFinding
from .rules import RULES, scan_function

#: Every check the CLI can select.
ALL_CHECKS = RULES + COST_CHECKS


@dataclass
class HotpathResult:
    findings: list[HotFinding] = field(default_factory=list)
    hotset: HotSet = field(default_factory=HotSet)


def analyze(project: Project, graph: CallGraph | None = None,
            selected: frozenset[str] | None = None) -> HotpathResult:
    """Run the hot-path cost analysis over one project index."""
    if graph is None:
        graph = build_callgraph(project)
    chosen = frozenset(ALL_CHECKS) if selected is None else selected
    hotset = derive_hot_set(project, graph)
    result = HotpathResult(hotset=hotset)

    rule_selection = chosen & frozenset(RULES)
    if rule_selection:
        for fqn in sorted(hotset.members):
            func = project.functions.get(fqn)
            if func is None:
                continue
            module = project.modules.get(func.module)
            if module is None:
                continue
            result.findings.extend(scan_function(
                func, module, f"hot: {hotset.why(fqn)}", rule_selection,
            ))

    cost_selection = chosen & frozenset(COST_CHECKS)
    if cost_selection:
        result.findings.extend(
            check_costs(project, graph, hotset, cost_selection)
        )

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return result
