"""Path-sensitive conformance rules over the transition-site inventory.

Each function body is walked once with a small abstract state: a map
from receiver expressions (``self.state``, ``vb.state``, ``slot.state``)
to the set of protocol states the receiver may hold on the current
path.  ``if`` tests comparing a receiver against state literals narrow
the branch environments (``and`` conjuncts narrow the then-branch,
``or`` the else-branch, and a terminated branch leaves its complement
after the ``if``); literal writes and transition-helper calls replace
the set; loop bodies and ``try`` handlers drop narrowings for anything
the block writes.

Helper indirection is depth one, through the flow call graph: an
unguarded literal write inside an owner-class method (``_close``,
``promote_to_active``) is judged at each *call site* with the caller's
environment for the call receiver, so ``if self.state == HALF_OPEN:
self._close()`` is legal while an unconditional ``self._close()`` in a
success handler is not.  Forwarded writes (``vb.state = state`` with a
protocol-annotated parameter) resolve the target state per call site
with :func:`repro.flow.callgraph.map_call_args`.

Rule families (one finding check each):

* ``illegal-transition`` -- a guarded path still admits a source state
  with no declared edge to the written target.
* ``unguarded-transition`` -- a write whose target has forbidden
  in-edges executes with no guard at all (locally or at a call site).
* ``handoff-order`` -- within one function, ``order=`` states are
  touched out of declared sequence.
* ``transition-outside-owner`` -- a state write outside the owner
  class's defining module (the static choke-point analog of the
  sanitizer's write-ownership oracle).
* ``silent-transition`` (strict profiles only) -- a transition with no
  metrics/tracing/log emission in the enclosing function or its
  immediate callers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..flow.callgraph import CallGraph, map_call_args
from ..flow.project import FuncInfo, Project
from .declarations import ProtocolSpec
from .findings import ProtoFinding
from .inventory import ProtoInventory, TransitionSite, resolve_state

Env = dict[str, frozenset]

#: Metric-registry methods that count as an emission.
_EMIT_METHODS = frozenset({"inc", "dec", "observe", "timer", "set_gauge"})


def _safe_unparse(node: ast.expr) -> str | None:
    try:
        return ast.unparse(node)
    except Exception:
        return None


def _states(values) -> str:
    return "{" + ", ".join(sorted(values)) + "}"


def emits_observably(func: FuncInfo) -> bool:
    """Does this function record anything an operator can see -- a
    metrics inc/observe, a tracing event, or a structured log call?"""
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        text = _safe_unparse(node.func)
        if not text:
            continue
        head, _, method = text.rpartition(".")
        if method in _EMIT_METHODS and "metrics" in head:
            return True
        if "tracing." in text or method == "_log" or text == "_log":
            return True
    return False


@dataclass
class _Walk:
    """Per-function facts gathered by one walker pass."""

    site_env: list = field(default_factory=list)        #: (site, frozenset)
    call_env: dict = field(default_factory=dict)        #: id(call) -> Env
    events: list = field(default_factory=list)          #: (spec, state, line, col)


class Analysis:
    """Whole-program walker state shared across rule families."""

    def __init__(self, project: Project, graph: CallGraph,
                 specs: dict[str, ProtocolSpec],
                 inventory: ProtoInventory):
        self.project = project
        self.graph = graph
        self.specs = specs
        self.inventory = inventory
        #: id(call node) -> resolved target FuncInfo
        self.call_target: dict[int, FuncInfo] = {}
        #: target fqn -> [(caller FuncInfo, ast.Call, edge kind)]
        self.callers_of: dict[str,
                              list[tuple[FuncInfo, ast.Call, str]]] = {}
        for caller, call, target, kind in graph.call_sites:
            if kind in ("call", "method", "rpc"):
                if kind != "rpc":
                    self.call_target[id(call)] = target
                self.callers_of.setdefault(target.fqn, []).append(
                    (caller, call, kind))
        #: helper fqn -> {attr: frozenset(dsts) | None (unknown value)}
        self.helper_summary: dict[str, dict[str, frozenset | None]] = {}
        for site in inventory.sites:
            if site.kind == "init" or not site.receiver.startswith("self."):
                continue
            summary = self.helper_summary.setdefault(site.func, {})
            attr = site.binding.attr
            if site.dst is None or summary.get(attr, frozenset()) is None:
                summary[attr] = None
            else:
                summary[attr] = summary.get(attr, frozenset()) | {site.dst}
        self.site_env: list[tuple[TransitionSite, frozenset]] = []
        self.call_env: dict[int, Env] = {}
        self.events: dict[str, list] = {}
        self._emits_cache: dict[str, bool] = {}

    def run(self) -> None:
        for fqn in sorted(self.project.functions):
            func = self.project.functions[fqn]
            if not isinstance(getattr(func.node, "body", None), list):
                continue    # lambdas carry an expression body

            walk = _Walk()
            _FunctionWalker(self, func, walk).run()
            self.site_env.extend(walk.site_env)
            self.call_env.update(walk.call_env)
            if walk.events:
                self.events[fqn] = walk.events

    # -- shared lookups ------------------------------------------------------------

    def path_of(self, func: FuncInfo) -> str:
        module = self.project.modules.get(func.module)
        return module.path if module is not None else func.module

    def emits(self, fqn: str) -> bool:
        cached = self._emits_cache.get(fqn)
        if cached is None:
            func = self.project.functions.get(fqn)
            cached = bool(func is not None and emits_observably(func))
            self._emits_cache[fqn] = cached
        return cached


class _FunctionWalker:
    def __init__(self, analysis: Analysis, func: FuncInfo, walk: _Walk):
        self.a = analysis
        self.func = func
        self.walk = walk

    def run(self) -> None:
        self._block(list(self.func.node.body), {})

    # -- statement dispatch --------------------------------------------------------

    def _block(self, stmts: list, env: Env) -> tuple[Env, bool]:
        env = dict(env)
        for stmt in stmts:
            env, terminated = self._stmt(stmt, env)
            if terminated:
                return env, True
        return env, False

    def _stmt(self, stmt: ast.stmt, env: Env) -> tuple[Env, bool]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._scan_exprs(stmt, env)
            return env, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return env, True
        if isinstance(stmt, ast.If):
            return self._if(stmt, env)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_exprs(item, env)
            return self._block(stmt.body, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env, False
        return self._leaf(stmt, env)

    def _leaf(self, stmt: ast.stmt, env: Env) -> tuple[Env, bool]:
        self._scan_exprs(stmt, env)
        site = self.a.inventory.site_by_node.get(id(stmt))
        if site is not None:
            current = env.get(site.receiver, site.binding.spec.states)
            if site.kind != "init":
                self.walk.site_env.append((site, current))
            if site.dst is not None:
                env[site.receiver] = frozenset({site.dst})
                if site.kind != "init":
                    self._event(site.binding.spec, site.dst, stmt)
            else:
                env.pop(site.receiver, None)
            return env, False
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._assign_effect(stmt, env)
        return env, False

    # -- expression effects --------------------------------------------------------

    def _scan_exprs(self, node: ast.AST, env: Env) -> None:
        """Record env snapshots at call sites, handoff events for
        literal state arguments, and helper-call state transfer."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            self.walk.call_env[id(sub)] = dict(env)
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                resolved = resolve_state(arg, self.a.specs)
                if resolved is not None:
                    self._event(resolved[0], resolved[1], arg)
            self._apply_helper(sub, env)

    def _apply_helper(self, call: ast.Call, env: Env) -> None:
        """A call into a method with literal self-writes moves the call
        receiver to the written state(s)."""
        target = self.a.call_target.get(id(call))
        if target is None or not isinstance(call.func, ast.Attribute):
            return
        summary = self.a.helper_summary.get(target.fqn)
        if not summary:
            return
        receiver = _safe_unparse(call.func.value)
        if receiver is None:
            return
        for attr, dsts in summary.items():
            key = f"{receiver}.{attr}"
            if dsts is None:
                env.pop(key, None)
            else:
                env[key] = frozenset(dsts)

    def _assign_effect(self, stmt: ast.stmt, env: Env) -> None:
        """Creator transfer: ``x = make(..., State.PENDING)`` leaves the
        bound variable in the literal state for the matching binding."""
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        literals = [
            resolved
            for arg in list(value.args) + [kw.value for kw in value.keywords]
            if (resolved := resolve_state(arg, self.a.specs)) is not None
        ]
        if len(literals) != 1:
            return
        spec, state = literals[0]
        bindings = [b for b in self.a.inventory.bindings if b.spec is spec]
        if len(bindings) != 1:
            return
        env[f"{targets[0].id}.{bindings[0].attr}"] = frozenset({state})

    def _event(self, spec: ProtocolSpec, state: str, node: ast.AST) -> None:
        if spec.order and state in spec.order:
            self.walk.events.append(
                (spec, state, getattr(node, "lineno", self.func.line),
                 getattr(node, "col_offset", 0) + 1))

    # -- control flow --------------------------------------------------------------

    def _if(self, stmt: ast.If, env: Env) -> tuple[Env, bool]:
        self._scan_exprs(stmt.test, env)
        then_env, else_env = dict(env), dict(env)
        self._narrow(stmt.test, then_env, True)
        self._narrow(stmt.test, else_env, False)
        t_env, t_term = self._block(stmt.body, then_env)
        e_env, e_term = self._block(stmt.orelse, else_env)
        if t_term and e_term:
            return env, True
        if t_term:
            return e_env, False
        if e_term:
            return t_env, False
        return _merge(t_env, e_env), False

    def _loop(self, stmt, env: Env) -> tuple[Env, bool]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_exprs(stmt.iter, env)
        else:
            self._scan_exprs(stmt.test, env)
        body_env = _strip(env, self._written_keys(stmt.body))
        self._block(stmt.body, body_env)
        if stmt.orelse:
            self._block(stmt.orelse, body_env)
        return dict(body_env), False

    def _try(self, stmt: ast.Try, env: Env) -> tuple[Env, bool]:
        body_env, body_term = self._block(stmt.body, env)
        if stmt.orelse and not body_term:
            body_env, body_term = self._block(stmt.orelse, body_env)
        safe = _strip(env, self._written_keys(stmt.body))
        exits = [] if body_term else [body_env]
        for handler in stmt.handlers:
            h_env, h_term = self._block(handler.body, dict(safe))
            if not h_term:
                exits.append(h_env)
        if exits:
            out, terminated = exits[0], False
            for other in exits[1:]:
                out = _merge(out, other)
        else:
            out, terminated = dict(safe), True
        if stmt.finalbody:
            out, final_term = self._block(stmt.finalbody, out)
            terminated = terminated or final_term
        return out, terminated

    def _written_keys(self, stmts: list) -> set[str]:
        keys: set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        text = _safe_unparse(target)
                        if text:
                            keys.add(text)
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    target = self.a.call_target.get(id(node))
                    summary = self.a.helper_summary.get(target.fqn) \
                        if target is not None else None
                    if summary:
                        receiver = _safe_unparse(node.func.value)
                        if receiver:
                            keys.update(f"{receiver}.{attr}"
                                        for attr in summary)
        return keys

    # -- guard narrowing -----------------------------------------------------------

    def _narrow(self, test: ast.expr, env: Env, truth: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._narrow(test.operand, env, not truth)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and truth:
                for value in test.values:
                    self._narrow(value, env, True)
            elif isinstance(test.op, ast.Or) and not truth:
                for value in test.values:
                    self._narrow(value, env, False)
            return
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
            for key_expr, state_expr in ((left, right), (right, left)):
                resolved = resolve_state(state_expr, self.a.specs)
                if resolved is None:
                    continue
                key = _safe_unparse(key_expr)
                if key is None:
                    continue
                spec, state = resolved
                current = env.get(key, spec.states)
                positive = isinstance(op, (ast.Is, ast.Eq)) == truth
                env[key] = (current & {state}) if positive \
                    else (current - {state})
                return
        elif isinstance(op, (ast.In, ast.NotIn)) \
                and isinstance(right, (ast.Tuple, ast.List, ast.Set)):
            member_states: set[str] = set()
            spec = None
            for elt in right.elts:
                resolved = resolve_state(elt, self.a.specs)
                if resolved is None:
                    return
                spec, state = resolved
                member_states.add(state)
            key = _safe_unparse(left)
            if spec is None or key is None:
                return
            current = env.get(key, spec.states)
            positive = isinstance(op, ast.In) == truth
            env[key] = frozenset(current & member_states) if positive \
                else frozenset(current - member_states)


def _merge(a: Env, b: Env) -> Env:
    return {key: a[key] | b[key] for key in a.keys() & b.keys()}


def _strip(env: Env, written: set[str]) -> Env:
    return {
        key: states for key, states in env.items()
        if key not in written
        and not any(key.startswith(f"{w}.") for w in written)
    }


# -- rule families -----------------------------------------------------------------


def check_transitions(analysis: Analysis,
                      findings: list[ProtoFinding]) -> None:
    seen: set[tuple] = set()

    def add(check: str, path: str, line: int, col: int, message: str) -> None:
        key = (check, path, line, col, message)
        if key not in seen:
            seen.add(key)
            findings.append(ProtoFinding(check, path, line, col, message))

    for site, sources in analysis.site_env:
        spec = site.binding.spec
        if site.kind == "write" and site.dst is not None:
            _check_literal(analysis, site, sources, add)
        elif site.kind == "forward":
            _check_forward(analysis, site, sources, add)


def _caller_sources(analysis: Analysis, site: TransitionSite,
                    call: ast.Call) -> frozenset:
    """The caller's environment for the helper call's receiver."""
    spec = site.binding.spec
    env = analysis.call_env.get(id(call))
    if env is None or not isinstance(call.func, ast.Attribute):
        return spec.states
    receiver = _safe_unparse(call.func.value)
    if receiver is None:
        return spec.states
    return env.get(f"{receiver}.{site.binding.attr}", spec.states)


def _check_literal(analysis: Analysis, site: TransitionSite,
                   sources: frozenset, add) -> None:
    spec = site.binding.spec
    forbidden = frozenset(spec.forbidden_sources(site.dst))
    bad = sources & forbidden
    if not bad:
        return
    if sources != spec.states:
        add("illegal-transition", site.path, site.line, site.col,
            f"{spec.name}: guarded path still admits "
            f"{_states(bad)}->{site.dst}, which is not a declared "
            f"transition")
        return
    # Unguarded locally: judge each call site with the caller's
    # environment (depth-1 helper attribution through the call graph).
    callers = analysis.callers_of.get(site.func, []) \
        if site.receiver.startswith("self.") else []
    if not callers:
        add("unguarded-transition", site.path, site.line, site.col,
            f"{spec.name}: unguarded write of {site.dst}; not a declared "
            f"transition from {_states(forbidden)} -- guard on the "
            f"current state first")
        return
    helper = site.func.rsplit(".", 1)[-1]
    for caller, call, _kind in callers:
        caller_sources = _caller_sources(analysis, site, call)
        caller_bad = caller_sources & forbidden
        if not caller_bad:
            continue
        path = analysis.path_of(caller)
        line, col = call.lineno, call.col_offset + 1
        if caller_sources != spec.states:
            add("illegal-transition", path, line, col,
                f"{spec.name}: call into {helper}() may run "
                f"{_states(caller_bad)}->{site.dst}, which is not a "
                f"declared transition")
        else:
            add("unguarded-transition", path, line, col,
                f"{spec.name}: unguarded call into {helper}() writes "
                f"{site.dst}; not a declared transition from "
                f"{_states(forbidden)}")


def _check_forward(analysis: Analysis, site: TransitionSite,
                   sources: frozenset, add) -> None:
    spec = site.binding.spec
    func = analysis.project.functions.get(site.func)
    if func is None:
        return
    for caller, call, kind in analysis.callers_of.get(site.func, []):
        if kind == "rpc":
            continue    # fabric args do not map onto handler params
        bound = map_call_args(call, func)
        arg = bound.get(site.param)
        if arg is None:
            continue
        resolved = resolve_state(arg, analysis.specs)
        if resolved is None or resolved[0] is not spec:
            continue
        dst = resolved[1]
        forbidden = frozenset(spec.forbidden_sources(dst))
        bad = sources & forbidden
        if not bad:
            continue
        path = analysis.path_of(caller)
        line, col = call.lineno, call.col_offset + 1
        short = site.func.rsplit(".", 1)[-1]
        if sources != spec.states:
            add("illegal-transition", path, line, col,
                f"{spec.name}: {dst} forwarded into {short}() may run "
                f"{_states(bad)}->{dst}, which is not a declared "
                f"transition (write at {site.path}:{site.line})")
        else:
            add("unguarded-transition", path, line, col,
                f"{spec.name}: {dst} forwarded into {short}() reaches an "
                f"unguarded write at {site.path}:{site.line}; not a "
                f"declared transition from {_states(forbidden)}")


def check_handoff(analysis: Analysis,
                  findings: list[ProtoFinding]) -> None:
    for fqn in sorted(analysis.events):
        func = analysis.project.functions.get(fqn)
        if func is None:
            continue
        path = analysis.path_of(func)
        last: dict[str, int] = {}
        for spec, state, line, col in analysis.events[fqn]:
            index = spec.order.index(state)
            previous = last.get(spec.name)
            if previous is not None and index < previous and index != 0:
                findings.append(ProtoFinding(
                    "handoff-order", path, line, col,
                    f"{spec.name}: {state} touched after "
                    f"{spec.order[previous]}; the declared handoff order "
                    f"is {' -> '.join(spec.order)}"))
            last[spec.name] = index


def check_ownership(analysis: Analysis,
                    findings: list[ProtoFinding]) -> None:
    for site, _sources in analysis.site_env:
        binding = site.binding
        if site.module == binding.owner_module:
            continue
        owner = binding.owner.rsplit(".", 1)[-1]
        findings.append(ProtoFinding(
            "transition-outside-owner", site.path, site.line, site.col,
            f"{binding.spec.name}: {owner}.{binding.attr} written outside "
            f"its owner module {binding.owner_module}; route the "
            f"transition through an owner-class method"))


def check_silent(analysis: Analysis,
                 findings: list[ProtoFinding]) -> None:
    for site, _sources in analysis.site_env:
        if analysis.emits(site.func):
            continue
        callers = analysis.callers_of.get(site.func, [])
        if callers and all(analysis.emits(caller.fqn)
                           for caller, _call, _kind in callers):
            continue
        short = site.func.rsplit(".", 1)[-1]
        findings.append(ProtoFinding(
            "silent-transition", site.path, site.line, site.col,
            f"{site.binding.spec.name}: transition in {short}() emits no "
            f"metrics/tracing/log signal, and neither do all of its "
            f"callers -- state changes must be observable"))
