"""repro-proto: static state-machine & protocol conformance analysis.

The sixth analysis layer on the shared :mod:`repro.analysis` harness.
Classes declare their lifecycle with ``@protocol`` / ``__protocol__``
(:mod:`repro.common.protomodel`); this package reads those declarations
off the AST, inventories every state-field write through the
:mod:`repro.flow` call graph, and enforces that each transition is
declared, guarded, ordered, owner-local, and observable.
"""

from .analyze import ALL_CHECKS, ProtoResult, analyze
from .cli import main
from .declarations import ProtocolSpec, collect_protocols
from .findings import ProtoFinding
from .inventory import Binding, ProtoInventory, TransitionSite

__all__ = [
    "ALL_CHECKS",
    "Binding",
    "ProtoFinding",
    "ProtoInventory",
    "ProtoResult",
    "ProtocolSpec",
    "TransitionSite",
    "analyze",
    "collect_protocols",
    "main",
]
