"""Orchestration: declarations + inventory -> the five rule families."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flow.callgraph import CallGraph, build_callgraph
from ..flow.project import Project
from .declarations import ProtocolSpec, collect_protocols
from .findings import ProtoFinding
from .inventory import ProtoInventory
from .rules import (
    Analysis,
    check_handoff,
    check_ownership,
    check_silent,
    check_transitions,
)

#: Every check the CLI can select -- one name per rule family.
ALL_CHECKS = (
    "illegal-transition",
    "unguarded-transition",
    "handoff-order",
    "transition-outside-owner",
    "silent-transition",
)


@dataclass
class ProtoResult:
    findings: list[ProtoFinding] = field(default_factory=list)
    protocols: dict[str, ProtocolSpec] = field(default_factory=dict)
    inventory: ProtoInventory | None = None


def analyze(project: Project, graph: CallGraph | None = None,
            selected: frozenset[str] | None = None) -> ProtoResult:
    """Run the protocol-conformance analysis over one project index."""
    if graph is None:
        graph = build_callgraph(project)
    chosen = frozenset(ALL_CHECKS) if selected is None else selected
    protocols = collect_protocols(project)
    inventory = ProtoInventory(project, protocols)
    result = ProtoResult(protocols=protocols, inventory=inventory)

    analysis = Analysis(project, graph, protocols, inventory)
    analysis.run()

    if chosen & {"illegal-transition", "unguarded-transition"}:
        staged: list[ProtoFinding] = []
        check_transitions(analysis, staged)
        result.findings.extend(f for f in staged if f.check in chosen)
    if "handoff-order" in chosen:
        check_handoff(analysis, result.findings)
    if "transition-outside-owner" in chosen:
        check_ownership(analysis, result.findings)
    if "silent-transition" in chosen:
        check_silent(analysis, result.findings)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return result
