"""Command line front end: ``python -m repro.proto [paths...]``.

Exit status mirrors repro-lint/sanitize/flow/hotpath/bounds: 0 clean,
1 findings, 2 usage errors -- one contract for every gate in CI.
Suppressions are ``# repro-proto: disable=<check>`` (or
``disable-next=``) with a short justification expected on the same or
neighboring line; a transition that is genuinely legal should instead
be *declared* on the ``@protocol`` decorator
(:mod:`repro.common.protomodel`), which documents the state machine at
the definition instead of silencing one site.

``--report protocols`` prints every declared protocol with its field
bindings and inventoried transition sites (init/write/forward, with
the enclosing function) and exits 0.
"""

from __future__ import annotations

import argparse
import sys

from ..analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FORMATS,
    PROFILES,
    UsageError,
    discover_program,
    keep_finding,
    print_finding,
    report_parse_errors,
    select_checks,
    suppressions_by_path,
)
from ..flow.callgraph import build_callgraph
from ..flow.project import Project
from .analyze import ALL_CHECKS, analyze

TOOL = "repro-proto"

#: Checks the relaxed profile (fixture trees, harness code analyzed
#: without --profile strict) does not enforce: a demo script need not
#: wire metrics into every state flip.
RELAXED_EXEMPT = frozenset({"silent-transition"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.proto",
        description="Whole-program state-machine conformance analysis: "
                    "reads @protocol declarations, inventories every "
                    "state-field write, and checks that each transition "
                    "is declared, guarded, ordered, owner-local, and "
                    "observable.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze as one program "
             "(default: src/repro)",
    )
    parser.add_argument(
        "--check", metavar="NAME[,NAME...]", default=None,
        help=f"run only these checks (of: {', '.join(ALL_CHECKS)})",
    )
    parser.add_argument(
        "--profile", choices=("auto",) + PROFILES, default="auto",
        help="auto (default) is strict under src/repro and relaxed "
             "elsewhere; relaxed does not enforce silent-transition",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="output_format",
        help="text (default) prints path:line:col lines; github emits "
             "::error workflow commands that become inline PR annotations",
    )
    parser.add_argument(
        "--report", choices=("protocols",), default=None,
        help="print declared protocols with bindings and transition "
             "sites instead of running the checks (informational; "
             "always exits 0)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    return parser


def _print_protocols(result) -> None:
    inventory = result.inventory
    for name in sorted(result.protocols):
        spec = result.protocols[name]
        print(f"{spec.module}:{spec.line}: protocol {name} ({spec.kind}) "
              f"states={len(spec.states)} "
              f"transitions={len(spec.transitions)}"
              + (f" order={' -> '.join(spec.order)}" if spec.order else ""))
        for binding in inventory.bindings:
            if binding.spec is not spec:
                continue
            owner = binding.owner.rsplit(".", 1)[-1]
            print(f"  binding {owner}.{binding.attr} "
                  f"(module {binding.owner_module})")
            for site in inventory.sites:
                if site.binding is not binding:
                    continue
                dst = site.dst if site.dst is not None else \
                    (f"<param {site.param}>" if site.param else "<dynamic>")
                print(f"    {site.kind:<7} {site.path}:{site.line} "
                      f"{site.receiver} = {dst} in {site.func}")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        checks = frozenset(select_checks(args.check, ALL_CHECKS))
    except UsageError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    files = discover_program(args.paths, TOOL)
    if files is None:
        return EXIT_USAGE
    project = Project.build(files)
    if project.parse_errors:
        report_parse_errors(project.parse_errors, TOOL)
        return EXIT_USAGE
    graph = build_callgraph(project)
    result = analyze(project, graph, checks)

    if args.report == "protocols":
        _print_protocols(result)
        if not args.quiet:
            inventory = result.inventory
            print(f"{TOOL}: {len(result.protocols)} protocols, "
                  f"{len(inventory.bindings)} bindings, "
                  f"{len(inventory.sites)} transition sites "
                  f"(informational; not a gate)")
        return EXIT_CLEAN

    suppressions = suppressions_by_path(project.modules.values(), TOOL)
    findings = [f for f in result.findings
                if keep_finding(f, suppressions, args.profile,
                                RELAXED_EXEMPT)]
    for finding in findings:
        print_finding(finding, TOOL, args.output_format)
    if not args.quiet:
        inventory = result.inventory
        print(
            f"{TOOL}: {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'} in {len(files)} files "
            f"({len(result.protocols)} protocols, "
            f"{len(inventory.bindings)} bindings, "
            f"{len(inventory.sites)} transition sites)"
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
