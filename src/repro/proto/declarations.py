"""Static readers for the ``@protocol`` / ``__protocol__`` contract.

Mirrors how :mod:`repro.bounds.declarations` reads ``@bounded`` /
``__bounds__``: by name, off the AST, so fixture trees (and code that
stubs :mod:`repro.common.protomodel`) analyze without being importable.

Two declaration forms (see :mod:`repro.common.protomodel` for the
runtime side):

* ``@protocol("A->B", ..., field=..., order=(...))`` on a class;
* ``__protocol__ = ("field", "A->B", ...)`` in a class body -- on an
  enum the field element is omitted and every element is a transition.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..flow.project import ClassInfo, Project

#: Base-class names that mark a protocol class as an enum (states are
#: the members; fields are bound by value, not by owning class).
_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


@dataclass(frozen=True)
class ProtocolSpec:
    """One declared state machine, read off the AST."""

    name: str                       #: protocol (class) short name
    fqn: str                        #: declaring class FQN
    module: str
    line: int
    kind: str                       #: "enum" | "field"
    states: frozenset[str]
    transitions: frozenset[tuple[str, str]]
    order: tuple[str, ...]
    field: str | None               #: state attribute for kind="field"

    def allows(self, src: str, dst: str) -> bool:
        """Self-transitions are implicit no-ops; everything else must
        be a declared pair."""
        return src == dst or (src, dst) in self.transitions

    def forbidden_sources(self, dst: str) -> list[str]:
        """States from which writing ``dst`` is illegal."""
        return sorted(
            s for s in self.states if s != dst and (s, dst) not in self.transitions
        )


def _decorator_call(dec: ast.expr) -> ast.Call | None:
    if not isinstance(dec, ast.Call):
        return None
    node = dec.func
    name = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else None)
    return dec if name == "protocol" else None


def _is_enum(klass: ClassInfo) -> bool:
    return any(
        base.rsplit(".", 1)[-1] in _ENUM_BASES for base in klass.bases
    )


def _enum_members(klass: ClassInfo) -> frozenset[str]:
    members = set()
    for stmt in klass.node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if not name.startswith("_"):
                members.add(name)
    return frozenset(members)


def _parse_pairs(raw: list[str]) -> frozenset[tuple[str, str]]:
    pairs = set()
    for item in raw:
        src, sep, dst = item.partition("->")
        if sep and src.strip() and dst.strip():
            pairs.add((src.strip(), dst.strip()))
    return pairs


def _str_constants(exprs: list[ast.expr]) -> list[str]:
    return [e.value for e in exprs
            if isinstance(e, ast.Constant) and isinstance(e.value, str)]


def _from_decorator(klass: ClassInfo, module_path: str) -> ProtocolSpec | None:
    for dec in klass.decorators:
        call = _decorator_call(dec)
        if call is None:
            continue
        raw = _str_constants(call.args)
        field = None
        order: tuple[str, ...] = ()
        for kw in call.keywords:
            if kw.arg == "field" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                field = kw.value.value
            elif kw.arg == "order" and isinstance(kw.value, (ast.Tuple, ast.List)):
                order = tuple(_str_constants(list(kw.value.elts)))
        return _build(klass, module_path, raw, field, order)
    return None


def _from_tuple(klass: ClassInfo, module_path: str) -> ProtocolSpec | None:
    for stmt in klass.node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == "__protocol__" \
                and isinstance(stmt.value, (ast.Tuple, ast.List)):
            items = _str_constants(list(stmt.value.elts))
            field = None
            if items and "->" not in items[0]:
                field = items[0]
                items = items[1:]
            return _build(klass, module_path, items, field, ())
    return None


def _build(klass: ClassInfo, module_path: str, raw: list[str],
           field: str | None, order: tuple[str, ...]) -> ProtocolSpec | None:
    pairs = _parse_pairs(raw)
    if not pairs:
        return None
    enum = _is_enum(klass)
    if enum:
        states = _enum_members(klass)
        field = None
    else:
        states = frozenset(name for pair in pairs for name in pair)
        if field is None:
            return None     # a non-enum protocol must name its field
    return ProtocolSpec(
        name=klass.name, fqn=klass.fqn, module=klass.module,
        line=klass.line, kind="enum" if enum else "field",
        states=states, transitions=frozenset(pairs),
        order=order, field=field,
    )


def collect_protocols(project: Project) -> dict[str, ProtocolSpec]:
    """Every declared protocol in the project, by short class name."""
    specs: dict[str, ProtocolSpec] = {}
    for klass in project.classes.values():
        module = project.modules.get(klass.module)
        path = module.path if module else ""
        spec = _from_decorator(klass, path) or _from_tuple(klass, path)
        if spec is not None:
            specs[spec.name] = spec
    return specs
