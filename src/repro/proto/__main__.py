"""``python -m repro.proto`` entry point."""

import sys

from .cli import main

sys.exit(main())
