"""Protocol bindings and the transition-site inventory.

The analyzer needs the same whole-program picture for every rule
family: which (class, attribute) pairs carry a protocol's state, and
every assignment that stores a state into one of them.  Mirrors the
shallow receiver discipline of :mod:`repro.bounds.containers`: a write
on ``self.X`` binds to the enclosing class's binding for ``X``; a write
on any other receiver (``vb.state = state`` from the engine) counts
only when the *value* is recognizable -- a literal protocol state, a
state-constant name, or a parameter annotated with the protocol class.
That keeps unrelated same-named fields (``meta.state = "ready"``) out
of the inventory instead of erring toward false positives.

Site kinds:

``init``
    The owner class's ``__init__`` establishing the field.  Exempt from
    the transition rules (there is no previous state yet), but listed
    in the coverage report.
``write``
    A store with a literal target state (``self.phase = State.CLOSED``).
``forward``
    A store of a protocol-annotated parameter (``vb.state = state``);
    the target state is resolved per call site through the flow call
    graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..flow.project import FuncInfo, Project
from .declarations import ProtocolSpec


@dataclass(frozen=True)
class Binding:
    """One (owner class, attribute) carrying a protocol's state."""

    owner: str          #: owning class fqn
    owner_module: str
    attr: str
    spec: ProtocolSpec


@dataclass(frozen=True)
class TransitionSite:
    """One assignment that stores a protocol state."""

    binding: Binding
    func: str           #: enclosing function fqn
    module: str
    path: str
    line: int
    col: int
    kind: str           #: "init" | "write" | "forward"
    dst: str | None     #: literal target state when known
    param: str | None   #: forwarded parameter name for kind="forward"
    receiver: str       #: receiver key, e.g. "vb.state"


def resolve_state(expr: ast.expr,
                  specs: dict[str, ProtocolSpec]) -> tuple[ProtocolSpec, str] | None:
    """(spec, state) when ``expr`` denotes a protocol state literally:
    an enum member access (``State.CLOSED``) or, for field protocols, a
    state-constant name (``OPEN``)."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        spec = specs.get(expr.value.id)
        if spec is not None and expr.attr in spec.states:
            return spec, expr.attr
        return None
    if isinstance(expr, ast.Name):
        hits = [spec for spec in specs.values()
                if spec.kind == "field" and expr.id in spec.states]
        if len(hits) == 1:
            return hits[0], expr.id
    return None


def annotation_spec(ann: ast.expr | None,
                    specs: dict[str, ProtocolSpec]) -> ProtocolSpec | None:
    """The protocol a parameter/attribute annotation names, if any."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        name = ann.value.split("|")[0].strip()
    else:
        node = ann
        if isinstance(node, ast.Subscript):    # Optional[State] and kin
            node = node.slice
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            node = node.left                   # State | None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
    return specs.get(name.rsplit(".", 1)[-1])


def local_walk(root: ast.AST):
    """Walk ``root``'s statements without descending into nested
    function or class definitions (those are indexed separately)."""
    body = getattr(root, "body", None)
    if not isinstance(body, list):    # lambdas carry an expression body
        return
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _single_attr_target(stmt: ast.stmt) -> tuple[ast.Attribute, ast.expr] | None:
    """(target, value) for ``<expr>.<attr> = <value>`` statements."""
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        targets, value = [stmt.target], stmt.value
    else:
        return None
    if value is None or len(targets) != 1 \
            or not isinstance(targets[0], ast.Attribute):
        return None
    return targets[0], value


class ProtoInventory:
    """The project-wide protocol field and transition-site index."""

    def __init__(self, project: Project, specs: dict[str, ProtocolSpec]):
        self.project = project
        self.specs = specs
        self.bindings: list[Binding] = []
        #: attribute name -> bindings carrying it (non-self receivers)
        self.by_attr: dict[str, list[Binding]] = {}
        self.sites: list[TransitionSite] = []
        #: id(assign stmt) -> site, for the path walker in rules.py
        self.site_by_node: dict[int, TransitionSite] = {}
        self._collect_bindings()
        self._collect_sites()

    # -- bindings ------------------------------------------------------------------

    def _bind(self, owner: str, owner_module: str, attr: str,
              spec: ProtocolSpec) -> None:
        if any(b.owner == owner and b.attr == attr for b in self.bindings):
            return
        binding = Binding(owner=owner, owner_module=owner_module,
                         attr=attr, spec=spec)
        self.bindings.append(binding)
        self.by_attr.setdefault(attr, []).append(binding)

    def _collect_bindings(self) -> None:
        for spec in self.specs.values():
            if spec.kind == "field" and spec.field:
                self._bind(spec.fqn, spec.module, spec.field, spec)
        for klass in self.project.classes.values():
            for attr, ann in klass.annotations.items():
                spec = annotation_spec(ann, self.specs)
                if spec is not None and spec.kind == "enum":
                    self._bind(klass.fqn, klass.module, attr, spec)
            init = klass.methods.get("__init__")
            if init is None:
                continue
            for stmt in local_walk(init.node):
                found = _single_attr_target(stmt)
                if found is None:
                    continue
                target, value = found
                if not (isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                spec = None
                resolved = resolve_state(value, self.specs)
                if resolved is not None and resolved[0].kind == "enum":
                    spec = resolved[0]
                elif isinstance(value, ast.Name):
                    candidate = annotation_spec(
                        init.annotations.get(value.id), self.specs)
                    if candidate is not None and candidate.kind == "enum":
                        spec = candidate
                if spec is not None:
                    self._bind(klass.fqn, klass.module, target.attr, spec)

    # -- sites ---------------------------------------------------------------------

    def _collect_sites(self) -> None:
        for func in list(self.project.functions.values()):
            if getattr(func.node, "body", None) is None:
                continue
            module = self.project.modules.get(func.module)
            path = module.path if module is not None else func.module
            for stmt in local_walk(func.node):
                found = _single_attr_target(stmt)
                if found is None:
                    continue
                site = self._site_for(stmt, found[0], found[1], func, path)
                if site is not None:
                    self.sites.append(site)
                    self.site_by_node[id(stmt)] = site

    def _site_for(self, stmt: ast.stmt, target: ast.Attribute,
                  value: ast.expr, func: FuncInfo,
                  path: str) -> TransitionSite | None:
        candidates = self.by_attr.get(target.attr)
        if not candidates:
            return None
        is_self = isinstance(target.value, ast.Name) \
            and target.value.id == "self"
        resolved = resolve_state(value, self.specs)
        param_spec = None
        if isinstance(value, ast.Name) and value.id in func.params:
            param_spec = annotation_spec(
                func.annotations.get(value.id), self.specs)

        if is_self:
            binding = next(
                (b for b in candidates if b.owner == func.cls), None)
            if binding is None:
                return None
            kind, dst, param = "write", None, None
            if resolved is not None and resolved[0] is binding.spec:
                dst = resolved[1]
            elif param_spec is binding.spec and param_spec is not None:
                kind, param = "forward", value.id
            if func.name == "__init__":
                kind = "init"
        else:
            # Non-self receivers bind only through a recognizable value.
            spec = dst = param = None
            kind = "write"
            if resolved is not None:
                spec, dst = resolved
            elif param_spec is not None:
                spec, kind, param = param_spec, "forward", value.id
            if spec is None:
                return None
            matches = [b for b in candidates if b.spec is spec]
            if len(matches) != 1:
                return None
            binding = matches[0]

        try:
            receiver = f"{ast.unparse(target.value)}.{target.attr}"
        except Exception:
            return None
        return TransitionSite(
            binding=binding, func=func.fqn, module=func.module, path=path,
            line=stmt.lineno, col=stmt.col_offset + 1,
            kind=kind, dst=dst, param=param, receiver=receiver,
        )
