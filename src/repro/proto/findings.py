"""Finding record shared by every repro-proto rule family."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtoFinding:
    check: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.check}: " \
               f"{self.message}"
