"""Exit codes, suppressions, discovery and profiles for analysis CLIs.

Everything here used to live in :mod:`repro.lint.engine` and was grown
in place by repro-sanitize and repro-flow; it is tool-agnostic, so it
moved here.  The lint engine re-exports the old names for callers that
still import them from there.

The second half of this module is the shared CLI scaffold: check
selection (:func:`select_checks`), the suppression + relaxed-profile
filter (:func:`keep_finding`), and finding rendering
(:func:`print_finding`).  repro-flow, repro-hotpath and repro-bounds
each used to carry a private copy of these; any finding-shaped record
(``check``/``path``/``line``/``col``/``message`` plus ``format()``)
works with them.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable

from .output import github_annotation

#: The shared CLI exit contract: CI gates on these next to ruff.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

PROFILES = ("strict", "relaxed")

#: Compiled suppression patterns, one per tool tag (``repro-lint``,
#: ``repro-flow``, ...).  Same-line ``disable=`` covers that line;
#: ``disable-next=`` on the line before covers multi-line statements.
_SUPPRESS_RES: dict[str, re.Pattern[str]] = {}


def _suppress_re(tool: str) -> re.Pattern[str]:
    pattern = _SUPPRESS_RES.get(tool)
    if pattern is None:
        pattern = re.compile(
            r"#\s*" + re.escape(tool)
            + r":\s*(disable|disable-next)\s*=\s*([a-z0-9_,\- ]+)"
        )
        _SUPPRESS_RES[tool] = pattern
    return pattern


def parse_suppressions(source_lines: list[str],
                       tool: str = "repro-lint") -> dict[int, set[str]]:
    """Map line number -> names disabled on that line ("all" disables
    everything the tool checks)."""
    suppressed_lines: dict[int, set[str]] = {}
    matcher = _suppress_re(tool)
    for index, line in enumerate(source_lines, start=1):
        match = matcher.search(line)
        if match is None:
            continue
        kind, names = match.groups()
        target = index + 1 if kind == "disable-next" else index
        names_set = {name.strip() for name in names.split(",") if name.strip()}
        suppressed_lines.setdefault(target, set()).update(names_set)
    return suppressed_lines


def suppressed(name: str, line: int,
               suppressions: dict[int, set[str]]) -> bool:
    disabled = suppressions.get(line, set())
    return name in disabled or "all" in disabled


def module_name_for(path: Path) -> str:
    """Dotted module path for a file: everything from the ``repro``
    package component down; bare stem for scripts outside the package."""
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts[:-1]:
        package_parts = parts[parts.index("repro"):-1]
        if name == "__init__":
            return ".".join(package_parts)
        return ".".join(package_parts + [name])
    return name


def discover(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def profile_for(path: Path, requested: str = "auto") -> str:
    """``auto`` resolves per file: strict inside the ``repro`` package
    tree (``src/repro``), relaxed for harness code outside it."""
    if requested != "auto":
        return requested
    parts = path.parts
    for index, part in enumerate(parts[:-1]):
        if part == "src" and index + 1 < len(parts) and parts[index + 1] == "repro":
            return "strict"
    return "relaxed"


class UsageError(ValueError):
    """A bad command line (unknown check, empty path set): exit 2."""


def select_checks(arg: str | None, known: Iterable[str],
                  label: str = "check") -> tuple[str, ...]:
    """Parse a ``--check NAME[,NAME...]`` argument against the tool's
    check vocabulary; ``None`` selects everything."""
    known = tuple(known)
    if arg is None:
        return known
    names = tuple(name.strip() for name in arg.split(",") if name.strip())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise UsageError(
            f"unknown {label} {', '.join(unknown)} "
            f"(choose from {', '.join(known)})"
        )
    return names


def discover_program(paths: Iterable[str | Path],
                     tool: str) -> list[Path] | None:
    """Discover the files a whole-program CLI run covers; prints the
    usage error and returns None when nothing matches."""
    files = discover(paths)
    if not files:
        print(f"{tool}: no Python files under {list(paths)}",
              file=sys.stderr)
        return None
    return files


def report_parse_errors(parse_errors, tool: str) -> None:
    """Print a project's ``(path, line, message)`` parse failures the
    way every whole-program CLI does before exiting 2."""
    for path, line, message in parse_errors:
        print(f"{tool}: {path}:{line}: {message}", file=sys.stderr)


def keep_finding(finding, suppressions_by_path: dict[str, dict],
                 requested: str,
                 relaxed_exempt: frozenset[str] = frozenset()) -> bool:
    """The shared finding filter: per-line suppressions first, then the
    tool's relaxed-profile exemptions for files resolving to relaxed."""
    if suppressed(finding.check, finding.line,
                  suppressions_by_path.get(finding.path, {})):
        return False
    if relaxed_exempt and finding.check in relaxed_exempt \
            and profile_for(Path(finding.path), requested) == "relaxed":
        return False
    return True


def suppressions_by_path(modules, tool: str) -> dict[str, dict]:
    """Per-path suppression tables for one tool tag over an iterable of
    module records carrying ``path`` and ``source_lines``."""
    return {
        module.path: parse_suppressions(module.source_lines, tool)
        for module in modules
    }


def print_finding(finding, tool: str, output_format: str) -> None:
    """Render one finding in the CLI's selected format."""
    if output_format == "github":
        print(github_annotation(
            finding.message, title=f"{tool}: {finding.check}",
            path=finding.path, line=finding.line, col=finding.col,
        ))
    else:
        print(finding.format())
