"""Exit codes, suppressions, discovery and profiles for analysis CLIs.

Everything here used to live in :mod:`repro.lint.engine` and was grown
in place by repro-sanitize and repro-flow; it is tool-agnostic, so it
moved here.  The lint engine re-exports the old names for callers that
still import them from there.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

#: The shared CLI exit contract: CI gates on these next to ruff.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

PROFILES = ("strict", "relaxed")

#: Compiled suppression patterns, one per tool tag (``repro-lint``,
#: ``repro-flow``, ...).  Same-line ``disable=`` covers that line;
#: ``disable-next=`` on the line before covers multi-line statements.
_SUPPRESS_RES: dict[str, re.Pattern[str]] = {}


def _suppress_re(tool: str) -> re.Pattern[str]:
    pattern = _SUPPRESS_RES.get(tool)
    if pattern is None:
        pattern = re.compile(
            r"#\s*" + re.escape(tool)
            + r":\s*(disable|disable-next)\s*=\s*([a-z0-9_,\- ]+)"
        )
        _SUPPRESS_RES[tool] = pattern
    return pattern


def parse_suppressions(source_lines: list[str],
                       tool: str = "repro-lint") -> dict[int, set[str]]:
    """Map line number -> names disabled on that line ("all" disables
    everything the tool checks)."""
    suppressed_lines: dict[int, set[str]] = {}
    matcher = _suppress_re(tool)
    for index, line in enumerate(source_lines, start=1):
        match = matcher.search(line)
        if match is None:
            continue
        kind, names = match.groups()
        target = index + 1 if kind == "disable-next" else index
        names_set = {name.strip() for name in names.split(",") if name.strip()}
        suppressed_lines.setdefault(target, set()).update(names_set)
    return suppressed_lines


def suppressed(name: str, line: int,
               suppressions: dict[int, set[str]]) -> bool:
    disabled = suppressions.get(line, set())
    return name in disabled or "all" in disabled


def module_name_for(path: Path) -> str:
    """Dotted module path for a file: everything from the ``repro``
    package component down; bare stem for scripts outside the package."""
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts[:-1]:
        package_parts = parts[parts.index("repro"):-1]
        if name == "__init__":
            return ".".join(package_parts)
        return ".".join(package_parts + [name])
    return name


def discover(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def profile_for(path: Path, requested: str = "auto") -> str:
    """``auto`` resolves per file: strict inside the ``repro`` package
    tree (``src/repro``), relaxed for harness code outside it."""
    if requested != "auto":
        return requested
    parts = path.parts
    for index, part in enumerate(parts[:-1]):
        if part == "src" and index + 1 < len(parts) and parts[index + 1] == "repro":
            return "strict"
    return "relaxed"
