"""GitHub-annotations output, shared by all three analysis CLIs.

GitHub Actions turns specially formatted stdout lines into inline PR
annotations: ``::error file=...,line=...,col=...,title=...::message``.
Every CLI offers ``--format github`` so CI findings land on the diff
instead of only in the job log.
"""

from __future__ import annotations

FORMATS = ("text", "github")


def _escape_property(value: str) -> str:
    """Escape a value used inside the ``key=value`` property list."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_message(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def github_annotation(message: str, *, title: str | None = None,
                      path: str | None = None, line: int | None = None,
                      col: int | None = None) -> str:
    """One ``::error`` workflow command.  Location fields are optional:
    sanitizer findings describe runtime schedules, not source lines."""
    props = []
    if path is not None:
        props.append(f"file={_escape_property(path)}")
    if line is not None:
        props.append(f"line={line}")
    if col is not None:
        props.append(f"col={col}")
    if title is not None:
        props.append(f"title={_escape_property(title)}")
    header = "::error " + ",".join(props) if props else "::error"
    return f"{header}::{_escape_message(message)}"
