"""Shared machinery for the static/dynamic analysis CLIs.

Three tools gate this tree in CI -- repro-lint (per-file AST
invariants), repro-sanitize (schedule-interleaving race detection) and
repro-flow (whole-program call-graph analysis) -- and they share one
contract so a CI job can treat them interchangeably:

* exit status 0 when clean, 1 when findings were reported, 2 on usage
  errors (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS` / :data:`EXIT_USAGE`);
* per-line suppressions ``# <tool>: disable=<name>[,<name>...]`` with a
  ``disable-next=`` form for multi-line statements
  (:func:`parse_suppressions`);
* ``--format github`` emitting ``::error`` workflow commands that land
  as inline PR annotations (:func:`github_annotation`);
* a strict/relaxed/auto profile split resolving per file -- strict under
  ``src/repro``, relaxed for harness code (:func:`profile_for`).

This package holds that contract in one place; the tools keep only
their own rules/scenarios/analyses.
"""

from .harness import (  # noqa: F401
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    PROFILES,
    discover,
    module_name_for,
    parse_suppressions,
    profile_for,
    suppressed,
)
from .output import FORMATS, github_annotation  # noqa: F401

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FORMATS",
    "PROFILES",
    "discover",
    "github_annotation",
    "module_name_for",
    "parse_suppressions",
    "profile_for",
    "suppressed",
]
