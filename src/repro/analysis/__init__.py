"""Shared machinery for the static/dynamic analysis CLIs.

Five tools gate this tree in CI -- repro-lint (per-file AST
invariants), repro-sanitize (schedule-interleaving race detection),
repro-flow (whole-program call-graph analysis), repro-hotpath (static
cost analysis of the hot set) and repro-bounds (resource-bounds and
lifecycle analysis) -- and they share one contract so a CI job can
treat them interchangeably:

* exit status 0 when clean, 1 when findings were reported, 2 on usage
  errors (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS` / :data:`EXIT_USAGE`);
* per-line suppressions ``# <tool>: disable=<name>[,<name>...]`` with a
  ``disable-next=`` form for multi-line statements
  (:func:`parse_suppressions`);
* ``--format github`` emitting ``::error`` workflow commands that land
  as inline PR annotations (:func:`github_annotation`);
* a strict/relaxed/auto profile split resolving per file -- strict under
  ``src/repro``, relaxed for harness code (:func:`profile_for`);
* one CLI scaffold -- check selection, the suppression +
  relaxed-profile finding filter, and finding rendering
  (:func:`select_checks` / :func:`keep_finding` / :func:`print_finding`).

This package holds that contract in one place; the tools keep only
their own rules/scenarios/analyses.
"""

from .harness import (  # noqa: F401
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    PROFILES,
    UsageError,
    discover,
    discover_program,
    keep_finding,
    module_name_for,
    parse_suppressions,
    print_finding,
    profile_for,
    report_parse_errors,
    select_checks,
    suppressed,
    suppressions_by_path,
)
from .output import FORMATS, github_annotation  # noqa: F401

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FORMATS",
    "PROFILES",
    "UsageError",
    "discover",
    "discover_program",
    "github_annotation",
    "keep_finding",
    "module_name_for",
    "parse_suppressions",
    "print_finding",
    "profile_for",
    "report_parse_errors",
    "select_checks",
    "suppressed",
    "suppressions_by_path",
]
