"""Durability observation.

Section 2.3.2: *"At write time, Couchbase provides client applications
with the option to wait for replication and/or for persistence on a per
mutation basis."*  The client issues the write (acknowledged from
memory), then observes the key across the vBucket's chain until the
requested number of replicas hold it in memory (``replicate_to``) and
the requested number of copies are on disk (``persist_to``,
which counts the active).

The observe fan-out is driven through the scheduler so the replication
and flusher pumps make progress while the client "waits".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import (
    DurabilityError,
    DurabilityImpossibleError,
    NodeDownError,
)
from ..common.scheduler import Scheduler
from ..common.transport import Network
from ..kv.types import MutationResult


@dataclass
class DurabilityRequirement:
    """How many copies the client wants before the write "counts"."""

    replicate_to: int = 0
    persist_to: int = 0

    def __post_init__(self):
        if self.replicate_to < 0 or self.persist_to < 0:
            raise ValueError("durability requirements cannot be negative")

    @property
    def trivial(self) -> bool:
        return self.replicate_to == 0 and self.persist_to == 0


class DurabilityMonitor:
    """Client-side observe loop."""

    def __init__(self, network: Network, scheduler: Scheduler,
                 client_name: str = "client"):
        self.network = network
        self.scheduler = scheduler
        self.client_name = client_name

    def wait(
        self,
        bucket: str,
        key: str,
        result: MutationResult,
        requirement: DurabilityRequirement,
        cluster_map,
    ) -> None:
        """Block (cooperatively) until the requirement is met.

        Raises :class:`DurabilityImpossibleError` if the bucket's chain
        cannot ever satisfy it, :class:`DurabilityError` if the pumps go
        idle before it is met (e.g. a replica node is down)."""
        if requirement.trivial:
            return
        vbucket_id = result.vbucket_id
        chain = cluster_map.chains[vbucket_id]
        replicas = [n for n in chain[1:] if n is not None]
        if requirement.replicate_to > len(replicas):
            raise DurabilityImpossibleError(
                f"replicate_to={requirement.replicate_to} but the chain has "
                f"only {len(replicas)} replica(s)"
            )
        if requirement.persist_to > 1 + len(replicas):
            raise DurabilityImpossibleError(
                f"persist_to={requirement.persist_to} exceeds the chain "
                f"length {1 + len(replicas)}"
            )

        def satisfied() -> bool:
            replicated = 0
            persisted = 0
            active = chain[0]
            try:
                observed = self.network.call(
                    self.client_name, active, "kv_observe",
                    bucket, vbucket_id, key,
                )
                if observed.persisted:
                    persisted += 1
            except NodeDownError:
                return False
            for node in replicas:
                try:
                    # Observe is a per-replica poll by design: one RPC
                    # per replica node, bounded by the replica count.
                    # repro-hotpath: disable-next=n-plus-one-rpc
                    observed = self.network.call(
                        self.client_name, node, "kv_observe",
                        bucket, vbucket_id, key,
                    )
                # Observe keeps polling the reachable replicas.
                # repro-flow: disable-next=swallowed-exception
                except NodeDownError:
                    continue
                if observed.exists and observed.cas == result.cas:
                    replicated += 1
                    if observed.persisted:
                        persisted += 1
                elif not observed.exists:
                    # Deletion path.  An in-memory tombstone carrying the
                    # mutation's CAS counts as replicated; it counts as
                    # persisted only once the tombstone itself reached
                    # disk (observe no longer confuses a stale live
                    # version on disk with a persisted delete).
                    if observed.cas == result.cas or observed.persisted:
                        replicated += 1
                    if observed.persisted:
                        persisted += 1
            return (
                replicated >= requirement.replicate_to
                and persisted >= requirement.persist_to
            )

        if not self.scheduler.run_until(satisfied):
            raise DurabilityError(
                f"durability requirement not met for {key!r} "
                f"(replicate_to={requirement.replicate_to}, "
                f"persist_to={requirement.persist_to})"
            )
