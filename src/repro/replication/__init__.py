"""Intra-cluster replication over DCP and client-side durability
observation (sections 2.3.2, 4.1.1, 4.2)."""

from .durability import DurabilityMonitor, DurabilityRequirement
from .intra import IntraReplicator

__all__ = ["DurabilityMonitor", "DurabilityRequirement", "IntraReplicator"]
