"""Intra-cluster replication.

Section 4.2: after a write is acknowledged from memory, the mutation "is
also pushed into the in-memory replication queue to be replicated to
other nodes within the cluster".  Replication is memory-to-memory DCP:
each data node runs an :class:`IntraReplicator` pump per bucket that
maintains a DCP stream per (active vBucket, replica node) pair from the
current cluster map and forwards batches over the network fabric.

On a cluster-map change the replicator re-derives its stream set; a
replica that turns out to be *ahead* of the new active (possible after a
failover promoted a less-caught-up copy) is reset and rebuilt from
seqno 0.
"""

from __future__ import annotations

from ..common.errors import (
    NodeDownError,
    NotMyVBucketError,
    StreamRollbackRequired,
    declared_raises,
)
from ..common.transport import Network
from ..dcp.messages import Deletion, Mutation
from ..dcp.producer import DcpStream
from ..kv.types import VBucketState


class IntraReplicator:
    """Replication pump for one bucket on one (source) node."""

    BATCH = 128

    def __init__(self, node, bucket: str, network: Network):
        self.node = node
        self.bucket = bucket
        self.network = network
        #: (vbucket_id, target_node) -> DcpStream
        self._streams: dict[tuple[int, str], DcpStream] = {}
        self._map_revision = -1

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError')
    def pump(self) -> bool:
        """One scheduler round: refresh topology if needed, then forward
        one batch per stream.  Returns True if any mutation moved."""
        cluster_map = self.node.cluster_maps.get(self.bucket)
        engine = self.node.engines.get(self.bucket)
        if cluster_map is None or engine is None or not self.node.alive:
            return False
        if cluster_map.revision != self._map_revision:
            self._rebuild_streams(cluster_map)
        moved = False
        for (vbucket_id, target), stream in list(self._streams.items()):
            vb = engine.vbuckets.get(vbucket_id)
            if vb is None or vb.state is not VBucketState.ACTIVE:
                del self._streams[(vbucket_id, target)]
                continue
            messages = stream.take(self.BATCH)
            docs = [message.doc for message in messages
                    if isinstance(message, (Mutation, Deletion))]
            if not docs:
                continue
            try:
                # One RPC per stream batch: consecutive mutations for
                # one (vBucket, replica) pair coalesce into a single
                # kv_replica_apply_batch, the replica-side mirror of the
                # client's kv_multi_mutate.  The batch applies in stream
                # order, so a failure rejects it wholesale and the next
                # handshake resumes from the replica's seqno.
                self.network.call(
                    self.node.name, target, "kv_replica_apply_batch",
                    self.bucket, vbucket_id, docs,
                )
                moved = True
            except NodeDownError:
                # Target unreachable: drop the stream; the next map
                # revision (failover) or reachability change will
                # recreate it from the target's seqno.
                del self._streams[(vbucket_id, target)]
            except NotMyVBucketError:
                del self._streams[(vbucket_id, target)]
        return moved

    def _rebuild_streams(self, cluster_map) -> None:
        """Topology changed: reconnect every stream.  Reconnecting (as
        real DCP consumers do on a new cluster map) is also when a
        divergent replica -- one ahead of this active's history -- gets
        detected via the rollback handshake and reset."""
        engine = self.node.engines[self.bucket]
        producer = self.node.producers[self.bucket]
        self._map_revision = cluster_map.revision
        wanted: set[tuple[int, str]] = set()
        for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
            if cluster_map.active_node(vbucket_id) != self.node.name:
                continue
            for target in cluster_map.replica_nodes(vbucket_id):
                wanted.add((vbucket_id, target))
        self._streams.clear()
        for vbucket_id, target in wanted:
            stream = self._open_stream(producer, vbucket_id, target)
            if stream is not None:
                self._streams[(vbucket_id, target)] = stream

    def _open_stream(self, producer, vbucket_id: int, target: str):
        """The DCP stream-open handshake: resume from the replica's seqno
        only if its recorded lineage lies on this active's history;
        otherwise reset and rebuild from zero (section 4.3.2)."""
        try:
            target_uuid, target_seqno = self.network.call(
                self.node.name, target, "kv_replica_stream_state",
                self.bucket, vbucket_id,
            )
        except NodeDownError:
            return None
        stream = None
        if target_uuid is None and target_seqno > 0:
            # The replica holds data of unknown lineage (e.g. leftover
            # state from an earlier topology): never trust it.
            stream = self._reset_and_stream(producer, vbucket_id, target)
        else:
            try:
                stream = producer.stream_request(
                    vbucket_id, start_seqno=target_seqno, vb_uuid=target_uuid,
                )
            except StreamRollbackRequired:
                stream = self._reset_and_stream(producer, vbucket_id, target)
        if stream is None:
            return None
        try:
            self.network.call(
                self.node.name, target, "kv_adopt_failover_log",
                self.bucket, vbucket_id, producer.failover_log(vbucket_id),
            )
        except NodeDownError:
            return None
        return stream

    def _reset_and_stream(self, producer, vbucket_id: int, target: str):
        try:
            self.network.call(
                self.node.name, target, "kv_reset_replica",
                self.bucket, vbucket_id,
            )
        except NodeDownError:
            return None
        return producer.stream_request(vbucket_id, start_seqno=0)

    def stream_count(self) -> int:
        return len(self._streams)
