"""Append-only storage engine: record log, copy-on-write B+tree with
reduce annotations, per-vBucket stores, and the compactor (section
4.3.3 of the paper)."""

from .appendlog import RT_DOC, RT_HEADER, RT_NODE, AppendLog
from .btree import BTree, default_compare
from .compaction import Compactor
from .couchstore import VBucketStore

__all__ = [
    "AppendLog",
    "BTree",
    "Compactor",
    "RT_DOC",
    "RT_HEADER",
    "RT_NODE",
    "VBucketStore",
    "default_compare",
]
