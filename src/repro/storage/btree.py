"""Append-only copy-on-write B+tree.

This is the index structure inside each storage file, modeled on
couchstore's: nodes are immutable records appended to the log, interior
("key-pointer") entries carry a **pre-computed reduce value** for the
subtree, and a batch update rewrites only the root-to-leaf paths it
touches, yielding a new root pointer.  The view engine's headline feature
-- *"a view index stores the pre-computed aggregates defined in the
Reduce function as a part of the index tree; this allows for very fast
aggregation at query time"* (section 4.3.3) -- falls directly out of the
reduce annotations here.

Keys and values are arbitrary JSON values; ordering is injected as a
comparator so the same structure serves the by-key index (string doc
IDs), the by-seqno index (integers), view indexes (view collation on
[emitted_key, doc_id] pairs), and GSI indexes (N1QL collation).
"""

from __future__ import annotations

import json
from typing import Callable, Iterator

from ..common.errors import InvalidArgumentError
from ..common.jsonval import JsonValue
from .appendlog import _HEADER, RT_NODE, AppendLog

Comparator = Callable[[JsonValue, JsonValue], int]
ReduceFn = Callable[[list[JsonValue]], JsonValue]
RereduceFn = Callable[[list[JsonValue]], JsonValue]


def default_compare(a: JsonValue, b: JsonValue) -> int:
    """Comparator for homogeneous keys (strings or numbers)."""
    if a < b:  # type: ignore[operator]
        return -1
    if a > b:  # type: ignore[operator]
        return 1
    return 0


class BTree:
    """Handle to a tree rooted at ``root``; all mutation is functional --
    :meth:`batch_update` returns a *new* :class:`BTree` sharing unchanged
    nodes with the old one, which is what makes header-granularity
    snapshots (MVCC reads during compaction and DCP backfill) free."""

    #: Fan-out: maximum entries per node before it splits.  Couchstore
    #: splits on a byte threshold; an item count keeps tests predictable.
    MAX_NODE_ITEMS = 32

    def __init__(
        self,
        log: AppendLog,
        root: int | None = None,
        compare: Comparator = default_compare,
        reduce_fn: ReduceFn | None = None,
        rereduce_fn: RereduceFn | None = None,
        max_node_items: int | None = None,
        node_bytes: int = 0,
    ):
        self.log = log
        self.root = root
        self.compare = compare
        self.reduce_fn = reduce_fn
        self.rereduce_fn = rereduce_fn
        #: On-disk bytes (framing included) of every node reachable from
        #: ``root``.  Maintained incrementally by :meth:`batch_update`
        #: (written nodes add, replaced nodes subtract) so the storage
        #: layer's fragmentation accounting can treat live index nodes as
        #: live data instead of garbage -- miscounting them keeps a
        #: freshly compacted file above the compaction threshold forever.
        self.node_bytes = node_bytes
        #: Per-batch deltas, reset at the top of :meth:`batch_update`.
        self._update_written = 0
        self._update_freed = 0
        if max_node_items is not None:
            self.max_node_items = max_node_items
        else:
            self.max_node_items = self.MAX_NODE_ITEMS

    # -- node I/O -------------------------------------------------------------

    def _write_node(self, kind: str, items: list) -> int:
        body = json.dumps([kind, items], separators=(",", ":")).encode("utf-8")
        self._update_written += _HEADER.size + len(body)
        return self.log.append(RT_NODE, body)

    #: Bound on the per-log decoded-node cache.  Nodes are immutable at
    #: their offsets (append-only copy-on-write), so cached entries are
    #: valid forever; the bound only caps memory.
    NODE_CACHE_CAPACITY = 4096

    def _read_node(self, pointer: int) -> tuple[str, list]:
        kind, items, _size = self._read_node_sized(pointer)
        return kind, items

    def _read_node_sized(self, pointer: int) -> tuple[str, list, int]:
        """Like :meth:`_read_node` but also returns the record's on-disk
        size (framing + body), which the copy-on-write update path needs
        to account freed bytes when it replaces a node."""
        cache = self.log.node_cache
        node = cache.get(pointer)
        if node is None:
            _rt, body = self.log.read(pointer)
            kind, items = json.loads(body.decode("utf-8"))
            node = (kind, items, _HEADER.size + len(body))
            if len(cache) >= self.NODE_CACHE_CAPACITY:
                cache.pop(next(iter(cache)))
            cache[pointer] = node
        return node

    # -- reduce ---------------------------------------------------------------

    def _reduce_leaf(self, items: list) -> JsonValue:
        if self.reduce_fn is None:
            return None
        return self.reduce_fn([value for _key, value in items])

    def _rereduce(self, reductions: list) -> JsonValue:
        if self.reduce_fn is None:
            return None
        rereduce = self.rereduce_fn if self.rereduce_fn is not None else self.reduce_fn
        return rereduce(reductions)

    # -- queries ---------------------------------------------------------------

    def lookup(self, key: JsonValue) -> tuple[bool, JsonValue]:
        """Point lookup; returns ``(found, value)``."""
        pointer = self.root
        while pointer is not None:
            kind, items = self._read_node(pointer)
            if kind == "kv":
                for item_key, value in items:
                    order = self.compare(item_key, key)
                    if order == 0:
                        return True, value
                    if order > 0:
                        break
                return False, None
            pointer = None
            for last_key, child, _reduction in items:
                if self.compare(key, last_key) <= 0:
                    pointer = child
                    break
        return False, None

    def range(
        self,
        start: JsonValue = None,
        end: JsonValue = None,
        *,
        inclusive_start: bool = True,
        inclusive_end: bool = True,
        descending: bool = False,
    ) -> Iterator[tuple[JsonValue, JsonValue]]:
        """Yield ``(key, value)`` pairs with keys in [start, end].

        ``None`` bounds mean unbounded on that side.  ``descending``
        reverses the iteration order (section 3.1.2 allows descending
        view scans)."""

        def in_range(key: JsonValue) -> bool:
            if start is not None:
                order = self.compare(key, start)
                if order < 0 or (order == 0 and not inclusive_start):
                    return False
            if end is not None:
                order = self.compare(key, end)
                if order > 0 or (order == 0 and not inclusive_end):
                    return False
            return True

        def before_range(last_key: JsonValue) -> bool:
            """Whole subtree ends before the range starts."""
            if start is None:
                return False
            order = self.compare(last_key, start)
            return order < 0 or (order == 0 and not inclusive_start)

        def walk(pointer: int) -> Iterator[tuple[JsonValue, JsonValue]]:
            kind, items = self._read_node(pointer)
            if kind == "kv":
                sequence = reversed(items) if descending else items
                for key, value in sequence:
                    if in_range(key):
                        yield key, value
            else:
                candidates = []
                for last_key, child, _reduction in items:
                    if before_range(last_key):
                        continue
                    candidates.append((last_key, child))
                    # Children are ordered; once a child's last key passes
                    # the end bound, later children are entirely past it.
                    if end is not None and self.compare(last_key, end) >= 0:
                        break
                if descending:
                    candidates.reverse()
                for _last_key, child in candidates:
                    yield from walk(child)

        if self.root is not None:
            yield from walk(self.root)

    def items(self) -> Iterator[tuple[JsonValue, JsonValue]]:
        return self.range()

    def count(self) -> int:
        return sum(1 for _ in self.items())

    def measure_node_bytes(self) -> int:
        """Walk the tree and total its nodes' on-disk bytes, setting
        :attr:`node_bytes`.  One full traversal -- recovery fallback for
        files whose header predates the persisted counter; steady-state
        callers rely on the incremental accounting instead."""
        total = 0
        stack = [] if self.root is None else [self.root]
        while stack:
            kind, items, size = self._read_node_sized(stack.pop())
            total += size
            if kind == "kp":
                stack.extend(child for _key, child, _reduction in items)
        self.node_bytes = total
        return total

    def full_reduce(self) -> JsonValue:
        """Reduce value of the whole tree, O(1) from the root."""
        if self.root is None:
            return self._rereduce([]) if self.reduce_fn else None
        kind, items = self._read_node(self.root)
        if kind == "kv":
            return self._reduce_leaf(items)
        return self._rereduce([reduction for _k, _p, reduction in items])

    def reduce_range(
        self,
        start: JsonValue = None,
        end: JsonValue = None,
        *,
        inclusive_start: bool = True,
        inclusive_end: bool = True,
    ) -> JsonValue:
        """Reduce over a key range, reusing subtree reductions whenever a
        subtree lies entirely inside the range.  This is the "very fast
        aggregation at query time" path: interior reductions are consumed
        whole and only the boundary leaves are re-reduced."""
        if self.reduce_fn is None:
            raise InvalidArgumentError("tree has no reduce function")

        def key_in(key: JsonValue) -> bool:
            if start is not None:
                order = self.compare(key, start)
                if order < 0 or (order == 0 and not inclusive_start):
                    return False
            if end is not None:
                order = self.compare(key, end)
                if order > 0 or (order == 0 and not inclusive_end):
                    return False
            return True

        def walk(pointer: int, lower: JsonValue | None) -> JsonValue | None:
            """Reduce the in-range part of the subtree at ``pointer``.
            ``lower`` is the greatest last_key of any preceding sibling,
            i.e. an exclusive lower bound on keys in this subtree."""
            kind, items = self._read_node(pointer)
            if kind == "kv":
                values = [value for key, value in items if key_in(key)]
                if not values:
                    return None
                return self.reduce_fn(values)
            parts: list[JsonValue] = []
            previous_last = lower
            for last_key, child, reduction in items:
                # Subtree covers keys in (previous_last, last_key].
                subtree_entirely_inside = (
                    (
                        start is None
                        or (
                            previous_last is not None
                            and (
                                self.compare(previous_last, start) > 0
                                or (
                                    self.compare(previous_last, start) >= 0
                                    and inclusive_start
                                )
                            )
                        )
                    )
                    and (
                        end is None
                        or self.compare(last_key, end) < 0
                        or (self.compare(last_key, end) == 0 and inclusive_end)
                    )
                )
                subtree_before = start is not None and (
                    self.compare(last_key, start) < 0
                    or (self.compare(last_key, start) == 0 and not inclusive_start)
                )
                subtree_after = (
                    end is not None
                    and previous_last is not None
                    and (
                        self.compare(previous_last, end) > 0
                        or (self.compare(previous_last, end) == 0 and not inclusive_end)
                    )
                )
                if subtree_before or subtree_after:
                    previous_last = last_key
                    continue
                if subtree_entirely_inside:
                    parts.append(reduction)
                else:
                    partial = walk(child, previous_last)
                    if partial is not None:
                        parts.append(partial)
                previous_last = last_key
            if not parts:
                return None
            return self._rereduce(parts)

        if self.root is None:
            return self._rereduce([])
        result = walk(self.root, None)
        return result if result is not None else self._rereduce([])

    # -- batch update ---------------------------------------------------------

    def batch_update(
        self,
        inserts: list[tuple[JsonValue, JsonValue]] | None = None,
        deletes: list[JsonValue] | None = None,
    ) -> "BTree":
        """Apply upserts and deletes in one pass; returns the new tree.

        An insert with an existing key replaces its value.  Deletes of
        absent keys are ignored.  Only the touched root-to-leaf paths are
        rewritten (append-only copy-on-write)."""
        actions: dict = {}
        ordered_keys: list[JsonValue] = []

        def key_token(key: JsonValue):
            return json.dumps(key, sort_keys=True, separators=(",", ":"))

        tokens: dict[str, JsonValue] = {}
        for key in deletes or []:
            token = key_token(key)
            if token not in tokens:
                tokens[token] = key
                ordered_keys.append(key)
            actions[token] = ("delete", None)
        for key, value in inserts or []:
            token = key_token(key)
            if token not in tokens:
                tokens[token] = key
                ordered_keys.append(key)
            actions[token] = ("insert", value)
        if not actions:
            return self

        import functools
        ordered_keys.sort(key=functools.cmp_to_key(self.compare))
        work = [(key, *actions[key_token(key)]) for key in ordered_keys]

        self._update_written = 0
        self._update_freed = 0
        new_root = self._modify_root(work)
        return BTree(
            self.log,
            new_root,
            self.compare,
            self.reduce_fn,
            self.rereduce_fn,
            self.max_node_items,
            node_bytes=self.node_bytes + self._update_written
            - self._update_freed,
        )

    # Internal: each _modify_* returns a list of kp entries
    # [last_key, pointer, reduction] describing the replacement nodes.

    def _write_leaves(self, items: list) -> list:
        entries = []
        for chunk in _chunks(items, self.max_node_items):
            pointer = self._write_node("kv", chunk)
            entries.append([chunk[-1][0], pointer, self._reduce_leaf(chunk)])
        return entries

    def _write_interiors(self, kp_entries: list) -> list:
        entries = []
        for chunk in _chunks(kp_entries, self.max_node_items):
            pointer = self._write_node("kp", chunk)
            reduction = self._rereduce([r for _k, _p, r in chunk])
            entries.append([chunk[-1][0], pointer, reduction])
        return entries

    def _modify_leaf(self, items: list, work: list) -> list:
        merged: list = []
        index = 0
        for action_key, action, value in work:
            while index < len(items) and self.compare(items[index][0], action_key) < 0:
                merged.append(items[index])
                index += 1
            if index < len(items) and self.compare(items[index][0], action_key) == 0:
                index += 1  # replaced or deleted
            if action == "insert":
                merged.append([action_key, value])
        merged.extend(items[index:])
        if not merged:
            return []
        return self._write_leaves(merged)

    def _modify_node(self, pointer: int, work: list) -> list:
        """Rewrite the node at ``pointer`` with ``work`` applied; returns
        the kp entries of its replacement node(s) *at the same level* --
        one entry normally, several after a split, none when emptied.
        Keeping levels uniform is what stops repeated batches from
        skewing the tree's depth."""
        kind, items, size = self._read_node_sized(pointer)
        self._update_freed += size  # this node is replaced (or emptied)
        if kind == "kv":
            return self._modify_leaf(items, work)
        child_entries: list = []
        work_index = 0
        for child_index, (last_key, child, reduction) in enumerate(items):
            is_last_child = child_index == len(items) - 1
            child_work = []
            while work_index < len(work) and (
                is_last_child or self.compare(work[work_index][0], last_key) <= 0
            ):
                child_work.append(work[work_index])
                work_index += 1
            if child_work:
                child_entries.extend(self._modify_node(child, child_work))
            else:
                child_entries.append([last_key, child, reduction])
        if not child_entries:
            return []
        return self._write_interiors(child_entries)

    def _modify_root(self, work: list) -> int | None:
        if self.root is None:
            inserts = [[k, v] for k, action, v in work if action == "insert"]
            entries = self._write_leaves(inserts) if inserts else []
        else:
            entries = self._modify_node(self.root, work)
        if not entries:
            return None
        while len(entries) > 1:
            entries = self._write_interiors(entries)
        last_key, pointer, _reduction = entries[0]
        # A single kp entry may still point at a leaf or interior node;
        # either is a valid root.
        return pointer


def _chunks(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start:start + size]
