"""Per-vBucket storage files.

Each vBucket persists to its own append-only file (as couchstore does),
containing three kinds of records: document bodies, B-tree nodes, and
**headers**.  A header names the roots of the two indexes -- the by-key
tree (doc ID -> document location + metadata) and the by-seqno tree
(mutation seqno -> doc ID) -- plus the vBucket's high seqno and counters.
Because trees are copy-on-write, a header is a consistent snapshot: DCP
backfill and compaction read from a header while the writer keeps
appending (section 4.3.3).

Recovery after a crash scans for the last intact header and truncates
everything after it; un-headered appends are exactly the writes whose
persistence the client never observed (section 2.3.2's durability
options are what let a client *choose* to observe it).
"""

from __future__ import annotations

import json

from ..common.disk import SimulatedDisk
from ..common.document import Document, DocumentMeta
from ..common.errors import KeyNotFoundError
from ..common.jsonval import JsonValue
from .appendlog import _HEADER, RT_DOC, RT_HEADER, AppendLog
from .btree import BTree


class VBucketStore:
    """Storage engine instance for one vBucket."""

    def __init__(self, disk: SimulatedDisk, filename: str, vbucket_id: int):
        self.disk = disk
        self.filename = filename
        self.vbucket_id = vbucket_id
        self.log = AppendLog(disk.open(filename))
        self.by_key = BTree(self.log)
        self.by_seq = BTree(self.log)
        #: Highest seqno persisted (and headered) in this file.
        self.update_seq = 0
        self.doc_count = 0
        self.deleted_count = 0
        #: Bytes of live (reachable from the current header) doc bodies;
        #: the numerator of the fragmentation computation.
        self.live_size = 0
        self._recover()

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        found = self.log.find_last_header()
        if found is None:
            if self.log.size:
                # File exists but has no intact header: treat as empty.
                self.log.file.truncate(0)
            return
        offset, body = found
        header = json.loads(body.decode("utf-8"))
        # Truncate everything after the header record: those are appends
        # that never reached a commit point.
        self.log.file.truncate(offset + _HEADER.size + len(body))
        self.by_key = BTree(self.log, header["by_key_root"])
        self.by_seq = BTree(self.log, header["by_seq_root"])
        self.update_seq = header["update_seq"]
        self.doc_count = header["doc_count"]
        self.deleted_count = header["deleted_count"]
        self.live_size = header["live_size"]
        # Tree-node byte counters ride in the header; files written
        # before the counter existed pay one tree walk to rebuild them.
        if "by_key_nodes" in header:
            self.by_key.node_bytes = header["by_key_nodes"]
            self.by_seq.node_bytes = header["by_seq_nodes"]
        else:
            self.by_key.measure_node_bytes()
            self.by_seq.measure_node_bytes()

    # -- write path -------------------------------------------------------------

    def save_docs(self, docs: list[Document]) -> None:
        """Persist a batch of mutations (the flusher's unit of work).

        Every doc must already carry its assigned seqno.  Repeated
        updates to one key within the batch are deduplicated to the
        newest -- the paper's point that asynchrony lets "repeated updates
        to an object be aggregated at the level of persistence"
        (section 2.3.2)."""
        if not docs:
            return
        newest: dict[str, Document] = {}
        for doc in docs:
            newest[doc.key] = doc
        key_inserts: list[tuple[JsonValue, JsonValue]] = []
        seq_inserts: list[tuple[JsonValue, JsonValue]] = []
        seq_deletes: list[JsonValue] = []
        for doc in newest.values():
            meta = doc.meta
            body = json.dumps(
                [
                    meta.key,
                    doc.value,
                    meta.cas,
                    meta.seqno,
                    meta.rev,
                    meta.expiry,
                    meta.flags,
                    meta.deleted,
                ],
                separators=(",", ":"),
            ).encode("utf-8")
            pointer = self.log.append(RT_DOC, body)
            found, old = self.by_key.lookup(meta.key)
            if found:
                seq_deletes.append(old["seq"])
                self.live_size -= old["size"]
                if old["del"]:
                    self.deleted_count -= 1
                else:
                    self.doc_count -= 1
            entry = {
                "ptr": pointer,
                "seq": meta.seqno,
                "size": len(body),
                "del": meta.deleted,
            }
            key_inserts.append((meta.key, entry))
            seq_inserts.append((meta.seqno, {"key": meta.key, "ptr": pointer,
                                             "del": meta.deleted}))
            self.live_size += len(body)
            if meta.deleted:
                self.deleted_count += 1
            else:
                self.doc_count += 1
            self.update_seq = max(self.update_seq, meta.seqno)
        self.by_key = self.by_key.batch_update(inserts=key_inserts)
        self.by_seq = self.by_seq.batch_update(
            inserts=seq_inserts, deletes=seq_deletes
        )

    def write_header(self, sync: bool = True) -> None:
        """Commit point: append a header naming the current tree roots."""
        header = {
            "by_key_root": self.by_key.root,
            "by_seq_root": self.by_seq.root,
            "update_seq": self.update_seq,
            "doc_count": self.doc_count,
            "deleted_count": self.deleted_count,
            "live_size": self.live_size,
            "by_key_nodes": self.by_key.node_bytes,
            "by_seq_nodes": self.by_seq.node_bytes,
            "vbucket_id": self.vbucket_id,
        }
        self.log.append(RT_HEADER, json.dumps(header, separators=(",", ":")).encode())
        if sync:
            self.log.sync()

    def destroy(self) -> None:
        """Delete the vBucket's on-disk state.

        ``_recover`` deliberately reopens whatever the file holds, so a
        drop that merely forgets the in-memory object resurrects the old
        documents (and their failover lineage) on the next
        ``create_vbucket`` for the same id.  A DEAD vBucket's disk must
        be gone before the id is reused."""
        self.log.file.truncate(0)
        self.log.sync()
        # New appends will reuse old offsets; cached decoded nodes for
        # those offsets are now lies.
        self.log.node_cache.clear()
        self.by_key = BTree(self.log)
        self.by_seq = BTree(self.log)
        self.update_seq = 0
        self.doc_count = 0
        self.deleted_count = 0
        self.live_size = 0

    # -- read path ---------------------------------------------------------------

    def _load_doc(self, pointer: int) -> Document:
        _rt, body = self.log.read(pointer)
        key, value, cas, seqno, rev, expiry, flags, deleted = json.loads(body)
        meta = DocumentMeta(
            key=key, cas=cas, seqno=seqno, rev=rev, expiry=expiry,
            flags=flags, deleted=deleted, vbucket_id=self.vbucket_id,
        )
        return Document(meta, value)

    def get(self, key: str, include_deleted: bool = False) -> Document:
        found, entry = self.by_key.lookup(key)
        if not found or (entry["del"] and not include_deleted):
            raise KeyNotFoundError(key)
        return self._load_doc(entry["ptr"])

    def contains(self, key: str) -> bool:
        found, entry = self.by_key.lookup(key)
        return found and not entry["del"]

    def has_tombstone(self, key: str) -> bool:
        """True when the latest persisted version of ``key`` is a delete
        (the durability monitor's deletion-path observe needs this)."""
        found, entry = self.by_key.lookup(key)
        return found and bool(entry["del"])

    def changes_since(self, seqno: int):
        """Yield persisted documents with seqno strictly greater than
        ``seqno``, in seqno order -- the DCP backfill scan."""
        for _seq, entry in self.by_seq.range(start=seqno, inclusive_start=False):
            yield self._load_doc(entry["ptr"])

    def all_docs(self, include_deleted: bool = False):
        """Scan every live document in key order (PrimaryScan substrate)."""
        for key, entry in self.by_key.items():
            if entry["del"] and not include_deleted:
                continue
            yield self._load_doc(entry["ptr"])

    # -- sizing -----------------------------------------------------------------

    @property
    def file_size(self) -> int:
        return self.log.size

    def live_bytes(self) -> int:
        """On-disk bytes still reachable from the current tree roots:
        live document records (bodies plus framing) and live index
        nodes.  Superseded doc versions, dead nodes and stale headers
        are the garbage compaction reclaims."""
        doc_records = self.doc_count + self.deleted_count
        return (
            self.live_size
            + doc_records * _HEADER.size
            + self.by_key.node_bytes
            + self.by_seq.node_bytes
        )

    def fragmentation(self) -> float:
        """Fraction of the file that is garbage (old doc versions, dead
        tree nodes, stale headers).  The compactor triggers past a
        threshold on this.  Live B-tree nodes MUST count as live here:
        they are roughly two thirds of a freshly compacted file, and
        treating them as garbage pins fragmentation above any sane
        threshold -- the compactor then rewrites an already-clean file
        every pump round and the scheduler never goes idle."""
        if self.log.size == 0:
            return 0.0
        return max(0.0, 1.0 - self.live_bytes() / self.log.size)
