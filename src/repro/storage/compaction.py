"""Compaction.

Section 4.3.3: *"Compaction is periodically run, based on a fragmentation
threshold, and while the system is online, to clean up stale data from
the append-only storage."*

The compactor copies every live document (in seqno order, preserving the
by-seqno tree DCP backfills from) from the old file into a fresh file,
writes a header, and atomically renames the new file over the old name.
Because the source is read through its last header -- an immutable
snapshot -- the vBucket can keep taking writes during the copy; the
writes that land mid-compaction are replayed onto the new file in a
catch-up pass before the swap.

Optionally, tombstones whose seqno is below a purge horizon are dropped
(``purge_before_seq``), mirroring the metadata purge interval.
"""

from __future__ import annotations

from ..common.disk import SimulatedDisk
from .couchstore import VBucketStore


class Compactor:
    """Compacts :class:`VBucketStore` files past a fragmentation threshold."""

    def __init__(self, disk: SimulatedDisk, threshold: float = 0.3):
        self.disk = disk
        self.threshold = threshold
        #: Number of compactions performed (for stats / ablation benches).
        self.runs = 0

    def needs_compaction(self, store: VBucketStore) -> bool:
        # Tiny files are never worth compacting, whatever their ratio.
        return store.file_size > 4096 and store.fragmentation() >= self.threshold

    def compact(
        self,
        store: VBucketStore,
        purge_before_seq: int = 0,
    ) -> VBucketStore:
        """Rewrite ``store``'s file; returns the replacement store.

        The caller must swap the returned store into its vBucket map; the
        old object must not be used afterwards (its file was renamed
        away)."""
        old_name = store.filename
        temp_name = old_name + ".compact"
        if self.disk.exists(temp_name):
            self.disk.delete(temp_name)
        new_store = VBucketStore(self.disk, temp_name, store.vbucket_id)

        copied_through = self._copy_since(store, new_store, 0, purge_before_seq)
        # Catch-up pass: replay anything that landed while we copied.  With
        # the cooperative scheduler the source cannot advance mid-copy, but
        # the loop keeps the algorithm honest for any driver that
        # interleaves writes.
        while store.update_seq > copied_through:
            copied_through = self._copy_since(
                store, new_store, copied_through, purge_before_seq
            )

        new_store.write_header(sync=True)
        self.disk.delete(old_name)
        self.disk.rename(temp_name, old_name)
        new_store.filename = old_name
        self.runs += 1
        return new_store

    def _copy_since(
        self,
        source: VBucketStore,
        target: VBucketStore,
        since_seq: int,
        purge_before_seq: int,
    ) -> int:
        highest = since_seq
        batch = []
        for doc in source.changes_since(since_seq):
            highest = max(highest, doc.meta.seqno)
            if doc.meta.deleted and doc.meta.seqno <= purge_before_seq:
                continue  # purge old tombstone
            batch.append(doc)
            if len(batch) >= 512:
                target.save_docs(batch)
                batch = []
        if batch:
            target.save_docs(batch)
        target.update_seq = max(target.update_seq, source.update_seq)
        return highest
