"""Append-only record log.

Section 4.3.3: *"With Couchbase's append-only storage engine design,
document mutations always go to the end of a file."*  This module frames
records on a :class:`SimulatedFile`: a fixed header (magic byte, record
type, body length, CRC32 of the body) followed by the body.  Torn or
corrupt trailing records -- the product of a crash between append and
sync -- are detected by the CRC and skipped by recovery scans.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..common.crc import crc32
from ..common.disk import SimulatedFile
from ..common.errors import CorruptFileError

_MAGIC = 0xC7
_HEADER = struct.Struct(">BBII")  # magic, record type, body length, body crc32

#: Record types.  HEADER records carry B-tree roots and sequence state and
#: are what recovery scans for; the others are payload.
RT_DOC = 1
RT_NODE = 2
RT_HEADER = 3


class AppendLog:
    """Record framing over an append-only file."""

    #: The backing file grows by design -- it *is* the persisted data.
    #: Compaction bounds it: the live set is rewritten into a fresh
    #: file and swapped in (see ``KVEngine.compact``), which is the
    #: eviction mechanism for dead records.
    __bounds__ = ("file",)

    def __init__(self, file: SimulatedFile):
        self.file = file
        #: Decoded-record cache used by the B-tree layer (offset ->
        #: decoded node).  Offsets are never rewritten in an append-only
        #: file -- compaction swaps in a whole new log -- so entries can
        #: never go stale.
        self.node_cache: dict[int, tuple] = {}

    def append(self, record_type: int, body: bytes) -> int:
        """Append one record; return its offset (for later :meth:`read`)."""
        header = _HEADER.pack(_MAGIC, record_type, len(body), crc32(body))
        return self.file.append(header + body)

    def read(self, offset: int) -> tuple[int, bytes]:
        """Read the record at ``offset``; returns ``(record_type, body)``."""
        raw = self.file.read(offset, _HEADER.size)
        magic, record_type, length, checksum = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise CorruptFileError(
                f"{self.file.name!r}: bad magic {magic:#x} at offset {offset}"
            )
        body = self.file.read(offset + _HEADER.size, length)
        if crc32(body) != checksum:
            raise CorruptFileError(
                f"{self.file.name!r}: checksum mismatch at offset {offset}"
            )
        return record_type, body

    def sync(self) -> None:
        self.file.sync()

    @property
    def size(self) -> int:
        return self.file.size

    def scan(self) -> Iterator[tuple[int, int, bytes]]:
        """Walk every intact record from the start of the file, yielding
        ``(offset, record_type, body)``.  Stops (without raising) at the
        first torn or corrupt record, which by the append-only discipline
        can only be a crash-truncated tail."""
        offset = 0
        size = self.file.size
        while offset + _HEADER.size <= size:
            raw = self.file.read(offset, _HEADER.size)
            magic, record_type, length, checksum = _HEADER.unpack(raw)
            if magic != _MAGIC or offset + _HEADER.size + length > size:
                return
            body = self.file.read(offset + _HEADER.size, length)
            if crc32(body) != checksum:
                return
            yield offset, record_type, body
            offset += _HEADER.size + length

    def find_last_header(self) -> tuple[int, bytes] | None:
        """Locate the most recent intact HEADER record, or None.

        Recovery after a crash: the last durable header names the roots of
        the by-key and by-seqno trees; everything after it is garbage to
        be ignored (and truncated by the caller)."""
        last: tuple[int, bytes] | None = None
        for offset, record_type, body in self.scan():
            if record_type == RT_HEADER:
                last = (offset, body)
        return last
