"""Client SDK: the smart client with cluster-map routing (section 3.1)
and the node-grouped batch operations (multi_get / multi_upsert /
multi_remove)."""

from .smart_client import BatchResult, SmartClient

__all__ = ["BatchResult", "SmartClient"]
