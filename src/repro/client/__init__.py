"""Client SDK: the smart client with cluster-map routing (section 3.1)."""

from .smart_client import SmartClient

__all__ = ["SmartClient"]
