"""The smart client.

Section 4.1: "Applications can use Couchbase's smart clients, which
contain a copy of the cluster map ... a client applies a hash function
(CRC32) to every document that needs to be stored, and the document can
then be sent directly from the client to the server where it should
reside."

The client caches the cluster map per bucket, routes every key-value
operation straight to the active node for the key's vBucket, and on a
NOT_MY_VBUCKET or connection failure refreshes the map from the cluster
manager and retries -- the standard smart-client dance during rebalance
and failover.

Durability options on mutations (``replicate_to`` / ``persist_to``) ride
on the observe machinery of :mod:`repro.replication.durability`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from ..common.costmodel import cost, hot_path
from ..common.document import Document
from ..common.errors import (
    AdmissionRejectedError,
    BucketNotFoundError,
    declared_raises,
    NotConnectedError,
    KeyNotFoundError,
    NodeDownError,
    NotMyVBucketError,
    TemporaryFailureError,
)
from ..common.jsonval import JsonValue
from ..common.scheduler import Scheduler
from ..common.transport import Network
from ..kv.types import MutationResult
from ..replication.durability import DurabilityMonitor, DurabilityRequirement

if TYPE_CHECKING:
    from ..admission.controller import AdmissionController
    from ..server import Cluster

#: Process-wide client-id source: ids stay unique across clusters in
#: one test process.
__shared_state__ = ("_client_ids",)
_client_ids = itertools.count(1)


@dataclass
class BatchResult:
    """Outcome of a batched key-value operation.

    ``results`` maps each succeeded key to its value (a
    :class:`Document` for reads, a :class:`MutationResult` for writes);
    ``errors`` maps each failed key to the error the server returned for
    it.  A batch never raises for per-key failures -- callers inspect
    ``errors`` (or use :meth:`require_ok`) so one bad key cannot mask
    the other N-1 outcomes."""

    #: Bounded by the batch: every key of one call lands in exactly one
    #: of the two dicts, and the object lives for that one call.
    __bounds__ = ("results", "errors")

    results: dict[str, Any] = field(default_factory=dict)
    errors: dict[str, Exception] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def require_ok(self) -> "BatchResult":
        """Raise the first per-key error, if any (keys sorted for
        determinism); otherwise return self."""
        if self.errors:
            raise self.errors[min(self.errors)]
        return self

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, key: str) -> bool:
        return key in self.results

    def __getitem__(self, key: str) -> Any:
        return self.results[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)


class SmartClient:
    """A connected application client (the SDK of section 3.1)."""

    MAX_RETRIES = 8

    #: Set by :meth:`repro.server.Cluster.connect`; the in-process N1QL
    #: and view APIs route through the owning facade.
    cluster: "Cluster | None" = None

    def __init__(self, manager, network: Network, scheduler: Scheduler,
                 admission: "AdmissionController | None" = None,
                 service: str = "kv"):
        self.manager = manager
        self.network = network
        self.scheduler = scheduler
        #: The cluster's admission controller; None means legacy behavior
        #: (unprotected retry spin) -- kept for the ablation benchmark.
        self.admission = admission
        #: Service class for bulkhead attribution: "kv" for application
        #: handles, "n1ql" for the query engine's internal data traffic.
        self.service = service
        self.name = f"client{next(_client_ids)}"
        self._maps: dict[str, Any] = {}
        self._durability = DurabilityMonitor(network, scheduler, self.name)
        if admission is not None:
            admission.register_client(self.name, service)

    # -- cluster map handling ----------------------------------------------------

    def _map(self, bucket: str):
        cached = self._maps.get(bucket)
        if cached is None:
            return self._refresh_map(bucket)
        return cached

    def _refresh_map(self, bucket: str):
        cluster_map = self.manager.cluster_maps.get(bucket)
        if cluster_map is None:
            raise BucketNotFoundError(bucket)
        self._maps[bucket] = cluster_map
        return cluster_map

    def close(self) -> None:
        """Release this handle's server-side admission state.  Handles
        get a fresh unique name per connect, so an application that
        connects and discards handles without closing them leaks one
        tenant bucket per connection in the controller (found by
        repro-bounds)."""
        if self.admission is not None:
            self.admission.unregister_client(self.name)
        self._maps.clear()

    @hot_path
    @cost("O(log n)")
    def _call(self, bucket: str, key: str, method: str, *args) -> Any:
        """Route one KV op through the admission front door (when wired)
        and to the key's active node."""
        if self.admission is None:
            return self._routed_call(bucket, key, method, args)
        release = self.admission.acquire(self.service, self.name)
        try:
            return self._routed_call(bucket, key, method, args)
        finally:
            if release is not None:
                release()

    def _routed_call(self, bucket: str, key: str, method: str,
                     args: tuple) -> Any:
        """Route one KV op to the key's active node, with map-refresh
        retries on topology errors and breaker/backoff handling of
        overload TMPFAILs.  Without an admission controller this is the
        legacy path: every temporary failure quiesces the whole cluster
        (``run_until_idle``) before retrying -- unbounded work per retry,
        which is exactly what the overload benchmark shows collapsing."""
        last_error: Exception | None = None
        overload_attempts = 0
        for attempt in range(self.MAX_RETRIES):
            cluster_map = self._map(bucket)
            vbucket_id = cluster_map.vbucket_for_key(key)
            node = cluster_map.active_node(vbucket_id)
            if node is None:
                last_error = NodeDownError(f"vbucket {vbucket_id} unassigned")
            else:
                breaker = (self.admission.breaker(node)
                           if self.admission is not None else None)
                if breaker is not None and not breaker.allow():
                    # Fail fast: the node told us it is saturated and its
                    # cooldown has not elapsed.  No RPC, no retry loop.
                    raise AdmissionRejectedError(
                        f"circuit breaker open for node {node!r}",
                        retry_after=breaker.remaining(),
                    )
                try:
                    # One logical RPC; the enclosing loop is a bounded
                    # MAX_RETRIES topology-retry, not per-item fan-out.
                    # repro-hotpath: disable-next=n-plus-one-rpc
                    result = self.network.call(
                        self.name, node, method, bucket, vbucket_id, key, *args
                    )
                    if breaker is not None:
                        breaker.record_success()
                    return result
                except (NotMyVBucketError, NodeDownError) as error:
                    last_error = error
                except AdmissionRejectedError:
                    # Shed by the fabric (node bulkhead): not our node's
                    # fault, and retrying immediately would defeat the
                    # point of shedding.
                    raise
                except TemporaryFailureError as error:
                    last_error = error
                    if self.admission is None:
                        # Legacy: give the flusher/pager a chance, retry.
                        self.scheduler.run_until_idle()
                        continue
                    if error.retry_after is None:
                        # Semantic TMPFAIL (counter on a non-int, unlock
                        # of an unlocked doc): waiting cannot fix it.
                        raise
                    overload_attempts += 1
                    breaker.record_failure()
                    self.admission.note_overload(node, error)
                    self.admission.backoff(overload_attempts,
                                           hint=error.retry_after)
                    continue
            # Topology changed under us: let the manager react (failure
            # detection, pushes), refresh, retry.
            self.scheduler.run_until_idle()
            self._refresh_map(bucket)
        raise last_error  # type: ignore[misc]

    # -- key-value API (section 3.1.1) ------------------------------------------------

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def get(self, bucket: str, key: str) -> Document:
        """Read a document by primary key (routed to the active node)."""
        return self._call(bucket, key, "kv_get")

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'DocumentLockedError', 'DurabilityError',
                     'DurabilityImpossibleError', 'InvalidArgumentError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def upsert(self, bucket: str, key: str, value: JsonValue, *,
               cas: int = 0, expiry: float = 0.0, flags: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Create or replace a document (memcached SET), optionally
        CAS-guarded and with per-mutation durability (section 2.3.2)."""
        result = self._call(bucket, key, "kv_upsert", value, cas, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'DurabilityError', 'DurabilityImpossibleError',
                     'InvalidArgumentError', 'KeyExistsError',
                     'KeyNotFoundError', 'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def insert(self, bucket: str, key: str, value: JsonValue, *,
               expiry: float = 0.0, flags: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Create a document; fails if the key exists (memcached ADD)."""
        result = self._call(bucket, key, "kv_insert", value, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'DurabilityError', 'DurabilityImpossibleError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def replace(self, bucket: str, key: str, value: JsonValue, *,
                cas: int = 0, expiry: float = 0.0, flags: int = 0,
                replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Replace an existing document; fails if the key is absent."""
        result = self._call(bucket, key, "kv_replace", value, cas, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'DurabilityError', 'DurabilityImpossibleError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def remove(self, bucket: str, key: str, *, cas: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Delete a document (a tombstone mutation that flows through
        DCP like any other write)."""
        result = self._call(bucket, key, "kv_delete", cas)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def touch(self, bucket: str, key: str, expiry: float) -> MutationResult:
        """Update a document's TTL without changing its value."""
        return self._call(bucket, key, "kv_touch", expiry)

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'DocumentLockedError', 'InvalidArgumentError',
                     'KeyNotFoundError', 'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def get_and_lock(self, bucket: str, key: str,
                     lock_time: float | None = None) -> Document:
        """Read and pessimistically lock a document (section 3.1.1); the
        returned CAS is the lock token."""
        return self._call(bucket, key, "kv_get_and_lock", lock_time)

    @declared_raises('BucketNotFoundError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def unlock(self, bucket: str, key: str, cas: int) -> None:
        """Release a get-and-lock hold using its lock CAS."""
        self._call(bucket, key, "kv_unlock", cas)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def counter(self, bucket: str, key: str, delta: int, *,
                initial: int | None = None) -> tuple[int, MutationResult]:
        """Atomic increment/decrement of an integer document."""
        return self._call(bucket, key, "kv_counter", delta, initial)

    # -- sub-document API --------------------------------------------------------------

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError')
    def lookup_in(self, bucket: str, key: str, paths: list[str]) -> list:
        """Fetch selected sub-document paths; one result dict per path."""
        return self._call(bucket, key, "kv_lookup_in", paths)

    @declared_raises('BucketNotFoundError', 'CasMismatchError',
                     'CorruptFileError', 'DocumentLockedError',
                     'InvalidArgumentError', 'KeyNotFoundError',
                     'NodeDownError', 'NotMyVBucketError',
                     'TemporaryFailureError', 'ValueTooLargeError')
    def mutate_in(self, bucket: str, key: str,
                  operations: list[tuple[str, str, JsonValue]],
                  *, cas: int = 0) -> MutationResult:
        """Atomically apply sub-document mutations: (op, path, value)
        with op in {"set", "unset", "array_append"}."""
        return self._call(bucket, key, "kv_mutate_in", operations, cas)

    # -- batched key-value API (node-grouped bulk path, section 4.1) -------------------

    #: Errors that mean "the topology moved under us" -- the batch router
    #: refreshes the map and re-batches only the affected keys.  Overload
    #: TMPFAILs are handled separately (breaker + bounded backoff).
    _TOPOLOGY_RETRYABLE = (NotMyVBucketError, NodeDownError)

    def _group_by_node(self, cluster_map, keys: Iterable[str]
                       ) -> tuple[dict[str, list[tuple[int, str]]], list[str]]:
        """Hash every key, group by its vBucket's active node.  Keys of
        currently unassigned vBuckets come back separately (retryable)."""
        groups: dict[str, list[tuple[int, str]]] = {}
        unassigned: list[str] = []
        for key in keys:
            vbucket_id = cluster_map.vbucket_for_key(key)
            node = cluster_map.active_node(vbucket_id)
            if node is None:
                unassigned.append(key)
            else:
                groups.setdefault(node, []).append((vbucket_id, key))
        return groups, unassigned

    @hot_path
    @cost("O(n)")
    def _multi_call(self, bucket: str, method: str,
                    keys: list[str],
                    payload: dict[str, dict] | None = None) -> BatchResult:
        """Route a batch through the admission front door (claimed once
        for the whole batch, sized by its key count) and to the cluster."""
        batch = BatchResult()
        pending = list(dict.fromkeys(keys))  # de-dup, keep order
        release = None
        if self.admission is not None and pending:
            try:
                release = self.admission.acquire(self.service, self.name,
                                                 ops=len(pending))
            except AdmissionRejectedError as error:
                for key in pending:
                    batch.errors[key] = error
                return batch
        try:
            return self._routed_multi_call(batch, bucket, method, pending,
                                           payload)
        finally:
            if release is not None:
                release()

    def _routed_multi_call(self, batch: BatchResult, bucket: str, method: str,
                           pending: list[str],
                           payload: dict[str, dict] | None) -> BatchResult:
        """Group keys by active node, issue **one** ``kv_multi_get`` /
        ``kv_multi_mutate`` RPC per node, then retry selectively: keys
        that failed with a topology error re-batch after a map refresh;
        keys shed for overload (pressure-tagged TMPFAIL) re-batch after
        one shared bounded backoff; keys rejected by an open breaker (or
        with semantic failures) land in ``errors`` immediately, keeping
        the partial-result contract -- every key ends up in exactly one
        of ``results`` and ``errors``."""
        last_errors: dict[str, Exception] = {}
        overload_attempts = 0
        for _attempt in range(self.MAX_RETRIES):
            if not pending:
                break
            cluster_map = self._map(bucket)
            groups, unassigned = self._group_by_node(cluster_map, pending)
            topology_retry: list[str] = []
            overload_retry: list[str] = []
            overload_hint = 0.0
            for key in unassigned:
                last_errors[key] = NodeDownError(
                    f"vbucket {cluster_map.vbucket_for_key(key)} unassigned"
                )
                topology_retry.append(key)
            for node, items in sorted(groups.items()):
                breaker = (self.admission.breaker(node)
                           if self.admission is not None else None)
                if breaker is not None and not breaker.allow():
                    rejection = AdmissionRejectedError(
                        f"circuit breaker open for node {node!r}",
                        retry_after=breaker.remaining(),
                    )
                    for _vbucket_id, key in items:
                        batch.errors[key] = rejection
                    continue
                if payload is None:
                    request: list = items
                else:
                    request = [
                        (payload[key]["kind"], vbucket_id, key,
                         payload[key]["kwargs"])
                        for vbucket_id, key in items
                    ]
                try:
                    # This IS the batched path: one multi_* RPC per
                    # node, looping over nodes -- not per key.
                    # repro-hotpath: disable-next=n-plus-one-rpc
                    outcomes = self.network.call(
                        self.name, node, method, bucket, request
                    )
                except AdmissionRejectedError as error:
                    # Shed by the fabric's node bulkhead: honor it.
                    for _vbucket_id, key in items:
                        batch.errors[key] = error
                    continue
                except self._TOPOLOGY_RETRYABLE as error:
                    # Whole-node failure: every key of this group retries.
                    for _vbucket_id, key in items:
                        last_errors[key] = error
                        topology_retry.append(key)
                    continue
                except TemporaryFailureError as error:
                    if self.admission is None:
                        # Legacy: treat like a topology error (quiesce,
                        # refresh, retry).
                        for _vbucket_id, key in items:
                            last_errors[key] = error
                            topology_retry.append(key)
                    elif error.retry_after is not None:
                        breaker.record_failure()
                        self.admission.note_overload(node, error)
                        overload_hint = max(overload_hint, error.retry_after)
                        for _vbucket_id, key in items:
                            last_errors[key] = error
                            overload_retry.append(key)
                    else:
                        for _vbucket_id, key in items:
                            batch.errors[key] = error
                    continue
                node_overloaded = False
                for (_vbucket_id, key), (status, value) in zip(items, outcomes):
                    if status == "ok":
                        batch.results[key] = value
                    elif isinstance(value, self._TOPOLOGY_RETRYABLE):
                        last_errors[key] = value
                        topology_retry.append(key)
                    elif isinstance(value, TemporaryFailureError):
                        if self.admission is None:
                            last_errors[key] = value
                            topology_retry.append(key)
                        elif value.retry_after is not None:
                            node_overloaded = True
                            overload_hint = max(overload_hint,
                                                value.retry_after)
                            last_errors[key] = value
                            overload_retry.append(key)
                        else:
                            batch.errors[key] = value
                    else:
                        batch.errors[key] = value
                if breaker is not None:
                    if node_overloaded:
                        breaker.record_failure()
                        self.admission.note_overload(node)
                    else:
                        breaker.record_success()
            if not topology_retry and not overload_retry:
                return batch
            if topology_retry:
                # Topology changed: let the manager and pumps react, then
                # re-batch the failures (this full drain also covers any
                # overload relief this round needs).
                self.scheduler.run_until_idle()
                self._refresh_map(bucket)
            else:
                # Pure overload: one bounded, shared backoff per round
                # instead of the legacy full-cluster quiesce.
                overload_attempts += 1
                self.admission.backoff(overload_attempts,
                                       hint=overload_hint or None)
            pending = topology_retry + overload_retry
        for key in pending:
            batch.errors[key] = last_errors[key]
        return batch

    @declared_raises('BucketNotFoundError', 'CorruptFileError',
                     'InvalidArgumentError', 'NodeDownError',
                     'NotMyVBucketError', 'TemporaryFailureError')
    def multi_get(self, bucket: str, keys: list[str], *,
                  batched: bool = True) -> dict[str, Document]:
        """Batch point lookups: one ``kv_multi_get`` RPC per involved
        node instead of one round trip per key.  Missing keys are simply
        absent from the result; any other per-key error propagates.

        ``batched=False`` keeps the legacy per-key routed path (one
        round trip per key) -- the ablation benchmark compares the two.
        """
        if not batched:
            out: dict[str, Document] = {}
            for key in keys:
                try:
                    out[key] = self.get(bucket, key)
                # Absent keys are simply omitted from the result dict (documented API).
                # repro-flow: disable-next=swallowed-exception
                except KeyNotFoundError:
                    continue
            return out
        batch = self.multi_get_batch(bucket, keys)
        for key, error in batch.errors.items():
            if not isinstance(error, KeyNotFoundError):
                raise error
        # The BatchResult is ours alone; hand its dict out as-is rather
        # than copying it on the hot fetch path.
        return batch.results

    @declared_raises('BucketNotFoundError', 'InvalidArgumentError')
    def multi_get_batch(self, bucket: str, keys: list[str]) -> BatchResult:
        """Batch point lookups with the full per-key outcome surface."""
        return self._multi_call(bucket, "kv_multi_get", list(keys))

    @declared_raises('BucketNotFoundError', 'InvalidArgumentError')
    def multi_upsert(self, bucket: str,
                     items: Mapping[str, JsonValue] | Iterable[tuple[str, JsonValue]],
                     *, expiry: float = 0.0, flags: int = 0) -> BatchResult:
        """Create or replace many documents, one ``kv_multi_mutate`` RPC
        per destination node.  ``results`` holds a
        :class:`MutationResult` per succeeded key."""
        pairs = dict(items.items() if isinstance(items, Mapping) else items)
        payload = {
            key: {"kind": "upsert",
                  "kwargs": {"value": value, "expiry": expiry, "flags": flags}}
            for key, value in pairs.items()
        }
        return self._multi_call(bucket, "kv_multi_mutate",
                                list(pairs), payload)

    @declared_raises('BucketNotFoundError', 'InvalidArgumentError')
    def multi_insert(self, bucket: str,
                     items: Mapping[str, JsonValue] | Iterable[tuple[str, JsonValue]],
                     *, expiry: float = 0.0, flags: int = 0) -> BatchResult:
        """Create many documents, one ``kv_multi_mutate`` RPC per
        destination node.  A key that already exists surfaces its
        ``KeyExistsError`` in ``errors`` without affecting the rest of
        the batch (unlike :meth:`multi_upsert`, which overwrites)."""
        pairs = dict(items.items() if isinstance(items, Mapping) else items)
        payload = {
            key: {"kind": "insert",
                  "kwargs": {"value": value, "expiry": expiry, "flags": flags}}
            for key, value in pairs.items()
        }
        return self._multi_call(bucket, "kv_multi_mutate",
                                list(pairs), payload)

    @declared_raises('BucketNotFoundError', 'InvalidArgumentError')
    def multi_remove(self, bucket: str, keys: list[str]) -> BatchResult:
        """Delete many documents, one ``kv_multi_mutate`` RPC per node.
        A key that does not exist surfaces its ``KeyNotFoundError`` in
        ``errors`` without affecting the rest of the batch."""
        payload = {key: {"kind": "delete", "kwargs": {}} for key in keys}
        return self._multi_call(bucket, "kv_multi_mutate",
                                list(dict.fromkeys(keys)), payload)

    # -- N1QL API (section 3.1.3) ---------------------------------------------------------

    @declared_raises('AdmissionRejectedError', 'BucketNotFoundError',
                     'CorruptFileError', 'DiskFullError', 'DurabilityError',
                     'DurabilityImpossibleError', 'IndexExistsError',
                     'IndexNotFoundError', 'InvalidArgumentError',
                     'KeyNotFoundError', 'N1qlRuntimeError',
                     'N1qlSemanticError', 'NoSuitableIndexError',
                     'NodeDownError', 'NotConnectedError', 'NotMyVBucketError',
                     'ServiceUnavailableError', 'TemporaryFailureError',
                     'ViewExistsError', 'ViewNotFoundError')
    def query(self, statement: str, params=None,
              scan_consistency: str = "not_bounded",
              consistent_with=None):
        """Send a N1QL statement to a query-service node."""
        if getattr(self, "cluster", None) is None:
            raise NotConnectedError("client not connected through a Cluster facade")
        return self.cluster.query(statement, params,
                                  scan_consistency=scan_consistency,
                                  consistent_with=consistent_with)

    # -- view query API (section 3.1.2) -------------------------------------------------

    @declared_raises('CorruptFileError', 'InvalidArgumentError',
                     'NotConnectedError', 'TimeoutError_',
                     'ViewNotFoundError', 'ViewQueryError')
    def view_query(self, bucket: str, design: str, view: str, **params):
        """Query a view with the REST-style parameters (key, keys,
        startkey/endkey, stale, group, limit, ...)."""
        if getattr(self, "cluster", None) is None:
            raise NotConnectedError("client not connected through a Cluster facade")
        return self.cluster.views.query(bucket, design, view, **params)

    def _wait_durable(self, bucket: str, key: str, result: MutationResult,
                      replicate_to: int, persist_to: int) -> None:
        requirement = DurabilityRequirement(replicate_to, persist_to)
        if requirement.trivial:
            return
        self._durability.wait(bucket, key, result, requirement, self._map(bucket))
