"""The smart client.

Section 4.1: "Applications can use Couchbase's smart clients, which
contain a copy of the cluster map ... a client applies a hash function
(CRC32) to every document that needs to be stored, and the document can
then be sent directly from the client to the server where it should
reside."

The client caches the cluster map per bucket, routes every key-value
operation straight to the active node for the key's vBucket, and on a
NOT_MY_VBUCKET or connection failure refreshes the map from the cluster
manager and retries -- the standard smart-client dance during rebalance
and failover.

Durability options on mutations (``replicate_to`` / ``persist_to``) ride
on the observe machinery of :mod:`repro.replication.durability`.
"""

from __future__ import annotations

import itertools
from typing import Any

from ..common.document import Document
from ..common.errors import (
    BucketNotFoundError,
    NodeDownError,
    NotMyVBucketError,
    TemporaryFailureError,
)
from ..common.jsonval import JsonValue
from ..common.scheduler import Scheduler
from ..common.transport import Network
from ..kv.engine import MutationResult
from ..replication.durability import DurabilityMonitor, DurabilityRequirement

_client_ids = itertools.count(1)


class SmartClient:
    """A connected application client (the SDK of section 3.1)."""

    MAX_RETRIES = 8

    def __init__(self, manager, network: Network, scheduler: Scheduler):
        self.manager = manager
        self.network = network
        self.scheduler = scheduler
        self.name = f"client{next(_client_ids)}"
        self._maps: dict[str, Any] = {}
        self._durability = DurabilityMonitor(network, scheduler, self.name)

    # -- cluster map handling ----------------------------------------------------

    def _map(self, bucket: str):
        cached = self._maps.get(bucket)
        if cached is None:
            return self._refresh_map(bucket)
        return cached

    def _refresh_map(self, bucket: str):
        cluster_map = self.manager.cluster_maps.get(bucket)
        if cluster_map is None:
            raise BucketNotFoundError(bucket)
        self._maps[bucket] = cluster_map
        return cluster_map

    def _call(self, bucket: str, key: str, method: str, *args) -> Any:
        """Route one KV op to the key's active node, with map-refresh
        retries on topology errors."""
        last_error: Exception | None = None
        for attempt in range(self.MAX_RETRIES):
            cluster_map = self._map(bucket)
            vbucket_id = cluster_map.vbucket_for_key(key)
            node = cluster_map.active_node(vbucket_id)
            if node is None:
                last_error = NodeDownError(f"vbucket {vbucket_id} unassigned")
            else:
                try:
                    return self.network.call(
                        self.name, node, method, bucket, vbucket_id, key, *args
                    )
                except (NotMyVBucketError, NodeDownError) as error:
                    last_error = error
                except TemporaryFailureError as error:
                    last_error = error
                    # Give the flusher/pager a chance, then retry.
                    self.scheduler.run_until_idle()
                    continue
            # Topology changed under us: let the manager react (failure
            # detection, pushes), refresh, retry.
            self.scheduler.run_until_idle()
            self._refresh_map(bucket)
        raise last_error  # type: ignore[misc]

    # -- key-value API (section 3.1.1) ------------------------------------------------

    def get(self, bucket: str, key: str) -> Document:
        """Read a document by primary key (routed to the active node)."""
        return self._call(bucket, key, "kv_get")

    def upsert(self, bucket: str, key: str, value: JsonValue, *,
               cas: int = 0, expiry: float = 0.0, flags: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Create or replace a document (memcached SET), optionally
        CAS-guarded and with per-mutation durability (section 2.3.2)."""
        result = self._call(bucket, key, "kv_upsert", value, cas, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    def insert(self, bucket: str, key: str, value: JsonValue, *,
               expiry: float = 0.0, flags: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Create a document; fails if the key exists (memcached ADD)."""
        result = self._call(bucket, key, "kv_insert", value, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    def replace(self, bucket: str, key: str, value: JsonValue, *,
                cas: int = 0, expiry: float = 0.0, flags: int = 0,
                replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Replace an existing document; fails if the key is absent."""
        result = self._call(bucket, key, "kv_replace", value, cas, expiry, flags)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    def remove(self, bucket: str, key: str, *, cas: int = 0,
               replicate_to: int = 0, persist_to: int = 0) -> MutationResult:
        """Delete a document (a tombstone mutation that flows through
        DCP like any other write)."""
        result = self._call(bucket, key, "kv_delete", cas)
        self._wait_durable(bucket, key, result, replicate_to, persist_to)
        return result

    def touch(self, bucket: str, key: str, expiry: float) -> MutationResult:
        """Update a document's TTL without changing its value."""
        return self._call(bucket, key, "kv_touch", expiry)

    def get_and_lock(self, bucket: str, key: str,
                     lock_time: float | None = None) -> Document:
        """Read and pessimistically lock a document (section 3.1.1); the
        returned CAS is the lock token."""
        return self._call(bucket, key, "kv_get_and_lock", lock_time)

    def unlock(self, bucket: str, key: str, cas: int) -> None:
        """Release a get-and-lock hold using its lock CAS."""
        self._call(bucket, key, "kv_unlock", cas)

    def counter(self, bucket: str, key: str, delta: int, *,
                initial: int | None = None) -> tuple[int, MutationResult]:
        """Atomic increment/decrement of an integer document."""
        return self._call(bucket, key, "kv_counter", delta, initial)

    # -- sub-document API --------------------------------------------------------------

    def lookup_in(self, bucket: str, key: str, paths: list[str]) -> list:
        """Fetch selected sub-document paths; one result dict per path."""
        return self._call(bucket, key, "kv_lookup_in", paths)

    def mutate_in(self, bucket: str, key: str,
                  operations: list[tuple[str, str, JsonValue]],
                  *, cas: int = 0) -> MutationResult:
        """Atomically apply sub-document mutations: (op, path, value)
        with op in {"set", "unset", "array_append"}."""
        return self._call(bucket, key, "kv_mutate_in", operations, cas)

    def multi_get(self, bucket: str, keys: list[str]) -> dict[str, Document]:
        """Batch point lookups (each routed to its own node)."""
        out = {}
        for key in keys:
            from ..common.errors import KeyNotFoundError
            try:
                out[key] = self.get(bucket, key)
            except KeyNotFoundError:
                continue
        return out

    # -- N1QL API (section 3.1.3) ---------------------------------------------------------

    def query(self, statement: str, params=None,
              scan_consistency: str = "not_bounded",
              consistent_with=None):
        """Send a N1QL statement to a query-service node."""
        if getattr(self, "cluster", None) is None:
            raise RuntimeError("client not connected through a Cluster facade")
        return self.cluster.query(statement, params,
                                  scan_consistency=scan_consistency,
                                  consistent_with=consistent_with)

    # -- view query API (section 3.1.2) -------------------------------------------------

    def view_query(self, bucket: str, design: str, view: str, **params):
        """Query a view with the REST-style parameters (key, keys,
        startkey/endkey, stale, group, limit, ...)."""
        if getattr(self, "cluster", None) is None:
            raise RuntimeError("client not connected through a Cluster facade")
        return self.cluster.views.query(bucket, design, view, **params)

    def _wait_durable(self, bucket: str, key: str, result: MutationResult,
                      replicate_to: int, persist_to: int) -> None:
        requirement = DurabilityRequirement(replicate_to, persist_to)
        if requirement.trivial:
            return
        self._durability.wait(bucket, key, result, requirement, self._map(bucket))
