"""Admission control: the overload front door (paper section 4.3.3).

The paper's TMPFAIL contract says an overloaded server answers
"temporary failure, back off and retry" instead of blocking.  This
package supplies the other half of that contract -- the parts that
actually back off: token buckets, per-service bulkheads, per-node
circuit breakers, and an :class:`AdmissionController` that wires them
into the client, fabric, and query paths with a shed-N1QL-before-KV
degradation order.  Deterministic by construction: virtual time only,
seeded jitter only.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .bulkhead import Bulkhead
from .controller import AdmissionConfig, AdmissionController
from .tokens import ExponentialBackoff, TokenBucket

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Bulkhead",
    "CircuitBreaker",
    "ExponentialBackoff",
    "TokenBucket",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
